//! The tiled, multithreaded inference pipeline.

use crate::config::{InferenceConfig, NullStrategy};
use crate::result::{InferenceResult, RunStats};
use gnet_bspline::{BsplineBasis, DenseWeights};
use gnet_expr::ExpressionMatrix;
use gnet_graph::{Edge, GeneNetwork};
use gnet_mi::{
    mi_with_nulls, mi_with_nulls_early_exit, prepare_gene, MiKernel, MiScratch, PreparedGene,
};
use gnet_parallel::{execute_tiles_traced, Tile, TileSpace};
use gnet_permute::{PermutationSet, PooledNull};
use gnet_trace::Recorder;
use std::time::Instant;

/// A pair that beat all of its own permutation nulls, awaiting the global
/// threshold.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Candidate {
    pub(crate) i: u32,
    pub(crate) j: u32,
    pub(crate) observed: f64,
}

/// Per-thread worker state: kernel scratch, the mergeable pooled-null
/// accumulator, and this thread's candidate edges.
pub(crate) struct ThreadState {
    pub(crate) scratch: MiScratch,
    pub(crate) pooled: PooledNull,
    pub(crate) candidates: Vec<Candidate>,
    pub(crate) joints: u64,
}

impl ThreadState {
    /// Fresh state around a kernel scratch (used by the checkpointing
    /// driver, which shares this worker).
    pub(crate) fn new(scratch: MiScratch) -> Self {
        Self {
            scratch,
            pooled: PooledNull::new(),
            candidates: Vec::new(),
            joints: 0,
        }
    }
}

/// SplitMix64 — a tiny seeded generator for the threshold pre-pass pair
/// sampling (keeps `gnet-core` free of an RNG dependency).
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` via rejection sampling. The old `%`
    /// reduction was modulo-biased: whenever `2^64 % bound != 0`, the
    /// low residues were drawn more often, skewing the pre-pass pair
    /// sample. Rejecting the first `2^64 mod bound` raw values leaves an
    /// exact multiple of `bound`, so the reduction is exactly uniform;
    /// the rejection probability is `bound / 2^64` per draw, so the loop
    /// terminates after ~1 iteration for any realistic gene count.
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        let bound = bound.max(1);
        // 2^64 mod bound, computed without 128-bit arithmetic.
        let cutoff = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            if x >= cutoff {
                return x % bound;
            }
        }
    }
}

/// Draw `want` *distinct* unordered gene pairs `(i, j)` with `i < j` from
/// `n` genes, uniformly. The old pre-pass drew pairs independently and
/// could sample the same unordered pair twice, double-weighting its nulls
/// in the pooled estimate; drawn pairs are now deduplicated. The caller
/// must keep `want <= n(n−1)/2` or the loop could not terminate — the
/// clamp in [`infer_network`] guarantees it.
pub(crate) fn sample_unique_pairs(rng: &mut SplitMix64, n: u64, want: usize) -> Vec<(u32, u32)> {
    debug_assert!(want as u64 <= n * (n.saturating_sub(1)) / 2);
    let mut seen = std::collections::HashSet::with_capacity(want * 2);
    let mut out = Vec::with_capacity(want);
    while out.len() < want {
        let a = rng.below(n);
        let b = rng.below(n);
        if a == b {
            continue; // rejecting diagonals keeps off-diagonal pairs uniform
        }
        let pair = (a.min(b) as u32, a.max(b) as u32);
        if seen.insert(pair) {
            out.push(pair);
        }
    }
    out
}

/// Estimate the pooled-null threshold from `sample_pairs` randomly drawn
/// pairs with full nulls — the pre-pass of the early-exit strategy. Valid
/// because the rank transform gives every gene the same marginal, so the
/// null MI distribution is pair-independent.
// The pre-pass genuinely consumes eight independent inputs; bundling them
// into a one-shot struct would only rename the argument list.
#[allow(clippy::too_many_arguments)]
fn estimate_threshold(
    prepared: &[PreparedGene],
    perms: &PermutationSet,
    kernel: MiKernel,
    basis: &BsplineBasis,
    sample_pairs: usize,
    total_pairs: u64,
    alpha: f64,
    seed: u64,
) -> (f64, PooledNull) {
    let n = prepared.len() as u64;
    let mut rng = SplitMix64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut scratch = MiScratch::for_basis(basis);
    let mut pooled = PooledNull::new();
    for (i, j) in sample_unique_pairs(&mut rng, n, sample_pairs) {
        let (i, j) = (i as usize, j as usize);
        let dense = match kernel {
            MiKernel::VectorDense => Some(prepared[j].to_dense()),
            MiKernel::ScalarSparse => None,
        };
        let res = mi_with_nulls(
            kernel,
            &prepared[i],
            &prepared[j],
            dense.as_ref(),
            perms.as_vecs(),
            &mut scratch,
        );
        pooled.extend(&res.null);
    }
    (pooled.global_threshold(alpha, total_pairs.max(1)), pooled)
}

/// Run the full pipeline over an expression matrix.
///
/// ```
/// use gnet_core::{infer_network, InferenceConfig};
/// use gnet_expr::synth::{coupled_pairs, Coupling};
///
/// // Two genes with a strong planted dependency, plus defaults scaled
/// // down for a doc test.
/// let (matrix, truth) = coupled_pairs(1, 200, Coupling::Linear(0.95), 7);
/// let config = InferenceConfig { permutations: 10, threads: Some(1), ..Default::default() };
/// let result = infer_network(&matrix, &config);
/// assert!(result.network.has_edge(truth[0].0, truth[0].1));
/// ```
///
/// # Panics
/// Panics on invalid configuration (see
/// [`InferenceConfig::validate`]) or on a matrix with fewer than two
/// genes. Matrices with `q > 0` need at least two samples for non-identity
/// permutations to exist.
pub fn infer_network(matrix: &ExpressionMatrix, config: &InferenceConfig) -> InferenceResult {
    infer_network_traced(matrix, config, &Recorder::disabled())
}

/// [`infer_network`] with an instrumentation hook.
///
/// When `rec` is enabled the run records stage spans (`stage.prep`,
/// `stage.mi`, `stage.finalize`), per-tile latency and per-thread claim
/// counters (via the scheduler), and post-merge MI counters (`mi.pairs`,
/// `mi.joints_evaluated`, `mi.candidates`, and under early exit
/// `mi.prepass_pairs` / `mi.early_exit_survivors` / `mi.early_exit_pruned`).
/// A disabled recorder costs one branch per call site.
pub fn infer_network_traced(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    rec: &Recorder,
) -> InferenceResult {
    config.validate();
    assert!(
        matrix.genes() >= 2,
        "need at least two genes to infer a network"
    );

    // ---- Stage 1+2: preprocess and prepare every gene -------------------
    let t0 = Instant::now();
    let span_prep = rec.span("stage.prep");
    let basis = BsplineBasis::new(config.spline_order, config.bins);
    let prepared: Vec<PreparedGene> = (0..matrix.genes())
        .map(|g| prepare_gene(matrix.gene(g), &basis))
        .collect();
    let perms = PermutationSet::generate(matrix.samples(), config.permutations, config.seed);
    drop(span_prep);
    let prep_time = t0.elapsed();

    // ---- Stage 3: tiled pairwise MI + permutation nulls ------------------
    let t1 = Instant::now();
    let span_mi = rec.span("stage.mi");
    let bytes_per_gene = prepared[0].heap_bytes();
    let tile_size = config.resolved_tile_size(matrix.genes(), bytes_per_gene);
    let threads = config.resolved_threads();
    let space = TileSpace::new(matrix.genes(), tile_size);

    // Run-shape stamp: everything offline perf attribution needs to match
    // this run against a calibrated kernel model (see `gnet trace-report`).
    rec.event(
        "run.config",
        &[
            ("genes", matrix.genes().into()),
            ("samples", matrix.samples().into()),
            ("permutations", config.permutations.into()),
            (
                "kernel",
                match config.kernel {
                    MiKernel::ScalarSparse => "scalar",
                    MiKernel::VectorDense => "vector",
                }
                .into(),
            ),
            ("threads", threads.into()),
            ("tile_size", tile_size.into()),
            ("scheduler", config.scheduler.name().into()),
        ],
    );

    // Early-insert filtering: with an explicit threshold the per-pair
    // decision is final, so candidates below it are dropped immediately.
    let explicit_threshold = config.mi_threshold;

    let kernel = config.kernel;
    let strategy = config.null_strategy;
    let prepared_ref = &prepared;
    let perms_ref = &perms;
    let basis_ref = &basis;

    // The early-exit strategy needs the global threshold *before* the main
    // pass: explicit if given, otherwise estimated from sampled pairs.
    let mut prepass_pooled: Option<PooledNull> = None;
    let early_threshold: Option<f64> = match (strategy, explicit_threshold) {
        (NullStrategy::EarlyExit, Some(t)) => Some(t),
        (NullStrategy::EarlyExit, None) => {
            // `.max(2)` must come *before* `.min(total_pairs)`: the old
            // order could force `sample > total_pairs` on a 2-gene matrix,
            // which the deduplicating sampler could never satisfy.
            let sample = config
                .null_sample_pairs
                .max(2)
                .min(space.total_pairs() as usize);
            rec.counter_add("mi.prepass_pairs", sample as u64);
            let (t, pooled) = estimate_threshold(
                &prepared,
                &perms,
                kernel,
                &basis,
                sample,
                space.total_pairs(),
                config.alpha,
                config.seed,
            );
            prepass_pooled = Some(pooled);
            Some(t)
        }
        (NullStrategy::ExactFull, _) => None,
    };

    let (states, execution) = execute_tiles_traced(
        space.tiles(),
        threads,
        config.scheduler,
        |_tid| ThreadState {
            scratch: MiScratch::for_basis(basis_ref),
            pooled: PooledNull::new(),
            candidates: Vec::new(),
            joints: 0,
        },
        |state, tile| match strategy {
            NullStrategy::ExactFull => {
                process_tile(
                    tile,
                    prepared_ref,
                    perms_ref,
                    kernel,
                    explicit_threshold,
                    state,
                );
            }
            NullStrategy::EarlyExit => {
                process_tile_early_exit(
                    tile,
                    prepared_ref,
                    perms_ref,
                    kernel,
                    early_threshold.expect("early-exit threshold resolved above"),
                    state,
                );
            }
        },
        rec,
    );
    drop(span_mi);
    let mi_time = t1.elapsed();

    // ---- Stage 4: pooled threshold + candidate filtering -----------------
    let t2 = Instant::now();
    let span_finalize = rec.span("stage.finalize");
    let mut pooled = prepass_pooled.unwrap_or_default();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut joints_evaluated = 0u64;
    for s in states {
        pooled.merge(&s.pooled);
        candidates.extend(s.candidates);
        joints_evaluated += s.joints;
    }
    let pairs = space.total_pairs();
    let threshold = match (early_threshold, explicit_threshold) {
        (Some(t), _) => t,
        (None, Some(t)) => t,
        (None, None) => pooled.global_threshold(config.alpha, pairs.max(1)),
    };
    let candidate_count = candidates.len() as u64;

    let edges = candidates
        .into_iter()
        .filter(|c| c.observed > threshold)
        .map(|c| Edge::new(c.i, c.j, c.observed as f32));
    let network = GeneNetwork::from_edges(matrix.genes(), matrix.gene_names().to_vec(), edges);
    if rec.is_enabled() {
        rec.counter_add("mi.pairs", pairs);
        rec.counter_add("mi.joints_evaluated", joints_evaluated);
        rec.counter_add("mi.candidates", candidate_count);
        if matches!(strategy, NullStrategy::EarlyExit) {
            rec.counter_add("mi.early_exit_survivors", candidate_count);
            rec.counter_add("mi.early_exit_pruned", pairs - candidate_count);
        }
        rec.event(
            "pipeline.done",
            &[
                ("pairs", pairs.into()),
                ("edges", (network.edge_count() as u64).into()),
                ("threshold", threshold.into()),
            ],
        );
    }
    drop(span_finalize);
    let finalize_time = t2.elapsed();

    let stats = RunStats {
        prep_time,
        mi_time,
        finalize_time,
        pairs,
        candidates: candidate_count,
        joints_evaluated,
        threshold,
        null_mean: pooled.mean(),
        null_sd: if pooled.count() >= 2 {
            pooled.std_dev()
        } else {
            0.0
        },
        tile_size,
        threads,
        execution,
    };
    InferenceResult { network, stats }
}

/// Process one tile: expand the tile's column genes into the dense layout
/// once (vector kernel only), then evaluate every pair with its nulls.
pub(crate) fn process_tile(
    tile: &Tile,
    prepared: &[PreparedGene],
    perms: &PermutationSet,
    kernel: MiKernel,
    explicit_threshold: Option<f64>,
    state: &mut ThreadState,
) {
    let col_base = tile.col_start as usize;
    let dense: Vec<Option<DenseWeights>> = match kernel {
        MiKernel::VectorDense => (tile.col_start..tile.col_end)
            .map(|j| Some(prepared[j as usize].to_dense()))
            .collect(),
        MiKernel::ScalarSparse => Vec::new(),
    };

    for (i, j) in tile.pairs() {
        let y_dense = match kernel {
            MiKernel::VectorDense => dense[j as usize - col_base].as_ref(),
            MiKernel::ScalarSparse => None,
        };
        let res = mi_with_nulls(
            kernel,
            &prepared[i as usize],
            &prepared[j as usize],
            y_dense,
            perms.as_vecs(),
            &mut state.scratch,
        );
        state.joints += 1 + res.null.len() as u64;
        state.pooled.extend(&res.null);
        if res.exceed_count() == 0 {
            let keep = match explicit_threshold {
                Some(t) => res.observed > t,
                None => true,
            };
            if keep {
                state.candidates.push(Candidate {
                    i,
                    j,
                    observed: res.observed,
                });
            }
        }
    }
}

/// Early-exit tile processing: nulls are skipped below the global
/// threshold and abandoned at the first exceedance. No pooled-null
/// accumulation happens here — the threshold was resolved up front.
fn process_tile_early_exit(
    tile: &Tile,
    prepared: &[PreparedGene],
    perms: &PermutationSet,
    kernel: MiKernel,
    threshold: f64,
    state: &mut ThreadState,
) {
    let col_base = tile.col_start as usize;
    let dense: Vec<Option<DenseWeights>> = match kernel {
        MiKernel::VectorDense => (tile.col_start..tile.col_end)
            .map(|j| Some(prepared[j as usize].to_dense()))
            .collect(),
        MiKernel::ScalarSparse => Vec::new(),
    };

    for (i, j) in tile.pairs() {
        let y_dense = match kernel {
            MiKernel::VectorDense => dense[j as usize - col_base].as_ref(),
            MiKernel::ScalarSparse => None,
        };
        let res = mi_with_nulls_early_exit(
            kernel,
            &prepared[i as usize],
            &prepared[j as usize],
            y_dense,
            perms.as_vecs(),
            threshold,
            &mut state.scratch,
        );
        state.joints += res.joints_evaluated as u64;
        if res.survived {
            state.candidates.push(Candidate {
                i,
                j,
                observed: res.observed,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_expr::synth::{self, Coupling};
    use gnet_graph::recovery_score;
    use gnet_grnsim::{GrnConfig, SyntheticDataset};
    use gnet_parallel::SchedulerPolicy;

    fn fast_config() -> InferenceConfig {
        InferenceConfig {
            permutations: 12,
            threads: Some(2),
            tile_size: Some(8),
            ..InferenceConfig::default()
        }
    }

    #[test]
    fn recovers_planted_linear_pairs() {
        let (matrix, truth) = synth::coupled_pairs(5, 400, Coupling::Linear(0.9), 3);
        let result = infer_network(&matrix, &fast_config());
        let score = recovery_score(&result.network, &truth);
        assert_eq!(
            score.false_negatives, 0,
            "all strong planted pairs must be found"
        );
        assert!(
            score.precision() > 0.8,
            "at α=0.01 spurious edges must be rare: {:?}",
            result.network.edges()
        );
        assert_eq!(result.stats.pairs, 45);
    }

    #[test]
    fn recovers_nonlinear_pairs_that_pearson_misses() {
        let (matrix, truth) = synth::coupled_pairs(3, 800, Coupling::Quadratic(0.1), 7);
        let result = infer_network(&matrix, &fast_config());
        let score = recovery_score(&result.network, &truth);
        assert_eq!(
            score.false_negatives,
            0,
            "MI must see the quadratic coupling, got {:?}",
            result.network.edges()
        );
    }

    #[test]
    fn independent_data_yields_almost_no_edges() {
        let matrix = synth::independent_gaussian(24, 300, 11);
        let result = infer_network(&matrix, &fast_config());
        // 276 pairs at family-wise α=0.01 ⇒ expected false edges « 1;
        // allow a couple for the normal-tail approximation.
        assert!(
            result.network.edge_count() <= 2,
            "independent data produced {} edges",
            result.network.edge_count()
        );
    }

    #[test]
    fn all_schedulers_and_kernels_agree_on_the_network() {
        let (matrix, _) = synth::coupled_pairs(4, 300, Coupling::Linear(0.85), 5);
        let reference = infer_network(&matrix, &fast_config());
        for policy in SchedulerPolicy::ALL {
            for kernel in [MiKernel::ScalarSparse, MiKernel::VectorDense] {
                let cfg = InferenceConfig {
                    scheduler: policy,
                    kernel,
                    threads: Some(3),
                    tile_size: Some(3),
                    ..fast_config()
                };
                let run = infer_network(&matrix, &cfg);
                assert_eq!(
                    run.network.edges().len(),
                    reference.network.edges().len(),
                    "{policy:?}/{kernel:?} changed the edge count"
                );
                for (a, b) in run.network.edges().iter().zip(reference.network.edges()) {
                    assert_eq!(a.key(), b.key(), "{policy:?}/{kernel:?} changed the edges");
                    assert!(
                        (a.weight - b.weight).abs() < 1e-3,
                        "{policy:?}/{kernel:?} changed a weight: {} vs {}",
                        a.weight,
                        b.weight
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs_with_fixed_seed() {
        let (matrix, _) = synth::coupled_pairs(3, 200, Coupling::Linear(0.8), 9);
        let a = infer_network(&matrix, &fast_config());
        let b = infer_network(&matrix, &fast_config());
        assert_eq!(a.network, b.network);
        assert_eq!(a.stats.threshold, b.stats.threshold);
    }

    #[test]
    fn explicit_threshold_mode_without_permutations() {
        let (matrix, truth) = synth::coupled_pairs(4, 300, Coupling::Linear(0.95), 2);
        let cfg = InferenceConfig {
            permutations: 0,
            mi_threshold: Some(0.25),
            ..fast_config()
        };
        let result = infer_network(&matrix, &cfg);
        assert_eq!(result.stats.threshold, 0.25);
        let score = recovery_score(&result.network, &truth);
        assert_eq!(score.false_negatives, 0);
    }

    #[test]
    fn stats_are_populated() {
        let (matrix, _) = synth::coupled_pairs(4, 200, Coupling::Linear(0.9), 4);
        let r = infer_network(&matrix, &fast_config());
        assert_eq!(r.stats.pairs, 28);
        assert!(r.stats.candidates >= r.network.edge_count() as u64);
        assert!(r.stats.null_sd > 0.0);
        assert!(r.stats.threshold > r.stats.null_mean);
        assert_eq!(r.stats.threads, 2);
        assert_eq!(r.stats.tile_size, 8);
        assert!(r.stats.pair_rate() > 0.0);
        assert_eq!(r.stats.execution.total_pairs(), 28);
    }

    #[test]
    fn gene_names_propagate_to_the_network() {
        let mut matrix = synth::independent_uniform(3, 50, 1);
        matrix
            .set_gene_names(vec!["AT1G1".into(), "AT1G2".into(), "AT1G3".into()])
            .unwrap();
        let r = infer_network(&matrix, &fast_config());
        assert_eq!(r.network.gene_names(), matrix.gene_names());
    }

    #[test]
    fn works_on_mechanistic_grn_data() {
        let ds = SyntheticDataset::generate(
            GrnConfig {
                genes: 40,
                samples: 300,
                ..GrnConfig::small()
            },
            21,
        );
        let r = infer_network(&ds.matrix, &fast_config());
        let score = recovery_score(&r.network, &ds.truth_edges());
        // Mechanistic data is harder than clean coupled pairs: a relevance
        // network legitimately reports indirect (2-hop) dependencies as
        // edges, so raw precision is modest by design — what must hold is
        // meaningful recall, precision far above chance (density ≈ 0.05
        // would be chance-level here), and that DPI pruning trades recall
        // for precision as the ARACNE lineage predicts.
        assert!(score.recall() > 0.3, "recall {}", score.recall());
        assert!(score.precision() > 0.12, "precision {}", score.precision());

        let pruned = gnet_graph::dpi::dpi_prune(&r.network, 0.05);
        let pruned_score = recovery_score(&pruned, &ds.truth_edges());
        assert!(
            pruned_score.precision() > score.precision(),
            "DPI must raise precision: {} → {}",
            score.precision(),
            pruned_score.precision()
        );
    }

    #[test]
    fn early_exit_matches_exact_given_the_same_threshold() {
        let (matrix, _) = synth::coupled_pairs(5, 300, Coupling::Linear(0.85), 41);
        let exact = InferenceConfig {
            mi_threshold: Some(0.08),
            ..fast_config()
        };
        let early = InferenceConfig {
            null_strategy: crate::config::NullStrategy::EarlyExit,
            ..exact
        };
        let a = infer_network(&matrix, &exact);
        let b = infer_network(&matrix, &early);
        assert_eq!(a.network.edges().len(), b.network.edges().len());
        for (x, y) in a.network.edges().iter().zip(b.network.edges()) {
            assert_eq!(x.key(), y.key());
            assert!((x.weight - y.weight).abs() < 1e-6);
        }
        assert!(
            b.stats.joints_evaluated * 2 < a.stats.joints_evaluated,
            "early exit must at least halve the work: {} vs {}",
            b.stats.joints_evaluated,
            a.stats.joints_evaluated
        );
        assert_eq!(a.stats.joints_evaluated, a.stats.pairs * 13); // q=12 → 13 joints
    }

    #[test]
    fn early_exit_with_estimated_threshold_recovers_planted_pairs() {
        let (matrix, truth) = synth::coupled_pairs(5, 400, Coupling::Linear(0.9), 19);
        let cfg = InferenceConfig {
            null_strategy: crate::config::NullStrategy::EarlyExit,
            null_sample_pairs: 30,
            ..fast_config()
        };
        let r = infer_network(&matrix, &cfg);
        let score = recovery_score(&r.network, &truth);
        assert_eq!(score.false_negatives, 0, "edges: {:?}", r.network.edges());
        assert!(score.precision() > 0.8);
        assert!(
            r.stats.threshold > 0.0,
            "pre-pass must have produced a threshold"
        );
        assert!(
            r.stats.null_sd > 0.0,
            "pre-pass pooled stats must be recorded"
        );
    }

    #[test]
    fn early_exit_controls_false_positives_on_null_data() {
        let matrix = synth::independent_gaussian(24, 300, 911);
        let cfg = InferenceConfig {
            null_strategy: crate::config::NullStrategy::EarlyExit,
            null_sample_pairs: 60,
            ..fast_config()
        };
        let r = infer_network(&matrix, &cfg);
        assert!(
            r.network.edge_count() <= 2,
            "{} false edges under early exit",
            r.network.edge_count()
        );
    }

    #[test]
    #[should_panic(expected = "at least two genes")]
    fn single_gene_matrix_rejected() {
        let matrix = synth::independent_uniform(1, 50, 1);
        let _ = infer_network(&matrix, &fast_config());
    }

    // --- PRNG / pre-pass sampling regressions ---------------------------

    #[test]
    fn below_is_unbiased_at_large_bounds() {
        // With bound = 3·2^62, the raw modulo reduction maps the first
        // 2^62 residues twice and the rest once, so P(x < 2^62) ≈ 1/2
        // under the old biased code but exactly 1/3 under rejection
        // sampling. 20k draws separate the two decisively.
        let bound = 3u64 << 62;
        let mark = 1u64 << 62;
        let mut rng = SplitMix64(42);
        let draws = 20_000;
        let mut low = 0u64;
        for _ in 0..draws {
            let x = rng.below(bound);
            assert!(x < bound);
            if x < mark {
                low += 1;
            }
        }
        let frac = low as f64 / draws as f64;
        assert!(
            (frac - 1.0 / 3.0).abs() < 0.02,
            "rejection sampling must hit the low third ~1/3 of the time, got {frac}"
        );
    }

    #[test]
    fn below_stays_in_range_for_small_bounds() {
        let mut rng = SplitMix64(7);
        for bound in [1u64, 2, 3, 5, 17, 244] {
            for _ in 0..1_000 {
                assert!(rng.below(bound) < bound);
            }
        }
        // bound 0 is clamped to 1 rather than dividing by zero.
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn sampled_prepass_pairs_are_distinct_and_in_range() {
        // 8 genes → 28 unordered pairs; ask for all of them. Any duplicate
        // draw (the old pre-pass bug) would loop forever or repeat a pair.
        let mut rng = SplitMix64(1234);
        let pairs = sample_unique_pairs(&mut rng, 8, 28);
        assert_eq!(pairs.len(), 28);
        let mut seen = std::collections::HashSet::new();
        for &(i, j) in &pairs {
            assert!(i < j, "pairs must be normalized to i < j: ({i}, {j})");
            assert!(j < 8);
            assert!(seen.insert((i, j)), "duplicate pair ({i}, {j})");
        }
    }

    #[test]
    fn pair_sampling_is_roughly_uniform() {
        // Draw 5 of 45 pairs many times and check that every pair is hit
        // with a frequency close to 5/45 = 1/9.
        let mut counts = std::collections::HashMap::new();
        let rounds = 9_000;
        for seed in 0..rounds {
            let mut rng = SplitMix64(seed);
            for pair in sample_unique_pairs(&mut rng, 10, 5) {
                *counts.entry(pair).or_insert(0u64) += 1;
            }
        }
        assert_eq!(counts.len(), 45, "every pair must eventually be drawn");
        let expect = rounds as f64 * 5.0 / 45.0;
        for (pair, count) in counts {
            let ratio = count as f64 / expect;
            assert!(
                (0.8..1.2).contains(&ratio),
                "pair {pair:?} drawn {count} times, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn early_exit_on_two_gene_matrix_terminates() {
        // Regression for the clamp order: total_pairs = 1 but the old code
        // forced sample ≥ 2, which the dedupe sampler can never satisfy.
        let (matrix, _) = synth::coupled_pairs(1, 100, Coupling::Linear(0.9), 3);
        let cfg = InferenceConfig {
            null_strategy: crate::config::NullStrategy::EarlyExit,
            null_sample_pairs: 50,
            ..fast_config()
        };
        let r = infer_network(&matrix, &cfg);
        assert_eq!(r.stats.pairs, 1);
    }

    // --- tracing --------------------------------------------------------

    #[test]
    fn traced_run_records_stages_counters_and_tiles() {
        let (matrix, _) = synth::coupled_pairs(4, 200, Coupling::Linear(0.9), 4);
        let rec = Recorder::enabled();
        let r = infer_network_traced(&matrix, &fast_config(), &rec);
        assert_eq!(rec.counter("mi.pairs"), Some(28));
        assert_eq!(
            rec.counter("mi.joints_evaluated"),
            Some(r.stats.joints_evaluated)
        );
        assert_eq!(rec.counter("mi.candidates"), Some(r.stats.candidates));
        let hist = rec
            .histogram(gnet_parallel::HIST_TILE_US)
            .expect("tile histogram must be recorded");
        assert_eq!(hist.count(), r.stats.execution.total_tiles() as u64);
        assert!(rec.span_count() >= 3, "three stage spans expected");
    }

    #[test]
    fn disabled_recorder_changes_nothing() {
        let (matrix, _) = synth::coupled_pairs(3, 200, Coupling::Linear(0.8), 9);
        let a = infer_network(&matrix, &fast_config());
        let b = infer_network_traced(&matrix, &fast_config(), &Recorder::disabled());
        assert_eq!(a.network, b.network);
        assert_eq!(a.stats.threshold, b.stats.threshold);
    }
}
