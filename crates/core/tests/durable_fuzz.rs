//! Exhaustive corruption fuzz over the GNETCKP durable-checkpoint
//! format: every truncation length, oversized declared payload lengths,
//! and single-bit flips across the whole file must surface as a typed
//! [`CheckpointError`] — never a panic, never a silently wrong load.
//!
//! The in-module tests in `durable.rs` spot-check a handful of
//! corruptions; this suite sweeps them exhaustively, including the
//! decoder paths behind the integrity digest (reached by re-computing a
//! consistent digest over a mutated payload, modeling an attacker or a
//! buggy writer rather than media corruption).

use gnet_core::checkpoint::{infer_network_resumable, Checkpoint};
use gnet_core::durable::{CheckpointError, CheckpointStore};
use gnet_core::InferenceConfig;
use gnet_expr::synth::{coupled_pairs, Coupling};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// File-format constants, restated from `durable.rs`'s schema doc. The
/// round-trip asserts in [`checkpoint_file`] keep them honest: if the
/// format drifts, this suite fails loudly instead of fuzzing stale
/// offsets.
const HEADER_LEN: usize = 28;
const PAYLOAD_LEN_OFFSET: usize = 12;
const DIGEST_OFFSET: usize = 20;

/// FNV-1a 64, mirroring the (private) digest in `durable.rs` so the
/// decoder-fuzz tests can forge internally-consistent files.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    // ordering: test-local unique-id counter; no synchronization needed.
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gnet-fuzz-{tag}-{}-{n}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir must be creatable");
    dir
}

fn real_checkpoint() -> Checkpoint {
    let (matrix, _) = coupled_pairs(6, 180, Coupling::Linear(0.85), 77);
    let cfg = InferenceConfig {
        permutations: 10,
        threads: Some(1),
        tile_size: Some(6),
        scheduler: gnet_parallel::SchedulerPolicy::StaticCyclic,
        ..InferenceConfig::default()
    };
    infer_network_resumable(&matrix, &cfg, None, 1, |_| false)
        .expect_err("stopping at the first chunk boundary yields a checkpoint")
}

/// A store plus the exact bytes `save` produced, with the stated header
/// layout verified so every offset below is known-good.
fn checkpoint_file(tag: &str) -> (CheckpointStore, Vec<u8>) {
    let store = CheckpointStore::new(tmpdir(tag));
    store.save(&real_checkpoint()).expect("save succeeds");
    let bytes = fs::read(store.path()).expect("file readable");
    assert!(bytes.len() > HEADER_LEN, "payload must be non-empty");
    assert_eq!(&bytes[..8], b"GNETCKP\x01");
    let declared = u64::from_le_bytes(
        bytes[PAYLOAD_LEN_OFFSET..PAYLOAD_LEN_OFFSET + 8]
            .try_into()
            .expect("8 bytes"),
    );
    assert_eq!(declared, (bytes.len() - HEADER_LEN) as u64);
    let digest = u64::from_le_bytes(
        bytes[DIGEST_OFFSET..DIGEST_OFFSET + 8]
            .try_into()
            .expect("8 bytes"),
    );
    assert_eq!(digest, fnv1a64(&bytes[HEADER_LEN..]));
    (store, bytes)
}

fn expect_typed_rejection(store: &CheckpointStore, what: &str) -> CheckpointError {
    let err = store
        .load()
        .err()
        .unwrap_or_else(|| panic!("{what}: corrupted file must not load"));
    assert!(
        matches!(
            err,
            CheckpointError::Corrupt { .. } | CheckpointError::IntegrityMismatch { .. }
        ),
        "{what}: expected Corrupt or IntegrityMismatch, got {err}"
    );
    err
}

#[test]
fn every_truncation_length_is_rejected_with_a_typed_error() {
    let (store, full) = checkpoint_file("truncate-all");
    for cut in 0..full.len() {
        fs::write(store.path(), &full[..cut]).expect("rewrite");
        let err = expect_typed_rejection(&store, &format!("truncated to {cut} bytes"));
        // Below the header the structural check fires; past it the
        // declared length no longer matches the bytes on disk.
        if cut < HEADER_LEN {
            assert!(
                matches!(err, CheckpointError::Corrupt { .. }),
                "cut {cut}: {err}"
            );
        }
    }
    // The untouched file still loads: the sweep corrupted, not the save.
    fs::write(store.path(), &full).expect("rewrite");
    store.load().expect("pristine file loads");
}

#[test]
fn oversized_declared_payload_lengths_are_rejected() {
    let (store, full) = checkpoint_file("oversize-len");
    let actual = (full.len() - HEADER_LEN) as u64;
    // One past the truth, absurdly large (would OOM if trusted as an
    // allocation size), the u64 extremes, and zero.
    for declared in [actual + 1, actual * 1000, 1 << 60, u64::MAX, 0] {
        let mut bytes = full.clone();
        bytes[PAYLOAD_LEN_OFFSET..PAYLOAD_LEN_OFFSET + 8].copy_from_slice(&declared.to_le_bytes());
        fs::write(store.path(), &bytes).expect("rewrite");
        let err = expect_typed_rejection(&store, &format!("declared payload length {declared}"));
        assert!(
            matches!(err, CheckpointError::Corrupt { ref reason, .. } if reason.contains("length")),
            "declared {declared}: {err}"
        );
    }
}

#[test]
fn every_single_bit_flip_in_the_header_is_rejected() {
    let (store, full) = checkpoint_file("flip-header");
    for byte in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut bytes = full.clone();
            bytes[byte] ^= 1 << bit;
            fs::write(store.path(), &bytes).expect("rewrite");
            let err = expect_typed_rejection(&store, &format!("header byte {byte} bit {bit}"));
            // A digest-field flip is indistinguishable from payload
            // damage and must fail the integrity check; every other
            // header field is validated structurally first.
            if (DIGEST_OFFSET..DIGEST_OFFSET + 8).contains(&byte) {
                assert!(
                    matches!(err, CheckpointError::IntegrityMismatch { .. }),
                    "byte {byte} bit {bit}: {err}"
                );
            } else {
                assert!(
                    matches!(err, CheckpointError::Corrupt { .. }),
                    "byte {byte} bit {bit}: {err}"
                );
            }
        }
    }
}

#[test]
fn every_single_bit_flip_in_the_payload_fails_the_integrity_check() {
    let (store, full) = checkpoint_file("flip-payload");
    for byte in HEADER_LEN..full.len() {
        // One flip per byte, rotating through all eight bit positions
        // across the sweep; FNV-1a is sensitive to any single-bit change.
        let bit = (byte - HEADER_LEN) % 8;
        let mut bytes = full.clone();
        bytes[byte] ^= 1 << bit;
        fs::write(store.path(), &bytes).expect("rewrite");
        assert!(
            matches!(store.load(), Err(CheckpointError::IntegrityMismatch { .. })),
            "payload byte {byte} bit {bit} must fail the digest"
        );
    }
}

/// Forge a file whose header is internally consistent (correct declared
/// length and digest) around `payload`, reaching the payload decoder
/// behind the integrity check.
fn forge(store: &CheckpointStore, payload: &[u8]) {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(b"GNETCKP\x01");
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    fs::write(store.path(), &bytes).expect("rewrite");
}

#[test]
fn truncated_payloads_with_consistent_digests_are_rejected_by_the_decoder() {
    let (store, full) = checkpoint_file("decoder-truncate");
    let payload = &full[HEADER_LEN..];
    for cut in 0..payload.len() {
        forge(&store, &payload[..cut]);
        let err = store
            .load()
            .err()
            .unwrap_or_else(|| panic!("payload truncated to {cut} bytes must not decode"));
        assert!(
            matches!(err, CheckpointError::Corrupt { .. }),
            "cut {cut}: {err}"
        );
    }
    // Sanity: the full payload re-forged through the same path loads.
    forge(&store, payload);
    store.load().expect("forged-but-intact file loads");
}

#[test]
fn oversized_candidate_counts_are_rejected_before_allocating() {
    let (store, full) = checkpoint_file("decoder-candidates");
    let payload = &full[HEADER_LEN..];
    // The candidate count is the u32 after seven u64 fields.
    let count_offset = 8 * 7;
    let just_past = u32::try_from(payload.len()).expect("payload is small") + 1;
    for declared in [u32::MAX, 1 << 28, just_past] {
        let mut forged = payload.to_vec();
        forged[count_offset..count_offset + 4].copy_from_slice(&declared.to_le_bytes());
        forge(&store, &forged);
        let err = store
            .load()
            .err()
            .unwrap_or_else(|| panic!("candidate count {declared} must not decode"));
        assert!(
            matches!(err, CheckpointError::Corrupt { ref reason, .. }
                if reason.contains("candidate")),
            "declared count {declared}: {err}"
        );
    }
}
