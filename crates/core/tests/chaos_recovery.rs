//! Chaos regression: kill the run at *every* chunk boundary and prove
//! resume reconstructs the exact network.
//!
//! For a 64-gene matrix, the suite first runs an uninterrupted durable
//! inference to learn the reference network and how many checkpoint
//! boundaries the tiling produces. It then replays the run once per
//! boundary with an injected [`gnet_fault::Fault::CrashAtChunk`], checks
//! the kill surfaces as a typed [`CheckpointError::Interrupted`] (never a
//! panic), resumes from the durable file in a fresh fault-free store, and
//! asserts the recovered result is **bit-identical** to the reference:
//! same edge keys, same edge weights, same pooled-null moments and
//! threshold down to the last mantissa bit.

use gnet_core::{
    infer_network_durable, CheckpointError, CheckpointStore, InferenceConfig, InferenceResult,
};
use gnet_expr::synth::{coupled_pairs, Coupling};
use gnet_expr::ExpressionMatrix;
use gnet_fault::{names, FaultInjector, FaultPlan};
use gnet_parallel::SchedulerPolicy;
use gnet_trace::Recorder;
use std::path::PathBuf;

/// 64 genes: 32 coupled pairs, everything across pairs independent.
fn chaos_matrix() -> ExpressionMatrix {
    let (matrix, _) = coupled_pairs(32, 120, Coupling::Linear(0.85), 77);
    matrix
}

/// Static partition + fixed thread count: per-thread accumulation order
/// is reproducible, which every bit-level assertion below relies on.
fn chaos_config() -> InferenceConfig {
    InferenceConfig {
        permutations: 8,
        threads: Some(2),
        tile_size: Some(16),
        scheduler: SchedulerPolicy::StaticCyclic,
        ..InferenceConfig::default()
    }
}

/// Checkpoint cadence in tiles; 64 genes at tile 16 gives 10 tiles, so
/// every boundary index in `0..5` fires mid-run or at the finish line.
const CHECKPOINT_EVERY: usize = 2;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gnet-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir must be creatable");
    dir
}

/// Everything the reference and the recovered run must agree on, bit for
/// bit: edges `(a, b, weight bits)`, then threshold / null-mean /
/// null-sd bits and the joint-evaluation count.
type Fingerprint = (Vec<(u32, u32, u32)>, u64, u64, u64, u64);

fn fingerprint(result: &InferenceResult) -> Fingerprint {
    let edges: Vec<(u32, u32, u32)> = result
        .network
        .edges()
        .iter()
        .map(|e| (e.a, e.b, e.weight.to_bits()))
        .collect();
    (
        edges,
        result.stats.threshold.to_bits(),
        result.stats.null_mean.to_bits(),
        result.stats.null_sd.to_bits(),
        result.stats.joints_evaluated,
    )
}

#[test]
fn kill_at_every_chunk_boundary_resumes_bit_identically() {
    let matrix = chaos_matrix();
    let config = chaos_config();

    // Uninterrupted reference; the recorder counts how many checkpoint
    // boundaries this tiling actually produces.
    let ref_rec = Recorder::enabled();
    let reference = infer_network_durable(
        &matrix,
        &config,
        &CheckpointStore::with_faults(tmpdir("ref"), FaultInjector::none(), &ref_rec),
        CHECKPOINT_EVERY,
        false,
        &ref_rec,
    )
    .expect("uninterrupted run finishes");
    let reference_print = fingerprint(&reference);
    assert!(
        !reference.network.edges().is_empty(),
        "reference network must be non-trivial for the comparison to mean anything"
    );

    let boundaries = ref_rec.event_count("checkpoint.saved");
    assert!(
        boundaries >= 5,
        "need several chunk boundaries for chaos coverage, got {boundaries}"
    );

    let mut last_tiles_done = 0usize;
    for b in 0..boundaries {
        // Phase 1: the killed run. The crash fires after boundary b's
        // checkpoint is durably written.
        let dir = tmpdir(&format!("kill-{b}"));
        let plan = FaultPlan::parse(&format!("seed=1;chunk-crash(boundary={b})"))
            .expect("chaos plan parses");
        let rec = Recorder::enabled();
        let store =
            CheckpointStore::with_faults(&dir, FaultInjector::from_plan_traced(&plan, &rec), &rec);
        let err = infer_network_durable(&matrix, &config, &store, CHECKPOINT_EVERY, false, &rec)
            .expect_err("injected kill at boundary {b} must interrupt the run");
        let CheckpointError::Interrupted { tiles_done } = err else {
            panic!("boundary {b}: expected Interrupted, got {err}");
        };
        assert!(
            tiles_done > 0,
            "boundary {b}: kill fired before any progress"
        );
        assert!(
            tiles_done > last_tiles_done,
            "boundary {b}: later kills must checkpoint strictly more tiles \
             ({tiles_done} vs {last_tiles_done})"
        );
        last_tiles_done = tiles_done;
        assert_eq!(
            rec.event_count(names::EVT_CHUNK_CRASH),
            1,
            "boundary {b}: exactly one injected kill"
        );
        assert!(
            store.path().exists(),
            "boundary {b}: durable checkpoint survives the kill"
        );

        // Phase 2: "restart the process" — a fresh fault-free store over
        // the same directory, resuming from the survivor file.
        let rec2 = Recorder::enabled();
        let store2 = CheckpointStore::with_faults(&dir, FaultInjector::none(), &rec2);
        let resumed =
            infer_network_durable(&matrix, &config, &store2, CHECKPOINT_EVERY, true, &rec2)
                .expect("resume after the kill finishes");
        assert_eq!(
            rec2.counter(names::CNT_RESUMES),
            Some(1),
            "boundary {b}: resume must load the checkpoint, not restart from scratch"
        );
        assert_eq!(
            fingerprint(&resumed),
            reference_print,
            "boundary {b}: recovered network must be bit-identical to the reference"
        );
        store2.clear().expect("cleanup");
    }
    let total_tiles: usize = reference
        .stats
        .execution
        .per_thread
        .iter()
        .map(|t| t.tiles)
        .sum();
    assert_eq!(
        last_tiles_done, total_tiles,
        "the final boundary's checkpoint must cover the whole tile space"
    );
}

#[test]
fn corrupted_checkpoint_is_rejected_on_resume_not_resumed_wrongly() {
    let matrix = chaos_matrix();
    let config = chaos_config();
    let dir = tmpdir("corrupt-resume");

    // Kill at the second boundary, then damage the survivor file.
    let plan = FaultPlan::parse("seed=1;chunk-crash(boundary=1)").expect("plan parses");
    let store =
        CheckpointStore::with_faults(&dir, FaultInjector::from_plan(&plan), &Recorder::disabled());
    let err = infer_network_durable(
        &matrix,
        &config,
        &store,
        CHECKPOINT_EVERY,
        false,
        &Recorder::disabled(),
    )
    .expect_err("injected kill interrupts");
    assert!(matches!(err, CheckpointError::Interrupted { .. }));

    let path = store.path();
    let mut bytes = std::fs::read(&path).expect("checkpoint readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).expect("rewrite damaged file");

    let store2 = CheckpointStore::new(&dir);
    let err = infer_network_durable(
        &matrix,
        &config,
        &store2,
        CHECKPOINT_EVERY,
        true,
        &Recorder::disabled(),
    )
    .expect_err("damaged checkpoint must be rejected");
    assert!(
        matches!(err, CheckpointError::IntegrityMismatch { .. }),
        "expected a typed integrity error, got {err}"
    );
    store2.clear().expect("cleanup");
}

#[test]
fn checkpoint_from_a_different_run_is_rejected_on_resume() {
    let matrix = chaos_matrix();
    let config = chaos_config();
    let dir = tmpdir("stale-resume");

    let plan = FaultPlan::parse("seed=1;chunk-crash(boundary=0)").expect("plan parses");
    let store =
        CheckpointStore::with_faults(&dir, FaultInjector::from_plan(&plan), &Recorder::disabled());
    infer_network_durable(
        &matrix,
        &config,
        &store,
        CHECKPOINT_EVERY,
        false,
        &Recorder::disabled(),
    )
    .expect_err("injected kill interrupts");

    // Same directory, different run: more permutations changes the run
    // digest, so the survivor checkpoint no longer applies.
    let other = InferenceConfig {
        permutations: 16,
        ..chaos_config()
    };
    let store2 = CheckpointStore::new(&dir);
    let err = infer_network_durable(
        &matrix,
        &other,
        &store2,
        CHECKPOINT_EVERY,
        true,
        &Recorder::disabled(),
    )
    .expect_err("stale checkpoint must be rejected");
    assert!(
        matches!(err, CheckpointError::StaleRun { .. }),
        "expected a typed stale-run error, got {err}"
    );
    store2.clear().expect("cleanup");
}
