//! Seeded, replayable conformance corpus.
//!
//! Every dataset the harness runs is described by a [`DatasetSpec`] — a
//! (class, genes, samples, seed) quadruple whose [`DatasetSpec::build`] is
//! a pure function. The spec's [`DatasetSpec::replay`] string is the
//! *replay seed* the report emits on failure: feeding it back through
//! `gnet conformance --replay` (or [`DatasetSpec::parse`]) rebuilds the
//! exact failing input, including after shrinking, because shrinking only
//! edits the `genes`/`samples` fields of the spec.
//!
//! The classes target the estimator's historically fragile inputs:
//! constant genes (degenerate marginals), tied ranks (B-spline weight
//! collisions), near-duplicate profiles (MI near its self-information
//! ceiling), tiny sample counts (windows wider than the data), and
//! adversarial magnitudes (rank transform over 60 decades).

use gnet_expr::synth::{self, Coupling};
use gnet_expr::ExpressionMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The structural family a generated dataset belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetClass {
    /// i.i.d. standard-normal noise — every pair independent.
    IndependentGaussian,
    /// Consecutive gene pairs linearly coupled at ρ = 0.9.
    CoupledLinear,
    /// Every third gene is a constant profile (zero marginal entropy).
    ConstantGenes,
    /// Values quantized to ≤ 5 levels — heavy rank ties.
    TiedRanks,
    /// Odd genes are near-copies of their predecessor (MI near H(X)).
    NearDuplicates,
    /// Very small sample counts (m down to 2).
    TinySamples,
    /// Magnitudes spanning ±1e±30, exact zeros, exact duplicates.
    AdversarialRange,
}

impl DatasetClass {
    /// Every class, in corpus order.
    pub const ALL: [DatasetClass; 7] = [
        Self::IndependentGaussian,
        Self::CoupledLinear,
        Self::ConstantGenes,
        Self::TiedRanks,
        Self::NearDuplicates,
        Self::TinySamples,
        Self::AdversarialRange,
    ];

    /// Stable slug used in replay strings and reports.
    pub fn slug(&self) -> &'static str {
        match self {
            Self::IndependentGaussian => "independent-gaussian",
            Self::CoupledLinear => "coupled-linear",
            Self::ConstantGenes => "constant-genes",
            Self::TiedRanks => "tied-ranks",
            Self::NearDuplicates => "near-duplicates",
            Self::TinySamples => "tiny-samples",
            Self::AdversarialRange => "adversarial-range",
        }
    }

    /// Inverse of [`Self::slug`].
    pub fn from_slug(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.slug() == s)
    }
}

/// A fully replayable dataset description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Structural family.
    pub class: DatasetClass,
    /// Gene count `n`.
    pub genes: usize,
    /// Sample count `m`.
    pub samples: usize,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// The replay seed: a string that reconstructs this exact dataset via
    /// [`Self::parse`] / `gnet conformance --replay`.
    pub fn replay(&self) -> String {
        format!(
            "class={};genes={};samples={};seed={}",
            self.class.slug(),
            self.genes,
            self.samples,
            self.seed
        )
    }

    /// Parse a replay string produced by [`Self::replay`].
    ///
    /// # Errors
    /// Returns a human-readable message on any malformed field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut class = None;
        let mut genes = None;
        let mut samples = None;
        let mut seed = None;
        for part in text.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("replay field {part:?} is not key=value"))?;
            match key {
                "class" => {
                    class = Some(
                        DatasetClass::from_slug(value)
                            .ok_or_else(|| format!("unknown dataset class {value:?}"))?,
                    );
                }
                "genes" => genes = Some(parse_num(key, value)?),
                "samples" => samples = Some(parse_num(key, value)?),
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("bad seed {value:?}: {e}"))?,
                    );
                }
                other => return Err(format!("unknown replay field {other:?}")),
            }
        }
        let spec = Self {
            class: class.ok_or("replay string missing class=")?,
            genes: genes.ok_or("replay string missing genes=")?,
            samples: samples.ok_or("replay string missing samples=")?,
            seed: seed.ok_or("replay string missing seed=")?,
        };
        if spec.genes < 2 || spec.samples < 2 {
            return Err("conformance datasets need at least 2 genes and 2 samples".into());
        }
        Ok(spec)
    }

    /// Deterministically build the dataset this spec describes.
    ///
    /// # Panics
    /// Panics if `genes < 2` or `samples < 2` (the corpus and the
    /// shrinker never go below either).
    pub fn build(&self) -> ExpressionMatrix {
        assert!(self.genes >= 2 && self.samples >= 2, "degenerate spec");
        let (n, m, seed) = (self.genes, self.samples, self.seed);
        match self.class {
            DatasetClass::IndependentGaussian | DatasetClass::TinySamples => {
                synth::independent_gaussian(n, m, seed)
            }
            DatasetClass::CoupledLinear => {
                let (full, _) = synth::coupled_pairs(n.div_ceil(2), m, Coupling::Linear(0.9), seed);
                let keep: Vec<usize> = (0..n).collect();
                full.select_genes(&keep)
            }
            DatasetClass::ConstantGenes => {
                let mut matrix = synth::independent_gaussian(n, m, seed);
                for g in (0..n).step_by(3) {
                    matrix.gene_mut(g).fill(1.5);
                }
                matrix
            }
            DatasetClass::TiedRanks => {
                let mut matrix = synth::independent_gaussian(n, m, seed);
                for g in 0..n {
                    for v in matrix.gene_mut(g) {
                        // ≤ 5 distinct levels ⇒ heavy tie groups in the
                        // rank transform.
                        *v = v.floor().clamp(-2.0, 2.0);
                    }
                }
                matrix
            }
            DatasetClass::NearDuplicates => {
                let mut matrix = synth::independent_gaussian(n, m, seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x6475_7065); // "dupe"
                for g in (1..n).step_by(2) {
                    let base: Vec<f32> = matrix.gene(g - 1).to_vec();
                    for (v, b) in matrix.gene_mut(g).iter_mut().zip(&base) {
                        *v = b + 1e-3 * (rng.gen::<f32>() - 0.5);
                    }
                }
                matrix
            }
            DatasetClass::AdversarialRange => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut data = Vec::with_capacity(n * m);
                let mut prev = 1.0f32;
                for _ in 0..n * m {
                    let v: f32 = match rng.gen_range(0u32..6) {
                        0 => 0.0,
                        1 => -0.0,
                        // ±huge and ±tiny magnitudes: the rank transform
                        // must order 60 decades without overflow.
                        2 => (1.0 + rng.gen::<f32>()) * 1e30 * sign(&mut rng),
                        3 => (1.0 + rng.gen::<f32>()) * 1e-30 * sign(&mut rng),
                        4 => prev, // exact duplicate of an earlier value
                        _ => rng.gen::<f32>() * 2.0 - 1.0,
                    };
                    prev = v;
                    data.push(v);
                }
                ExpressionMatrix::from_flat(n, m, data, gnet_expr::MissingPolicy::Error)
                    .expect("adversarial generator emits finite values")
            }
        }
    }
}

fn sign(rng: &mut StdRng) -> f32 {
    if rng.gen::<bool>() {
        1.0
    } else {
        -1.0
    }
}

fn parse_num(key: &str, value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|e| format!("bad {key} {value:?}: {e}"))
}

/// Corpus size / runtime trade-off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Small shape sweep per class — the PR smoke configuration.
    Quick,
    /// Wider gene/sample sweep with extra seeds — the nightly matrix.
    Full,
}

impl Level {
    /// Stable slug for reports and `--level`.
    pub fn slug(&self) -> &'static str {
        match self {
            Self::Quick => "quick",
            Self::Full => "full",
        }
    }

    /// Inverse of [`Self::slug`].
    pub fn from_slug(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Self::Quick),
            "full" => Some(Self::Full),
            _ => None,
        }
    }
}

/// SplitMix64 step — mixes the base seed with the spec coordinates so
/// every dataset draws from an independent stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded corpus: for each class, a gene/sample-count sweep sized by
/// `level`. Deterministic in `seed`.
pub fn corpus(level: Level, seed: u64) -> Vec<DatasetSpec> {
    let mut specs = Vec::new();
    for (ci, class) in DatasetClass::ALL.into_iter().enumerate() {
        let shapes: &[(usize, usize)] = match (class, level) {
            // Tiny m is this class's whole point; keep it tiny at both
            // levels and sweep genes instead.
            (DatasetClass::TinySamples, Level::Quick) => &[(6, 2), (5, 3), (4, 6)],
            (DatasetClass::TinySamples, Level::Full) => &[(6, 2), (5, 3), (4, 6), (9, 4), (12, 7)],
            (_, Level::Quick) => &[(4, 16), (9, 33)],
            (_, Level::Full) => &[(4, 16), (9, 33), (6, 8), (16, 64), (12, 120), (9, 201)],
        };
        let seeds_per_shape = match level {
            Level::Quick => 1,
            Level::Full => 2,
        };
        for (si, &(genes, samples)) in shapes.iter().enumerate() {
            for rep in 0..seeds_per_shape {
                specs.push(DatasetSpec {
                    class,
                    genes,
                    samples,
                    seed: mix(seed ^ mix(ci as u64) ^ mix(0x100 + si as u64) ^ mix(0x10_000 + rep)),
                });
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_round_trips() {
        for spec in corpus(Level::Quick, 7) {
            let back = DatasetSpec::parse(&spec.replay()).expect("replay parses");
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn build_is_deterministic_and_shaped() {
        for spec in corpus(Level::Quick, 3) {
            let a = spec.build();
            let b = spec.build();
            assert_eq!(a.genes(), spec.genes, "{}", spec.replay());
            assert_eq!(a.samples(), spec.samples, "{}", spec.replay());
            assert_eq!(a.as_flat(), b.as_flat(), "{}", spec.replay());
            assert!(a.as_flat().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn corpus_covers_every_class_and_seeds_differ() {
        let specs = corpus(Level::Quick, 42);
        for class in DatasetClass::ALL {
            assert!(specs.iter().any(|s| s.class == class), "{:?}", class);
        }
        let other = corpus(Level::Quick, 43);
        assert!(specs.iter().zip(&other).any(|(a, b)| a.seed != b.seed));
    }

    #[test]
    fn malformed_replays_are_rejected() {
        for bad in [
            "",
            "class=independent-gaussian",
            "class=nope;genes=4;samples=8;seed=1",
            "class=tied-ranks;genes=x;samples=8;seed=1",
            "class=tied-ranks;genes=1;samples=8;seed=1",
            "wat",
        ] {
            assert!(DatasetSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn classes_have_their_advertised_structure() {
        let constant = DatasetSpec {
            class: DatasetClass::ConstantGenes,
            genes: 4,
            samples: 10,
            seed: 1,
        }
        .build();
        assert!(constant.gene(0).iter().all(|&v| v == 1.5));
        assert!(constant.gene(3).iter().all(|&v| v == 1.5));

        let tied = DatasetSpec {
            class: DatasetClass::TiedRanks,
            genes: 2,
            samples: 50,
            seed: 1,
        }
        .build();
        let mut distinct: Vec<_> = tied.gene(0).to_vec();
        distinct.sort_by(f32::total_cmp);
        distinct.dedup();
        assert!(distinct.len() <= 5, "{distinct:?}");

        let dup = DatasetSpec {
            class: DatasetClass::NearDuplicates,
            genes: 2,
            samples: 20,
            seed: 1,
        }
        .build();
        for (a, b) in dup.gene(0).iter().zip(dup.gene(1)) {
            assert!((a - b).abs() < 1e-2);
        }
    }
}
