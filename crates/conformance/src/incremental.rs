//! Oracle family 6: incremental updates vs the batch rebuild.
//!
//! The incremental engine ([`gnet_core::apply_update`], the machinery
//! behind `gnet update`) promises that appending genes or samples to a
//! saved [`NetworkState`] yields the *bit-identical* state a from-scratch
//! [`build_state`] over the concatenated dataset produces — candidates,
//! pooled-null moments, threshold, edges, everything. This oracle states
//! that promise over the whole conformance corpus:
//!
//! 1. **Gene leg** (datasets with ≥ 3 genes): split the gene set into a
//!    prefix and an appended tail, build the prefix state, apply the
//!    append, and demand bitwise equality with the batch state — plus
//!    that the update scanned exactly the frontier,
//!    `g·(N−g) + g·(g−1)/2` pairs, never the full `N(N−1)/2`.
//! 2. **Sample leg** (datasets with ≥ 3 samples): same contract for a
//!    sample-block append, whose rank merge must reproduce a full
//!    re-sort exactly (the pair scan legitimately covers all pairs).
//! 3. **Cross-executor**: the updated state's edge list must match the
//!    tiled parallel pipeline under all four scheduler policies and the
//!    `{2,4}`-rank ring byte for byte, with the pooled threshold inside
//!    the same merge-order budget the distributed oracle uses
//!    ([`crate::differential`]'s `POOLED_THRESHOLD_ABS`).
//!
//! [`mutated_incremental_oracle`] swaps in
//! [`gnet_core::apply_update_mutated`] — the `--self-check` path that
//! proves each seeded incremental-engine defect (stale rank cache,
//! skipped frontier pair, unrefreshed null moments) is caught here.

use crate::corpus::DatasetSpec;
use crate::differential::{edge_bytes, OracleOutcome, POOLED_THRESHOLD_ABS};
use crate::TolerancePolicy;
use gnet_cluster::infer_network_distributed;
use gnet_core::{
    apply_update, apply_update_mutated, build_state, infer_network, InferenceConfig, NetworkState,
    UpdateMode, UpdateMutation,
};
use gnet_expr::{ExpressionMatrix, MissingPolicy};
use gnet_parallel::SchedulerPolicy;

/// Estimator configuration for the incremental differential — the serial,
/// exact-full-null shape `gnet infer --save-state` pins. Small `q` keeps
/// the corpus sweep fast without weakening the bitwise contract.
fn update_config() -> InferenceConfig {
    InferenceConfig {
        permutations: 6,
        threads: Some(1),
        ..InferenceConfig::default()
    }
}

/// Prefix length for splitting a dimension of size `d` into
/// base + appended tail: keep two thirds (at least all-but-one), append
/// the rest. `None` when `d` cannot be split without a degenerate base
/// (both the state and the batch reference need ≥ 2 of each dimension).
fn head_count(d: usize) -> Option<usize> {
    if d < 3 {
        None
    } else {
        Some(d - (d / 3).max(1))
    }
}

/// Columns `from..` of `matrix` as their own matrix, gene names
/// preserved — the shape a sample-append TSV would load to.
fn sample_suffix(matrix: &ExpressionMatrix, from: usize) -> ExpressionMatrix {
    let mut flat = Vec::with_capacity(matrix.genes() * (matrix.samples() - from));
    for g in 0..matrix.genes() {
        flat.extend_from_slice(&matrix.gene(g)[from..]);
    }
    let mut suffix = ExpressionMatrix::from_flat(
        matrix.genes(),
        matrix.samples() - from,
        flat,
        MissingPolicy::Error,
    )
    .unwrap_or_else(|e| unreachable!("column suffix of a valid matrix is valid: {e}"));
    suffix
        .set_gene_names(matrix.gene_names().to_vec())
        .unwrap_or_else(|e| unreachable!("names carry over unchanged: {e}"));
    suffix
}

/// First divergence between the batch-built state and the incrementally
/// updated one, rendered for the report; `None` when bit-identical.
fn diff_states(batch: &NetworkState, incr: &NetworkState) -> Option<String> {
    if incr.candidates.len() != batch.candidates.len() {
        return Some(format!(
            "candidate count {} != batch {}",
            incr.candidates.len(),
            batch.candidates.len()
        ));
    }
    for (a, b) in incr.candidates.iter().zip(&batch.candidates) {
        if a.0 != b.0 || a.1 != b.1 || a.2.to_bits() != b.2.to_bits() {
            return Some(format!(
                "candidate ({},{}) MI {} != batch ({},{}) MI {} (bitwise)",
                a.0, a.1, a.2, b.0, b.1, b.2
            ));
        }
    }
    if incr.pooled != batch.pooled {
        let (ic, im, _, _) = incr.pooled.raw_parts();
        let (bc, bm, _, _) = batch.pooled.raw_parts();
        return Some(format!(
            "pooled null diverged: {ic} nulls mean {im} != batch {bc} nulls mean {bm} (bitwise)"
        ));
    }
    if incr.threshold().to_bits() != batch.threshold().to_bits() {
        return Some(format!(
            "threshold {} != batch {} (bitwise)",
            incr.threshold(),
            batch.threshold()
        ));
    }
    if incr != batch {
        return Some("state bundles differ outside candidates/pooled/threshold".into());
    }
    None
}

/// The clean family-6 oracle: real incremental engine vs batch rebuild.
pub(crate) fn incremental_oracle(spec: &DatasetSpec, _tol: &TolerancePolicy) -> OracleOutcome {
    incremental_with(spec, None)
}

/// Family-6 oracle with one seeded incremental-engine defect standing in
/// for [`apply_update`] — the self-check must see a violation.
pub(crate) fn mutated_incremental_oracle(
    spec: &DatasetSpec,
    mutation: UpdateMutation,
) -> OracleOutcome {
    incremental_with(spec, Some(mutation))
}

fn incremental_with(spec: &DatasetSpec, mutation: Option<UpdateMutation>) -> OracleOutcome {
    let matrix = spec.build();
    let batch = build_state(&matrix, &update_config());
    let mut checks = 0;
    let mut updated_state = None;

    // (mode, base state, appended block, expected pair-scan size).
    let mut legs: Vec<(UpdateMode, NetworkState, ExpressionMatrix, u64)> = Vec::new();
    if let Some(k) = head_count(matrix.genes()) {
        let head: Vec<usize> = (0..k).collect();
        let tail: Vec<usize> = (k..matrix.genes()).collect();
        let g = tail.len();
        legs.push((
            UpdateMode::Genes,
            build_state(&matrix.select_genes(&head), &update_config()),
            matrix.select_genes(&tail),
            // The frontier: g·(N−g) + g·(g−1)/2 with N − g = k old genes.
            (g * k + g * (g - 1) / 2) as u64,
        ));
    }
    if let Some(k) = head_count(matrix.samples()) {
        let n = matrix.genes();
        legs.push((
            UpdateMode::Samples,
            build_state(&matrix.truncate_samples(k), &update_config()),
            sample_suffix(&matrix, k),
            // Every pair's MI depends on every sample: full rescan.
            (n * (n - 1) / 2) as u64,
        ));
    }

    for (mode, base, append, expected_pairs) in legs {
        let applied = match mutation {
            None => apply_update(&base, &append, mode),
            Some(m) => apply_update_mutated(&base, &append, mode, m),
        };
        let (updated, stats) = match applied {
            Ok(r) => r,
            Err(e) => {
                return OracleOutcome::fail(
                    checks + 1,
                    format!("{mode} append failed to apply: {e}"),
                )
            }
        };
        checks += 1;
        if stats.pairs_scanned != expected_pairs {
            return OracleOutcome::fail(
                checks,
                format!(
                    "{mode} append scanned {} pairs; the frontier is {expected_pairs}",
                    stats.pairs_scanned
                ),
            );
        }
        checks += 1;
        if let Some(diff) = diff_states(&batch, &updated) {
            return OracleOutcome::fail(checks, format!("{mode} append vs batch rebuild: {diff}"));
        }
        updated_state = Some(updated);
    }

    // Cross-executor legs: the updated state must agree with the tiled
    // parallel pipeline and the rank ring exactly as a batch run would.
    let Some(updated) = updated_state else {
        // 2×2 shrink floor: neither dimension splits; nothing to check.
        return OracleOutcome::clean(checks);
    };
    let updated_bytes = edge_bytes(&updated.network());
    let threshold = updated.threshold();
    for policy in SchedulerPolicy::ALL {
        let run = infer_network(
            &matrix,
            &InferenceConfig {
                scheduler: policy,
                threads: Some(2),
                tile_size: Some(3),
                ..update_config()
            },
        );
        checks += 1;
        if edge_bytes(&run.network) != updated_bytes {
            return OracleOutcome::fail(
                checks,
                format!(
                    "updated state vs tiled pipeline (policy {}): serialized edge lists differ",
                    policy.name()
                ),
            );
        }
        let drift = (run.stats.threshold - threshold).abs();
        if drift > POOLED_THRESHOLD_ABS {
            return OracleOutcome::fail(
                checks,
                format!(
                    "updated threshold {threshold} vs policy {} threshold {} — |Δ| {drift:.3e} \
                     exceeds {POOLED_THRESHOLD_ABS:.1e}",
                    policy.name(),
                    run.stats.threshold
                ),
            );
        }
    }
    for ranks in [2usize, 4] {
        if ranks > matrix.genes() {
            continue;
        }
        let run = infer_network_distributed(&matrix, &update_config(), ranks);
        checks += 1;
        if edge_bytes(&run.network) != updated_bytes {
            return OracleOutcome::fail(
                checks,
                format!("updated state vs {ranks}-rank ring: serialized edge lists differ"),
            );
        }
        let drift = (run.threshold - threshold).abs();
        if drift > POOLED_THRESHOLD_ABS {
            return OracleOutcome::fail(
                checks,
                format!(
                    "updated threshold {threshold} vs {ranks}-rank threshold {} — |Δ| {drift:.3e} \
                     exceeds {POOLED_THRESHOLD_ABS:.1e}",
                    run.threshold
                ),
            );
        }
    }
    OracleOutcome::clean(checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::DatasetClass;

    fn tol() -> TolerancePolicy {
        TolerancePolicy::default()
    }

    #[test]
    fn clean_engine_is_green_on_a_coupled_dataset() {
        let spec = DatasetSpec {
            class: DatasetClass::CoupledLinear,
            genes: 4,
            samples: 16,
            seed: 11,
        };
        let outcome = incremental_oracle(&spec, &tol());
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        // 2 legs × (frontier + state) checks, 4 scheduler legs, 2 ring legs.
        assert_eq!(outcome.checks, 10);
    }

    #[test]
    fn degenerate_shapes_skip_only_the_impossible_legs() {
        // Two samples: the sample leg cannot split, the gene leg must run.
        let tiny = DatasetSpec {
            class: DatasetClass::TinySamples,
            genes: 6,
            samples: 2,
            seed: 7,
        };
        let outcome = incremental_oracle(&tiny, &tol());
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.checks >= 2);

        // The 2×2 shrink floor: nothing splits, vacuously clean.
        let floor = DatasetSpec {
            class: DatasetClass::IndependentGaussian,
            genes: 2,
            samples: 2,
            seed: 7,
        };
        let outcome = incremental_oracle(&floor, &tol());
        assert!(outcome.violation.is_none());
        assert_eq!(outcome.checks, 0);
    }

    #[test]
    fn constant_and_tied_profiles_stay_bitwise_equal() {
        for class in [DatasetClass::ConstantGenes, DatasetClass::TiedRanks] {
            let spec = DatasetSpec {
                class,
                genes: 5,
                samples: 12,
                seed: 3,
            };
            let outcome = incremental_oracle(&spec, &tol());
            assert!(
                outcome.violation.is_none(),
                "{class:?}: {:?}",
                outcome.violation
            );
        }
    }

    #[test]
    fn every_update_mutation_is_caught_on_a_single_spec() {
        let spec = DatasetSpec {
            class: DatasetClass::IndependentGaussian,
            genes: 4,
            samples: 16,
            seed: 5,
        };
        for mutation in UpdateMutation::ALL {
            let outcome = mutated_incremental_oracle(&spec, mutation);
            assert!(
                outcome.violation.is_some(),
                "{} escaped the incremental oracle",
                mutation.name()
            );
        }
    }
}
