//! Differential & metamorphic conformance harness.
//!
//! `gnet-conformance` drives a seeded, replayable corpus
//! ([`corpus::corpus`]) through six oracle families and reports
//! machine-readable verdicts ([`report::ConformanceReport`]):
//!
//! | family        | oracle                                              | grade      |
//! |---------------|-----------------------------------------------------|------------|
//! | `kernel`      | `ScalarSparse` vs `VectorDense`, observed + nulls,  | tolerance  |
//! |               | repeated per supported SIMD dispatch backend        |            |
//! | `scheduler`   | 4 policies × thread counts vs serial baseline       | bitwise    |
//! | `distributed` | `{1,2,4,8}`-rank runs                               | bytewise   |
//! | `recovery`    | resume-from-checkpoint & rank-crash vs clean runs   | bitwise    |
//! | `metamorphic` | symmetry, monotone/permutation invariance, self-MI, | mixed (see |
//! |               | non-negativity, independence-null consistency       | module)    |
//! | `incremental` | gene/sample appends vs batch rebuild, frontier pair | bitwise    |
//! |               | count, tiled schedulers, `{2,4}`-rank ring          |            |
//!
//! Failures shrink to a minimal dataset ([`shrink`]) and the report
//! carries the replay seed that rebuilds it. [`run_self_check`] closes
//! the loop: it injects the three kernel mutations from
//! [`gnet_mi::mutation`] and the three incremental-update mutations from
//! [`gnet_core::UpdateMutation`], asserting the matching oracle catches
//! each one — a harness that cannot detect a sabotaged implementation is
//! itself broken.

#![warn(missing_docs)]

pub mod corpus;
mod differential;
mod incremental;
mod metamorphic;
pub mod report;
mod shrink;

pub use corpus::{corpus, DatasetClass, DatasetSpec, Level};
pub use report::{ConformanceReport, FamilyReport, MutationOutcome, SelfCheck, Violation};

use differential::{
    distributed_oracle, kernel_oracle, kernel_oracle_with, recovery_oracle, scheduler_oracle,
    OracleOutcome,
};
use gnet_core::UpdateMutation;
use gnet_mi::mutation::{KernelMutation, MutatedVectorKernel};
use incremental::{incremental_oracle, mutated_incremental_oracle};
use metamorphic::metamorphic_oracle;
use serde::Serialize;

/// Absolute tolerances the oracles enforce, stated once and embedded in
/// every report so a verdict is interpretable without the source.
///
/// Each bound is anchored to an existing promise in the repo rather than
/// chosen ad hoc:
///
/// * `kernel_abs` — the scalar and vector kernels accumulate the same
///   f32 joint histogram in different summation orders; the pipeline's
///   own cross-kernel tests bound the drift at `2e-4` nats and the
///   conformance harness holds the same line.
/// * `symmetry_abs` — `I(X;Y)` vs `I(Y;X)` differ only by a transposed
///   accumulation order of one kernel, an order of magnitude tighter
///   than cross-kernel drift: `1e-5` nats.
/// * `joint_perm_abs` — reordering samples permutes f32 additions within
///   one kernel; slightly looser than symmetry because the marginal
///   entropies are also re-accumulated: `5e-5` nats.
/// * `self_mi_abs` — `I(X;X) = H(X)` holds exactly for the order-1
///   (hard histogram) basis; `1e-4` absorbs the f64 log/entropy
///   round-off on degenerate marginals.
/// * `nonneg_floor` — plug-in MI is a KL divergence, non-negative up to
///   estimator round-off; anything below `-1e-3` nats is structural.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TolerancePolicy {
    /// Scalar-vs-vector kernel divergence bound (nats).
    pub kernel_abs: f64,
    /// `I(X;Y)` vs `I(Y;X)` divergence bound (nats).
    pub symmetry_abs: f64,
    /// Joint-sample-permutation divergence bound (nats).
    pub joint_perm_abs: f64,
    /// `|I(X;X) − H(X)|` bound at spline order 1 (nats).
    pub self_mi_abs: f64,
    /// Most negative MI accepted as round-off (nats).
    pub nonneg_floor: f64,
}

impl Default for TolerancePolicy {
    fn default() -> Self {
        Self {
            kernel_abs: 2e-4,
            symmetry_abs: 1e-5,
            joint_perm_abs: 5e-5,
            self_mi_abs: 1e-4,
            nonneg_floor: -1e-3,
        }
    }
}

/// Everything a conformance run is parameterized by. Two runs with equal
/// options produce byte-identical reports.
#[derive(Clone, Copy, Debug)]
pub struct ConformanceOptions {
    /// Base corpus seed; the report echoes it as the whole-run replay.
    pub seed: u64,
    /// Corpus size ([`Level::Quick`] for PR smoke, [`Level::Full`] for
    /// the nightly matrix).
    pub level: Level,
    /// Oracle tolerances.
    pub tolerances: TolerancePolicy,
}

impl Default for ConformanceOptions {
    fn default() -> Self {
        Self {
            seed: 0x636F_6E66, // "conf"
            level: Level::Quick,
            tolerances: TolerancePolicy::default(),
        }
    }
}

type Oracle = fn(&DatasetSpec, &TolerancePolicy) -> OracleOutcome;

/// The six families, in report order.
const FAMILIES: [(&str, Oracle); 6] = [
    ("kernel", kernel_oracle),
    ("scheduler", scheduler_oracle),
    ("distributed", distributed_oracle),
    ("recovery", recovery_oracle),
    ("metamorphic", metamorphic_oracle),
    ("incremental", incremental_oracle),
];

/// Run one family over a spec list, shrinking every failure.
fn run_family(
    family: &str,
    oracle: Oracle,
    specs: &[DatasetSpec],
    tol: &TolerancePolicy,
) -> FamilyReport {
    let mut checks = 0;
    let mut violations = Vec::new();
    for spec in specs {
        let outcome = oracle(spec, tol);
        checks += outcome.checks;
        if outcome.violation.is_some() {
            let shrunk = shrink::shrink_spec(*spec, &mut |s| oracle(s, tol).violation.is_some());
            let detail = oracle(&shrunk, tol)
                .violation
                .unwrap_or_else(|| unreachable!("shrinker only returns failing specs"));
            violations.push(Violation {
                family: family.to_owned(),
                dataset: spec.replay(),
                shrunk_replay: shrunk.replay(),
                shrunk_genes: shrunk.genes,
                shrunk_samples: shrunk.samples,
                detail,
            });
        }
    }
    FamilyReport {
        family: family.to_owned(),
        datasets: specs.len(),
        checks,
        violations,
    }
}

fn assemble(
    opts: &ConformanceOptions,
    level: &str,
    families: Vec<FamilyReport>,
    self_check: Option<SelfCheck>,
) -> ConformanceReport {
    let pass =
        families.iter().all(FamilyReport::pass) && self_check.as_ref().is_none_or(|sc| sc.pass);
    ConformanceReport {
        format: "gnet-conformance".to_owned(),
        version: 1,
        level: level.to_owned(),
        seed: opts.seed,
        tolerances: opts.tolerances,
        families,
        self_check,
        pass,
    }
}

fn run_families(opts: &ConformanceOptions, specs: &[DatasetSpec]) -> Vec<FamilyReport> {
    FAMILIES
        .iter()
        .map(|(name, oracle)| run_family(name, *oracle, specs, &opts.tolerances))
        .collect()
}

/// Run all six oracle families over the seeded corpus.
pub fn run_conformance(opts: &ConformanceOptions) -> ConformanceReport {
    let specs = corpus(opts.level, opts.seed);
    let families = run_families(opts, &specs);
    assemble(opts, opts.level.slug(), families, None)
}

/// Re-run all six families on one replayed dataset (the `--replay`
/// path: feed a failure's `shrunk_replay` string back in).
pub fn run_replay(opts: &ConformanceOptions, spec: DatasetSpec) -> ConformanceReport {
    let families = run_families(opts, std::slice::from_ref(&spec));
    assemble(opts, "replay", families, None)
}

/// Kernel oracle with one injected mutation standing in for the vector
/// kernel. A fresh mutated kernel per invocation keeps the predicate
/// pure, which the shrinker requires.
fn mutated_kernel_oracle(
    spec: &DatasetSpec,
    tol: &TolerancePolicy,
    mutation: KernelMutation,
) -> OracleOutcome {
    let mut kernel = MutatedVectorKernel::new(mutation);
    kernel_oracle_with(spec, tol, &mut |x, y, yd| kernel.mi(x, y, yd))
}

/// Hunt one injected mutation across the corpus: find the first spec the
/// mutated oracle fails on, shrink it, and report the catch — or report
/// the blind spot when no spec exposes the defect.
fn mutation_outcome(
    specs: &[DatasetSpec],
    name: &str,
    oracle: &mut dyn FnMut(&DatasetSpec) -> OracleOutcome,
) -> MutationOutcome {
    let caught = specs
        .iter()
        .find(|spec| oracle(spec).violation.is_some())
        .copied();
    match caught {
        Some(spec) => {
            let shrunk = shrink::shrink_spec(spec, &mut |s| oracle(s).violation.is_some());
            let detail = oracle(&shrunk)
                .violation
                .unwrap_or_else(|| unreachable!("shrinker only returns failing specs"));
            MutationOutcome {
                mutation: name.to_owned(),
                detected: true,
                replay: shrunk.replay(),
                shrunk_genes: shrunk.genes,
                shrunk_samples: shrunk.samples,
                detail,
            }
        }
        None => MutationOutcome {
            mutation: name.to_owned(),
            detected: false,
            replay: String::new(),
            shrunk_genes: 0,
            shrunk_samples: 0,
            detail: String::new(),
        },
    }
}

/// The harness turned on itself: run the clean corpus, then inject each
/// kernel mutation from [`gnet_mi::mutation`] and each incremental-update
/// mutation from [`gnet_core::UpdateMutation`], demanding the matching
/// oracle (family 1 / family 6) catches it — complete with a shrunk
/// counterexample and replay seed, exactly as a real regression would be
/// reported.
pub fn run_self_check(opts: &ConformanceOptions) -> ConformanceReport {
    let specs = corpus(opts.level, opts.seed);
    let families = run_families(opts, &specs);
    let clean_pass = families.iter().all(FamilyReport::pass);

    let mut mutations = Vec::new();
    for mutation in KernelMutation::ALL {
        mutations.push(mutation_outcome(&specs, mutation.name(), &mut |s| {
            mutated_kernel_oracle(s, &opts.tolerances, mutation)
        }));
    }
    for mutation in UpdateMutation::ALL {
        mutations.push(mutation_outcome(&specs, mutation.name(), &mut |s| {
            mutated_incremental_oracle(s, mutation)
        }));
    }

    let pass = clean_pass && mutations.iter().all(|m| m.detected);
    let self_check = SelfCheck {
        clean_pass,
        mutations,
        pass,
    };
    assemble(opts, opts.level.slug(), families, Some(self_check))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ConformanceOptions {
        ConformanceOptions::default()
    }

    #[test]
    fn replay_run_is_green_on_a_healthy_dataset() {
        let spec = DatasetSpec {
            class: DatasetClass::CoupledLinear,
            genes: 4,
            samples: 16,
            seed: 11,
        };
        let report = run_replay(&quick_opts(), spec);
        assert!(report.pass, "{}", report.render_text());
        assert_eq!(report.level, "replay");
        assert_eq!(report.families.len(), 6);
        assert!(report.families.iter().all(|f| f.datasets == 1));
        assert!(report.families.iter().all(|f| f.checks > 0));
    }

    #[test]
    fn every_mutation_is_caught_on_a_single_gaussian_spec() {
        // Cheap single-dataset version of the full self-check (which the
        // CLI acceptance run exercises end to end over the whole corpus).
        let spec = DatasetSpec {
            class: DatasetClass::IndependentGaussian,
            genes: 4,
            samples: 33,
            seed: 5,
        };
        let tol = TolerancePolicy::default();
        for mutation in KernelMutation::ALL {
            let outcome = mutated_kernel_oracle(&spec, &tol, mutation);
            assert!(
                outcome.violation.is_some(),
                "{} escaped the kernel oracle",
                mutation.name()
            );
        }
    }

    #[test]
    fn clean_kernel_oracle_accepts_the_real_kernels() {
        let spec = DatasetSpec {
            class: DatasetClass::TiedRanks,
            genes: 5,
            samples: 20,
            seed: 3,
        };
        let outcome = differential::kernel_oracle(&spec, &TolerancePolicy::default());
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    #[test]
    fn kernel_oracle_runs_once_per_supported_backend() {
        let spec = DatasetSpec {
            class: DatasetClass::CoupledLinear,
            genes: 5,
            samples: 20,
            seed: 3,
        };
        let outcome = differential::kernel_oracle(&spec, &TolerancePolicy::default());
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        // Per backend: C(5,2) = 10 observed checks plus 10 pairs × 2
        // permuted nulls = 30; the oracle must repeat that for every
        // backend this host supports (at minimum the emulated one).
        let backends = gnet_simd::dispatch::Backend::supported().len();
        assert_eq!(outcome.checks, 30 * backends);
    }
}
