//! Differential oracle families: kernel, scheduler, distributed, recovery.
//!
//! Each oracle runs one dataset through two (or more) execution paths the
//! repo promises are equivalent and reports the first divergence. The
//! equivalence grades are deliberate:
//!
//! * **Kernel** (`ScalarSparse` vs `VectorDense`): *tolerance*-equal. The
//!   two kernels accumulate the same joint histogram in different f32
//!   summation orders, so last-ulp drift is expected; the bound is the
//!   stated [`crate::TolerancePolicy::kernel_abs`]. The differential is
//!   repeated with the vector kernel forced onto every SIMD backend this
//!   host supports, so each set of intrinsics is held to the grade
//!   independently of what runtime dispatch would pick.
//! * **Scheduler** (4 policies × thread counts vs the serial baseline):
//!   *bit*-equal. Scheduling only changes which thread computes a pair,
//!   never the per-pair arithmetic, so the packed MI array must match the
//!   single-threaded reference bit for bit — this is the repo's core
//!   determinism claim (`gnet analyze --concurrency` spot-checks it; this
//!   oracle sweeps it over the corpus). The full-pipeline variant pins an
//!   explicit `mi_threshold` so the pooled-null merge order (the one
//!   legitimately order-dependent reduction) is out of the picture, and
//!   then demands bit-identical edge weights and thresholds.
//! * **Distributed** (`{1,2,4,8}` ranks): *byte*-equal serialized edge
//!   lists, per the gnet-cluster contract; the pooled threshold alone is
//!   only tolerance-equal (see [`distributed_oracle`]).
//! * **Recovery** (resume-from-checkpoint, rank-crash): bit-identical
//!   results versus the clean run, per DESIGN.md §10.

use crate::corpus::DatasetSpec;
use crate::TolerancePolicy;
use gnet_bspline::{BsplineBasis, DenseWeights};
use gnet_cluster::{
    infer_network_distributed, infer_network_distributed_faulty, infer_network_distributed_tcp,
    DistributedResult, DEFAULT_PEER_TIMEOUT,
};
use gnet_core::checkpoint::infer_network_resumable;
use gnet_core::{infer_network, InferenceConfig, InferenceResult};
use gnet_fault::{FaultInjector, FaultPlan};
use gnet_graph::GeneNetwork;
use gnet_mi::gene::{mi_scalar, mi_vector, mi_with_nulls, prepare_matrix, MiKernel, MiScratch};
use gnet_mi::PreparedGene;
use gnet_parallel::{compute_pairwise, pair_index, SchedulerPolicy};
use gnet_permute::PermutationSet;
use gnet_simd::dispatch::{with_forced, Backend};
use gnet_trace::Recorder;

/// What one oracle found on one dataset.
pub(crate) struct OracleOutcome {
    /// Individual comparisons performed (pairs, run pairs, …).
    pub checks: usize,
    /// First divergence, rendered for the report; `None` when clean.
    pub violation: Option<String>,
}

impl OracleOutcome {
    pub(crate) fn clean(checks: usize) -> Self {
        Self {
            checks,
            violation: None,
        }
    }

    pub(crate) fn fail(checks: usize, detail: String) -> Self {
        Self {
            checks,
            violation: Some(detail),
        }
    }
}

fn basis() -> BsplineBasis {
    BsplineBasis::tinge_default()
}

/// Scalar-vs-vector differential with an injectable vector evaluator —
/// the self-check swaps in a [`gnet_mi::mutation::MutatedVectorKernel`]
/// here, which is how the harness proves it would catch a broken kernel.
pub(crate) fn kernel_oracle_with<F>(
    spec: &DatasetSpec,
    tol: &TolerancePolicy,
    vector_mi: &mut F,
) -> OracleOutcome
where
    F: FnMut(&PreparedGene, &PreparedGene, &DenseWeights) -> f64,
{
    let matrix = spec.build();
    let prepared = prepare_matrix(&matrix, &basis());
    let mut scratch = MiScratch::for_basis(&basis());
    let mut checks = 0;
    for j in 1..prepared.len() {
        let yd = prepared[j].to_dense();
        for i in 0..j {
            let scalar = mi_scalar(&prepared[i], &prepared[j], &mut scratch);
            let vector = vector_mi(&prepared[i], &prepared[j], &yd);
            checks += 1;
            let delta = (scalar - vector).abs();
            if delta > tol.kernel_abs {
                return OracleOutcome::fail(
                    checks,
                    format!(
                        "pair ({i},{j}): scalar MI {scalar:.9} vs vector MI {vector:.9} \
                         — |Δ| {delta:.3e} exceeds {:.1e} nats",
                        tol.kernel_abs
                    ),
                );
            }
        }
    }
    OracleOutcome::clean(checks)
}

/// Kernel differential on the real kernels, run once per supported SIMD
/// dispatch backend (emulated / AVX2 / AVX-512): the scalar oracle must
/// hold whichever backend the vector kernel lands on, so a backend whose
/// intrinsics drift out of grade is caught here, not just on the machine
/// that happens to dispatch to it by default. Violations name the
/// backend that produced them.
pub(crate) fn kernel_oracle(spec: &DatasetSpec, tol: &TolerancePolicy) -> OracleOutcome {
    let mut checks = 0;
    for backend in Backend::supported() {
        let outcome = with_forced(backend, || kernel_oracle_one_backend(spec, tol))
            .unwrap_or_else(|e| unreachable!("supported backend must force cleanly: {e}"));
        checks += outcome.checks;
        if let Some(detail) = outcome.violation {
            return OracleOutcome::fail(checks, format!("[backend {backend}] {detail}"));
        }
    }
    OracleOutcome::clean(checks)
}

/// One backend's scalar-vs-vector differential, including the permuted
/// (null-evaluation) paths the pipeline exercises per pair. Runs under
/// whatever dispatch backend is active when called.
fn kernel_oracle_one_backend(spec: &DatasetSpec, tol: &TolerancePolicy) -> OracleOutcome {
    let mut scratch = MiScratch::for_basis(&basis());
    let observed = kernel_oracle_with(spec, tol, &mut |x, y, yd| mi_vector(x, y, yd, &mut scratch));
    if observed.violation.is_some() {
        return observed;
    }

    // Permuted path: both kernels must agree null-by-null.
    let matrix = spec.build();
    let prepared = prepare_matrix(&matrix, &basis());
    let perms = PermutationSet::generate(matrix.samples(), 2, spec.seed ^ 0x7065_726D); // "perm"
    let mut scratch = MiScratch::for_basis(&basis());
    let mut checks = observed.checks;
    for j in 1..prepared.len() {
        let yd = prepared[j].to_dense();
        for i in 0..j {
            let s = mi_with_nulls(
                MiKernel::ScalarSparse,
                &prepared[i],
                &prepared[j],
                None,
                perms.as_vecs(),
                &mut scratch,
            );
            let v = mi_with_nulls(
                MiKernel::VectorDense,
                &prepared[i],
                &prepared[j],
                Some(&yd),
                perms.as_vecs(),
                &mut scratch,
            );
            for (q, (a, b)) in s.null.iter().zip(&v.null).enumerate() {
                checks += 1;
                let delta = (a - b).abs();
                if delta > tol.kernel_abs {
                    return OracleOutcome::fail(
                        checks,
                        format!(
                            "pair ({i},{j}) null {q}: scalar {a:.9} vs vector {b:.9} \
                             — |Δ| {delta:.3e} exceeds {:.1e} nats",
                            tol.kernel_abs
                        ),
                    );
                }
            }
        }
    }
    OracleOutcome::clean(checks)
}

/// Serial reference for the packed pairwise MI array: a plain nested loop,
/// same arithmetic and same f32 narrowing as the parallel executors.
#[allow(clippy::cast_possible_truncation)] // cast-ok: pipeline stores pairwise MI as f32 by design
fn serial_packed(prepared: &[PreparedGene], dense: &[DenseWeights]) -> Vec<f32> {
    let n = prepared.len();
    let mut scratch = MiScratch::for_basis(&basis());
    let mut packed = vec![0.0f32; n * (n - 1) / 2];
    for i in 0..n {
        for j in i + 1..n {
            // cast-ok: pipeline stores pairwise MI as f32 by design
            packed[pair_index(n, i, j)] =
                mi_vector(&prepared[i], &prepared[j], &dense[j], &mut scratch) as f32;
        }
    }
    packed
}

/// Scheduler differential: every policy × thread count must reproduce the
/// serial packed MI array bit for bit, and the full pipeline (with an
/// explicit threshold) must emit bit-identical edges.
#[allow(clippy::cast_possible_truncation)] // cast-ok: pipeline stores pairwise MI as f32 by design
pub(crate) fn scheduler_oracle(spec: &DatasetSpec, _tol: &TolerancePolicy) -> OracleOutcome {
    let matrix = spec.build();
    let n = matrix.genes();
    let prepared = prepare_matrix(&matrix, &basis());
    let dense: Vec<DenseWeights> = prepared.iter().map(PreparedGene::to_dense).collect();
    let reference = serial_packed(&prepared, &dense);
    let mut checks = 0;

    for policy in SchedulerPolicy::ALL {
        for threads in [1usize, 2, 4, 8] {
            let (packed, _) = compute_pairwise(
                n,
                3,
                threads,
                policy,
                |_| MiScratch::for_basis(&basis()),
                // cast-ok: pipeline stores pairwise MI as f32 by design
                |scratch, i, j| mi_vector(&prepared[i], &prepared[j], &dense[j], scratch) as f32,
            );
            checks += 1;
            for (idx, (a, b)) in reference.iter().zip(&packed).enumerate() {
                if a.to_bits() != b.to_bits() {
                    return OracleOutcome::fail(
                        checks,
                        format!(
                            "policy {} × {threads} threads: packed MI[{idx}] \
                             {b} != serial {a} (bitwise)",
                            policy.name()
                        ),
                    );
                }
            }
        }
    }

    // Full pipeline under an explicit threshold: per-pair decisions are
    // independent of merge order, so the edge lists must match bitwise.
    let cfg = |policy, threads| InferenceConfig {
        permutations: 6,
        mi_threshold: Some(0.02),
        threads: Some(threads),
        tile_size: Some(3),
        scheduler: policy,
        ..InferenceConfig::default()
    };
    let serial = infer_network(&matrix, &cfg(SchedulerPolicy::DynamicCounter, 1));
    for policy in SchedulerPolicy::ALL {
        for threads in [1usize, 2, 4] {
            let run = infer_network(&matrix, &cfg(policy, threads));
            checks += 1;
            if let Some(diff) = diff_results(&serial, &run) {
                return OracleOutcome::fail(
                    checks,
                    format!("policy {} × {threads} threads: {diff}", policy.name()),
                );
            }
        }
    }
    OracleOutcome::clean(checks)
}

/// Distributed differential: `{1,2,4,8}`-rank runs must serialize to
/// byte-identical edge lists; the pooled threshold is held to
/// [`POOLED_THRESHOLD_ABS`] instead of bitwise (merge order varies with
/// the rank count — see the constant's doc). The same grade is then
/// demanded of `{2,4}`-rank runs over the loopback-TCP transport: real
/// sockets, framing, and drain-then-FIN shutdown must be invisible in
/// the serialized output.
pub(crate) fn distributed_oracle(spec: &DatasetSpec, _tol: &TolerancePolicy) -> OracleOutcome {
    let matrix = spec.build();
    let cfg = dist_config();
    let reference = infer_network_distributed(&matrix, &cfg, 1);
    let ref_bytes = edge_bytes(&reference.network);
    let mut checks = 0;
    for ranks in [2usize, 4, 8] {
        if ranks > matrix.genes() {
            continue;
        }
        let run = infer_network_distributed(&matrix, &cfg, ranks);
        checks += 1;
        if let Some(diff) = diff_distributed(&reference, &run, &ref_bytes) {
            return OracleOutcome::fail(checks, format!("{ranks} ranks vs 1 rank: {diff}"));
        }
    }
    for ranks in [2usize, 4] {
        if ranks > matrix.genes() {
            continue;
        }
        let run = match infer_network_distributed_tcp(&matrix, &cfg, ranks) {
            Ok(r) => r,
            Err(e) => {
                return OracleOutcome::fail(
                    checks + 1,
                    format!("{ranks}-rank loopback-TCP mesh failed to establish: {e}"),
                )
            }
        };
        checks += 1;
        if let Some(diff) = diff_distributed(&reference, &run, &ref_bytes) {
            return OracleOutcome::fail(checks, format!("{ranks} TCP ranks vs 1 rank: {diff}"));
        }
    }
    OracleOutcome::clean(checks)
}

/// Recovery differential: an interrupted-then-resumed run and a
/// rank-crash run must both reproduce the clean result exactly.
pub(crate) fn recovery_oracle(spec: &DatasetSpec, _tol: &TolerancePolicy) -> OracleOutcome {
    let matrix = spec.build();
    // Deterministic-merge configuration (single worker, static partition):
    // resume is bit-identical here even for the pooled threshold.
    let cfg = InferenceConfig {
        permutations: 8,
        threads: Some(1),
        tile_size: Some(3),
        scheduler: SchedulerPolicy::StaticCyclic,
        ..InferenceConfig::default()
    };
    let mut checks = 0;

    let clean = infer_network_resumable(&matrix, &cfg, None, 2, |_| true)
        .unwrap_or_else(|_| unreachable!("uninterrupted run cannot yield a checkpoint"));
    // Interrupt at the first chunk boundary, then resume from the
    // persisted state.
    match infer_network_resumable(&matrix, &cfg, None, 2, |_| false) {
        Ok(_) => {
            // Fewer tiles than one chunk: nothing to resume; the clean
            // run above already covers this dataset.
        }
        Err(cp) => {
            let tiles_done = cp.tiles_done;
            let resumed = match infer_network_resumable(&matrix, &cfg, Some(cp), 2, |_| true) {
                Ok(r) => r,
                Err(_) => {
                    return OracleOutcome::fail(
                        checks + 1,
                        format!("resume from tile {tiles_done} was interrupted again"),
                    )
                }
            };
            checks += 1;
            if let Some(diff) = diff_results(&clean, &resumed) {
                return OracleOutcome::fail(
                    checks,
                    format!("resume from tile {tiles_done} diverged: {diff}"),
                );
            }
        }
    }

    // Rank-crash recovery: killing rank 2 in round 1 must not change the
    // edge set (dead-rank pairs are redistributed deterministically).
    if matrix.genes() >= 4 {
        let dcfg = dist_config();
        let clean_d = infer_network_distributed(&matrix, &dcfg, 4);
        let plan = FaultPlan::parse("seed=1;crash(rank=2,round=1)")
            .unwrap_or_else(|e| unreachable!("static plan parses: {e}"));
        let crashed = match infer_network_distributed_faulty(
            &matrix,
            &dcfg,
            4,
            &FaultInjector::from_plan(&plan),
            &Recorder::disabled(),
            DEFAULT_PEER_TIMEOUT,
        ) {
            Ok(r) => r,
            Err(e) => {
                return OracleOutcome::fail(
                    checks + 1,
                    format!("rank-crash run failed instead of recovering: {e}"),
                )
            }
        };
        checks += 1;
        if let Some(diff) = diff_distributed(&clean_d, &crashed, &edge_bytes(&clean_d.network)) {
            return OracleOutcome::fail(checks, format!("rank-crash recovery diverged: {diff}"));
        }
    }
    OracleOutcome::clean(checks)
}

fn dist_config() -> InferenceConfig {
    InferenceConfig {
        permutations: 8,
        threads: Some(1),
        tile_size: Some(4),
        ..InferenceConfig::default()
    }
}

/// Serialize a network exactly as `gnet infer --output` would — the byte
/// string the distributed (and incremental, family 6) equivalences are
/// stated over.
pub(crate) fn edge_bytes(net: &GeneNetwork) -> Vec<u8> {
    let mut bytes = Vec::new();
    gnet_graph::io::write_edge_list(net, &mut bytes)
        .unwrap_or_else(|e| unreachable!("in-memory serialization cannot fail: {e}"));
    bytes
}

/// Bitwise comparison of two shared-memory results.
fn diff_results(a: &InferenceResult, b: &InferenceResult) -> Option<String> {
    if a.stats.threshold.to_bits() != b.stats.threshold.to_bits() {
        return Some(format!(
            "threshold {} != {} (bitwise)",
            b.stats.threshold, a.stats.threshold
        ));
    }
    diff_networks(&a.network, &b.network)
}

fn diff_networks(a: &GeneNetwork, b: &GeneNetwork) -> Option<String> {
    if a.edge_count() != b.edge_count() {
        return Some(format!(
            "edge count {} != {}",
            b.edge_count(),
            a.edge_count()
        ));
    }
    for (ea, eb) in a.edges().iter().zip(b.edges()) {
        if ea.key() != eb.key() || ea.weight.to_bits() != eb.weight.to_bits() {
            return Some(format!(
                "edge ({},{},{}) != ({},{},{})",
                eb.a, eb.b, eb.weight, ea.a, ea.b, ea.weight
            ));
        }
    }
    None
}

/// Drift budget for the pooled-null threshold across distributed merge
/// orders. The pooled moments merge in rank order (fault-free) or with
/// recomputed supplements appended (after a crash), so the f64 summation
/// order — and hence the last ulp of the threshold — depends on the rank
/// count and crash history. gnet-cluster's own contract
/// (`knife_edge_pairs_do_not_flip_across_rank_counts`,
/// `one_crashed_rank_yields_the_same_edge_set`) is therefore: identical
/// edge sets with bit-identical weights, threshold equal only up to
/// merge-order round-off. `1e-9` nats is six orders looser than observed
/// ulp drift and six tighter than any real pooling bug.
pub(crate) const POOLED_THRESHOLD_ABS: f64 = 1e-9;

fn diff_distributed(
    a: &DistributedResult,
    b: &DistributedResult,
    a_bytes: &[u8],
) -> Option<String> {
    let drift = (a.threshold - b.threshold).abs();
    if drift > POOLED_THRESHOLD_ABS {
        return Some(format!(
            "pooled threshold {} vs {} — |Δ| {drift:.3e} exceeds {POOLED_THRESHOLD_ABS:.1e}",
            b.threshold, a.threshold
        ));
    }
    if edge_bytes(&b.network) != a_bytes {
        return diff_networks(&a.network, &b.network)
            .or_else(|| Some("serialized edge lists differ".into()));
    }
    None
}
