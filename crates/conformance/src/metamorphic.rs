//! Metamorphic oracle family: properties MI must satisfy with no second
//! implementation to compare against.
//!
//! The relations and their equivalence grades:
//!
//! * **Symmetry** `I(X;Y) = I(Y;X)` — tolerance-equal
//!   ([`TolerancePolicy::symmetry_abs`]): both directions accumulate the
//!   same joint grid transposed, so only f32 summation order differs.
//! * **Strictly monotone transforms** `I(f(X);Y) = I(X;Y)` — *bit*-equal
//!   for `f(x) = 4x`: the rank transform sees the same order and the same
//!   tie groups (scaling by a power of two is exact in f32 for the
//!   corpus's magnitude range), so the prepared weights are identical
//!   floats and everything downstream is deterministic.
//! * **Joint sample permutation** `I(Xπ;Yπ) = I(X;Y)` — tolerance-equal
//!   ([`TolerancePolicy::joint_perm_abs`]): the joint histogram is a
//!   multiset sum, but f32 addition is not associative.
//! * **Self-MI** `I(X;X) = H(X)` at spline order 1 — the identity is
//!   exact only for the hard histogram (order-1 basis); higher orders
//!   spread a sample's mass over `k` bins and the joint picks up genuine
//!   off-diagonal mass. Checked at order 1 within
//!   [`TolerancePolicy::self_mi_abs`].
//! * **Non-negativity** `I ≥ 0` up to [`TolerancePolicy::nonneg_floor`]:
//!   plug-in MI with marginals derived from the same weights is a KL
//!   divergence.
//! * **Independent-pair null consistency**: on independent-Gaussian
//!   datasets the observed MI of each pair is statistically exchangeable
//!   with its permutation nulls, so the mean empirical p-value over all
//!   pairs must sit near ½ (the generous `[0.25, 0.75]` band keeps the
//!   check deterministic-safe at corpus sizes while still catching an
//!   estimator that systematically inflates observed MI against its own
//!   null).

use crate::corpus::{DatasetClass, DatasetSpec};
use crate::differential::OracleOutcome;
use crate::TolerancePolicy;
use gnet_bspline::BsplineBasis;
use gnet_expr::normalize::rank_transform_profile;
use gnet_mi::gene::{mi_scalar, mi_vector, mi_with_nulls, prepare_matrix, MiKernel, MiScratch};
use gnet_mi::PreparedGene;
use gnet_permute::PermutationSet;

fn basis() -> BsplineBasis {
    BsplineBasis::tinge_default()
}

/// Run every metamorphic relation over one dataset.
pub(crate) fn metamorphic_oracle(spec: &DatasetSpec, tol: &TolerancePolicy) -> OracleOutcome {
    let matrix = spec.build();
    let n = matrix.genes();
    let m = matrix.samples();
    let prepared = prepare_matrix(&matrix, &basis());
    let dense: Vec<_> = prepared.iter().map(PreparedGene::to_dense).collect();
    let mut scratch = MiScratch::for_basis(&basis());
    let mut checks = 0;

    // Symmetry + non-negativity over all pairs, both kernels.
    for j in 1..n {
        for i in 0..j {
            let s_ij = mi_scalar(&prepared[i], &prepared[j], &mut scratch);
            let s_ji = mi_scalar(&prepared[j], &prepared[i], &mut scratch);
            let v_ij = mi_vector(&prepared[i], &prepared[j], &dense[j], &mut scratch);
            let v_ji = mi_vector(&prepared[j], &prepared[i], &dense[i], &mut scratch);
            checks += 2;
            let ds = (s_ij - s_ji).abs();
            let dv = (v_ij - v_ji).abs();
            if ds > tol.symmetry_abs || dv > tol.symmetry_abs {
                return OracleOutcome::fail(
                    checks,
                    format!(
                        "symmetry broken at pair ({i},{j}): scalar |Δ| {ds:.3e}, \
                         vector |Δ| {dv:.3e} vs {:.1e}",
                        tol.symmetry_abs
                    ),
                );
            }
            checks += 2;
            if s_ij < tol.nonneg_floor || v_ij < tol.nonneg_floor {
                return OracleOutcome::fail(
                    checks,
                    format!(
                        "negative MI at pair ({i},{j}): scalar {s_ij:.6}, vector {v_ij:.6} \
                         below floor {:.1e}",
                        tol.nonneg_floor
                    ),
                );
            }
        }
    }

    // Strictly monotone transform f(x) = 4x: bit-identical MI.
    let transformed: Vec<PreparedGene> = (0..n)
        .map(|g| {
            let scaled: Vec<f32> = matrix.gene(g).iter().map(|v| v * 4.0).collect();
            PreparedGene::from_raw(&scaled, &basis())
        })
        .collect();
    for j in 1..n {
        for i in 0..j {
            let before = mi_scalar(&prepared[i], &prepared[j], &mut scratch);
            let after = mi_scalar(&transformed[i], &transformed[j], &mut scratch);
            checks += 1;
            if before.to_bits() != after.to_bits() {
                return OracleOutcome::fail(
                    checks,
                    format!(
                        "monotone transform changed MI at pair ({i},{j}): \
                         {before:.12} -> {after:.12} (must be bit-identical)"
                    ),
                );
            }
        }
    }

    // Joint sample permutation: reorder both genes by the same π.
    let perm = PermutationSet::generate(m, 1, spec.seed ^ 0x6A70_6572); // "jper"
    let pi = perm.get(0);
    let permuted: Vec<PreparedGene> = (0..n)
        .map(|g| {
            let src = matrix.gene(g);
            // cast-ok: permutation entries index the sample range
            let reordered: Vec<f32> = pi.iter().map(|&s| src[s as usize]).collect();
            PreparedGene::from_raw(&reordered, &basis())
        })
        .collect();
    for j in 1..n {
        for i in 0..j {
            let before = mi_scalar(&prepared[i], &prepared[j], &mut scratch);
            let after = mi_scalar(&permuted[i], &permuted[j], &mut scratch);
            checks += 1;
            let delta = (before - after).abs();
            if delta > tol.joint_perm_abs {
                return OracleOutcome::fail(
                    checks,
                    format!(
                        "joint permutation changed MI at pair ({i},{j}): \
                         {before:.9} -> {after:.9}, |Δ| {delta:.3e} vs {:.1e}",
                        tol.joint_perm_abs
                    ),
                );
            }
        }
    }

    // Self-MI = H(X) at spline order 1 (exact histogram), both kernels.
    let basis1 = BsplineBasis::new(1, 10);
    let mut scratch1 = MiScratch::for_basis(&basis1);
    for g in 0..n {
        let p = PreparedGene::from_normalized(&rank_transform_profile(matrix.gene(g)), &basis1);
        let pd = p.to_dense();
        let s = mi_scalar(&p, &p, &mut scratch1);
        let v = mi_vector(&p, &p, &pd, &mut scratch1);
        checks += 2;
        let ds = (s - p.h_marginal).abs();
        let dv = (v - p.h_marginal).abs();
        if ds > tol.self_mi_abs || dv > tol.self_mi_abs {
            return OracleOutcome::fail(
                checks,
                format!(
                    "I(X,X) != H(X) at gene {g} (order-1 basis): H {h:.9}, \
                     scalar {s:.9}, vector {v:.9}",
                    h = p.h_marginal
                ),
            );
        }
    }

    // Independent-pair null consistency (only where independence holds by
    // construction and m gives the null room to spread).
    if spec.class == DatasetClass::IndependentGaussian && m >= 30 && n >= 4 {
        let q = 30;
        let perms = PermutationSet::generate(m, q, spec.seed ^ 0x6E75_6C6C); // "null"
        let mut p_sum = 0.0f64;
        let mut pairs = 0usize;
        for j in 1..n {
            for i in 0..j {
                let res = mi_with_nulls(
                    MiKernel::VectorDense,
                    &prepared[i],
                    &prepared[j],
                    Some(&dense[j]),
                    perms.as_vecs(),
                    &mut scratch,
                );
                // cast-ok: small counts convert exactly
                p_sum += (res.exceed_count() + 1) as f64 / (q + 1) as f64;
                pairs += 1;
            }
        }
        // cast-ok: small counts convert exactly
        let mean_p = p_sum / pairs as f64;
        checks += 1;
        if !(0.25..=0.75).contains(&mean_p) {
            return OracleOutcome::fail(
                checks,
                format!(
                    "independent pairs inconsistent with their permutation null: \
                     mean empirical p {mean_p:.3} over {pairs} pairs \
                     (expected ≈ 0.5, band [0.25, 0.75])"
                ),
            );
        }
    }

    OracleOutcome::clean(checks)
}
