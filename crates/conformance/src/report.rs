//! Machine-readable conformance verdicts, in the `gnet analyze` report
//! style: a stable `format`/`version` envelope, one block per oracle
//! family, and a single top-level `pass` flag CI keys its exit status on.
//!
//! Every violation carries two replay seeds: the corpus spec that first
//! exposed it (`dataset`) and the shrunk local minimum (`shrunk_replay`)
//! — either feeds straight back into `gnet conformance --replay`.

use crate::TolerancePolicy;
use serde::Serialize;

/// One confirmed oracle violation, after shrinking.
#[derive(Clone, Debug, Serialize)]
pub struct Violation {
    /// Oracle family slug (`kernel`, `scheduler`, `distributed`,
    /// `recovery`, `metamorphic`, `incremental`).
    pub family: String,
    /// Replay seed of the corpus dataset that first failed.
    pub dataset: String,
    /// Replay seed of the shrunk minimal counterexample.
    pub shrunk_replay: String,
    /// Gene count of the shrunk counterexample.
    pub shrunk_genes: usize,
    /// Sample count of the shrunk counterexample.
    pub shrunk_samples: usize,
    /// The divergence, re-derived on the shrunk dataset.
    pub detail: String,
}

/// Aggregate verdict for one oracle family.
#[derive(Clone, Debug, Serialize)]
pub struct FamilyReport {
    /// Oracle family slug.
    pub family: String,
    /// Corpus datasets this family ran over.
    pub datasets: usize,
    /// Individual comparisons performed across those datasets.
    pub checks: usize,
    /// Violations found (shrunk); empty when the family is green.
    pub violations: Vec<Violation>,
}

impl FamilyReport {
    /// True when no violation was found.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Outcome of one injected mutation during `--self-check` — a sabotaged
/// vector kernel or a sabotaged incremental-update engine.
#[derive(Clone, Debug, Serialize)]
pub struct MutationOutcome {
    /// Mutation slug from [`gnet_mi::mutation::KernelMutation::name`] or
    /// [`gnet_core::UpdateMutation::name`].
    pub mutation: String,
    /// Whether the matching oracle flagged the mutated implementation.
    /// `false` means the harness has a blind spot — the self-check fails.
    pub detected: bool,
    /// Replay seed of the shrunk counterexample that caught it (empty
    /// when undetected).
    pub replay: String,
    /// Gene count of that counterexample.
    pub shrunk_genes: usize,
    /// Sample count of that counterexample.
    pub shrunk_samples: usize,
    /// The divergence the oracle reported (empty when undetected).
    pub detail: String,
}

/// The `--self-check` block: the harness turned on itself.
#[derive(Clone, Debug, Serialize)]
pub struct SelfCheck {
    /// All six families green on the unmutated build.
    pub clean_pass: bool,
    /// One entry per injected mutation (kernel and incremental-update).
    pub mutations: Vec<MutationOutcome>,
    /// `clean_pass` and every mutation detected.
    pub pass: bool,
}

/// Top-level conformance report.
#[derive(Clone, Debug, Serialize)]
pub struct ConformanceReport {
    /// Report discriminator, always `"gnet-conformance"`.
    pub format: String,
    /// Schema version of this report shape.
    pub version: u32,
    /// Corpus level slug (`quick` / `full`).
    pub level: String,
    /// Base corpus seed (replays the whole run).
    pub seed: u64,
    /// The tolerance policy the oracles enforced.
    pub tolerances: TolerancePolicy,
    /// One block per oracle family.
    pub families: Vec<FamilyReport>,
    /// Present only under `--self-check`.
    pub self_check: Option<SelfCheck>,
    /// Overall verdict: every family green and (if present) the
    /// self-check passed. CI exits nonzero when this is `false`.
    pub pass: bool,
}

impl ConformanceReport {
    /// Render as a single-line JSON document.
    ///
    /// # Panics
    /// Never: the report contains no non-finite floats by construction
    /// (tolerances are compile-time constants).
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| unreachable!("report serializes: {e}"))
    }

    /// Render a human-oriented summary for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "conformance: level={} seed={}\n",
            self.level, self.seed
        ));
        for f in &self.families {
            let status = if f.pass() { "ok" } else { "FAIL" };
            out.push_str(&format!(
                "  {:<12} {:>4} datasets  {:>7} checks  {status}\n",
                f.family, f.datasets, f.checks
            ));
            for v in &f.violations {
                out.push_str(&format!(
                    "    violation: {}\n      dataset: {}\n      shrunk:  {} ({}x{})\n",
                    v.detail, v.dataset, v.shrunk_replay, v.shrunk_genes, v.shrunk_samples
                ));
            }
        }
        if let Some(sc) = &self.self_check {
            out.push_str(&format!(
                "  self-check: clean build {}\n",
                if sc.clean_pass { "passes" } else { "FAILS" }
            ));
            for m in &sc.mutations {
                if m.detected {
                    out.push_str(&format!(
                        "    mutation {:<24} detected  ({} @ {})\n",
                        m.mutation, m.detail, m.replay
                    ));
                } else {
                    out.push_str(&format!(
                        "    mutation {:<24} NOT DETECTED — harness blind spot\n",
                        m.mutation
                    ));
                }
            }
        }
        out.push_str(if self.pass {
            "result: PASS\n"
        } else {
            "result: FAIL\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ConformanceReport {
        ConformanceReport {
            format: "gnet-conformance".into(),
            version: 1,
            level: "quick".into(),
            seed: 7,
            tolerances: TolerancePolicy::default(),
            families: vec![FamilyReport {
                family: "kernel".into(),
                datasets: 17,
                checks: 412,
                violations: vec![Violation {
                    family: "kernel".into(),
                    dataset: "class=tied-ranks;genes=9;samples=33;seed=5".into(),
                    shrunk_replay: "class=tied-ranks;genes=2;samples=4;seed=5".into(),
                    shrunk_genes: 2,
                    shrunk_samples: 4,
                    detail: "pair (0,1): |Δ| 3e-3 exceeds 2e-4".into(),
                }],
            }],
            self_check: None,
            pass: false,
        }
    }

    #[test]
    fn json_has_the_envelope_and_verdicts() {
        let json = sample_report().render_json();
        assert!(json.contains("\"format\":\"gnet-conformance\""));
        assert!(json.contains("\"version\":1"));
        assert!(json.contains("\"pass\":false"));
        assert!(json.contains("class=tied-ranks;genes=2;samples=4;seed=5"));
        assert!(json.contains("\"kernel_abs\""));
    }

    #[test]
    fn text_mentions_failures_and_verdict() {
        let text = sample_report().render_text();
        assert!(text.contains("FAIL"));
        assert!(text.contains("shrunk:"));
        assert!(text.contains("result: FAIL"));
    }

    #[test]
    fn passing_report_renders_pass() {
        let mut r = sample_report();
        r.families[0].violations.clear();
        r.pass = true;
        assert!(r.render_text().contains("result: PASS"));
        assert!(r.render_json().contains("\"pass\":true"));
    }
}
