//! Greedy spec shrinking.
//!
//! When an oracle flags a dataset, the harness does not report the corpus
//! spec as-is: it first walks the (genes, samples) lattice downward,
//! keeping any step on which the oracle still fails, and reports the
//! local minimum. Because a [`DatasetSpec`] is replayable, the shrunk
//! counterexample is too — the report's `shrunk_replay` string rebuilds
//! it exactly.
//!
//! The moves are the classic halve-then-decrement ladder: halving makes
//! log-many large strides toward the floor, decrementing polishes the
//! last few steps. Only `genes` and `samples` move; `class` and `seed`
//! are part of the failure's identity and stay fixed.

use crate::corpus::DatasetSpec;

/// Floor for both dimensions: MI needs two genes to form a pair and two
/// samples to have any joint structure.
const MIN_DIM: usize = 2;

/// Shrink `spec` while `still_fails` holds, returning the smallest spec
/// found. `still_fails(&spec)` must be true on entry (the caller just
/// observed the failure); the result is a local minimum: no single move
/// below it still fails.
pub(crate) fn shrink_spec(
    spec: DatasetSpec,
    still_fails: &mut dyn FnMut(&DatasetSpec) -> bool,
) -> DatasetSpec {
    let mut best = spec;
    loop {
        let mut candidates = Vec::with_capacity(4);
        if best.genes / 2 >= MIN_DIM {
            candidates.push(DatasetSpec {
                genes: best.genes / 2,
                ..best
            });
        }
        if best.genes > MIN_DIM {
            candidates.push(DatasetSpec {
                genes: best.genes - 1,
                ..best
            });
        }
        if best.samples / 2 >= MIN_DIM {
            candidates.push(DatasetSpec {
                samples: best.samples / 2,
                ..best
            });
        }
        if best.samples > MIN_DIM {
            candidates.push(DatasetSpec {
                samples: best.samples - 1,
                ..best
            });
        }
        let next = candidates
            .into_iter()
            .filter(|c| c != &best)
            .find(|c| still_fails(c));
        match next {
            Some(smaller) => best = smaller,
            None => return best,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::DatasetClass;

    fn spec(genes: usize, samples: usize) -> DatasetSpec {
        DatasetSpec {
            class: DatasetClass::IndependentGaussian,
            genes,
            samples,
            seed: 9,
        }
    }

    #[test]
    fn shrinks_to_the_floor_when_everything_fails() {
        let got = shrink_spec(spec(16, 64), &mut |_| true);
        assert_eq!((got.genes, got.samples), (MIN_DIM, MIN_DIM));
    }

    #[test]
    fn respects_the_failure_predicate() {
        // Failure only reproduces while genes ≥ 5 and samples ≥ 10.
        let mut calls = 0;
        let got = shrink_spec(spec(16, 64), &mut |s| {
            calls += 1;
            s.genes >= 5 && s.samples >= 10
        });
        assert_eq!((got.genes, got.samples), (5, 10));
        assert!(calls > 0);
    }

    #[test]
    fn fixed_point_when_nothing_smaller_fails() {
        let start = spec(9, 33);
        let got = shrink_spec(start, &mut |_| false);
        assert_eq!(got, start);
    }

    #[test]
    fn never_mutates_class_or_seed() {
        let got = shrink_spec(spec(12, 40), &mut |s| s.genes > 3);
        assert_eq!(got.class, DatasetClass::IndependentGaussian);
        assert_eq!(got.seed, 9);
    }
}
