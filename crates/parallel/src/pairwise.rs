//! Generic all-pairs computation over the tiled runtime — the paper's
//! "lessons applicable to other domains" made into an API.
//!
//! The MI pipeline's parallel structure (tile the `n(n−1)/2` pair
//! triangle, cache per-item context per tile, distribute tiles
//! dynamically) is not specific to mutual information: any symmetric
//! pairwise measure over `n` items with non-trivial per-item context —
//! distance matrices, kernel/Gram matrices, sequence-alignment scores —
//! has the same shape. [`compute_pairwise`] exposes it: the caller
//! supplies a per-thread context factory and a pair function, and gets
//! the packed upper-triangular result computed under any of the
//! scheduling policies.

use crate::scheduler::{execute_tiles, ExecutionReport, SchedulerPolicy};
use crate::tile::TileSpace;

/// Index of pair `(i, j)`, `i < j`, in the packed upper-triangular layout
/// of an `n`-item pair space (row-major).
#[inline]
pub fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    // Offset of row i = Σ_{r<i} (n-1-r) = i·(2n − i − 1)/2.
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Compute a symmetric pairwise measure over `n` items into the packed
/// upper-triangular vector (length `n(n−1)/2`, indexed by
/// [`pair_index`]).
///
/// `make_ctx(thread_id)` builds one reusable context per worker (scratch
/// buffers, per-thread caches); `pair(ctx, i, j)` computes the measure.
/// Tiles of `tile_size` items bound each worker's working set exactly as
/// in the MI pipeline.
///
/// # Panics
/// Panics if `n < 2`, `tile_size == 0`, or `threads == 0`.
pub fn compute_pairwise<C, FMake, FPair>(
    n: usize,
    tile_size: usize,
    threads: usize,
    policy: SchedulerPolicy,
    make_ctx: FMake,
    pair: FPair,
) -> (Vec<f32>, ExecutionReport)
where
    C: Send,
    FMake: Fn(usize) -> C + Sync,
    FPair: Fn(&mut C, usize, usize) -> f32 + Sync,
{
    let space = TileSpace::new(n, tile_size);
    let total = (n * (n - 1)) / 2;

    // Each worker writes disjoint (tile-local) regions; collect per-thread
    // sparse results and scatter after the join to stay safe-Rust.
    let (results, report) = execute_tiles(
        space.tiles(),
        threads,
        policy,
        |tid| (make_ctx(tid), Vec::<(u32, u32, f32)>::new()),
        |(ctx, out), tile| {
            for (i, j) in tile.pairs() {
                let v = pair(ctx, i as usize, j as usize);
                out.push((i, j, v));
            }
        },
    );

    let mut packed = vec![0.0f32; total];
    for (_, triples) in results {
        for (i, j, v) in triples {
            packed[pair_index(n, i as usize, j as usize)] = v;
        }
    }
    (packed, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 13;
        let mut seen = vec![false; n * (n - 1) / 2];
        for i in 0..n {
            for j in i + 1..n {
                let idx = pair_index(n, i, j);
                assert!(!seen[idx], "index {idx} hit twice at ({i},{j})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(pair_index(n, 0, 1), 0);
        assert_eq!(pair_index(n, n - 2, n - 1), n * (n - 1) / 2 - 1);
    }

    #[test]
    fn computes_a_known_measure_under_every_policy() {
        // pair(i, j) = i*100 + j — trivially checkable.
        for policy in SchedulerPolicy::ALL {
            let (packed, report) =
                compute_pairwise(9, 3, 2, policy, |_| (), |_, i, j| (i * 100 + j) as f32);
            assert_eq!(packed.len(), 36);
            for i in 0..9usize {
                for j in i + 1..9 {
                    assert_eq!(
                        packed[pair_index(9, i, j)],
                        (i * 100 + j) as f32,
                        "{policy:?} ({i},{j})"
                    );
                }
            }
            assert_eq!(report.total_pairs(), 36);
        }
    }

    #[test]
    fn contexts_are_reused_within_threads() {
        // Count pair() invocations through the context; totals must cover
        // the pair space exactly once.
        let (packed, _) = compute_pairwise(
            20,
            4,
            3,
            SchedulerPolicy::DynamicCounter,
            |_| 0usize,
            |calls, i, j| {
                *calls += 1;
                (i + j) as f32
            },
        );
        assert_eq!(packed.len(), 190);
        let sum: f32 = packed.iter().sum();
        let expected: usize = (0..20).flat_map(|i| (i + 1..20).map(move |j| i + j)).sum();
        assert_eq!(sum, expected as f32);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_n_rejected() {
        let _ = compute_pairwise(
            1,
            1,
            1,
            SchedulerPolicy::DynamicCounter,
            |_| (),
            |_, _, _| 0.0,
        );
    }
}
