//! Upper-triangular tile decomposition of the gene-pair space.

use serde::{Deserialize, Serialize};

/// One rectangular tile of the pair space: gene rows `row_start..row_end`
/// against gene columns `col_start..col_end`, restricted to pairs
/// `(i, j)` with `i < j`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile {
    /// First row gene (inclusive).
    pub row_start: u32,
    /// One past the last row gene.
    pub row_end: u32,
    /// First column gene (inclusive).
    pub col_start: u32,
    /// One past the last column gene.
    pub col_end: u32,
}

impl Tile {
    /// Is this a diagonal tile (row block == column block)?
    pub fn is_diagonal(&self) -> bool {
        self.row_start == self.col_start && self.row_end == self.col_end
    }

    /// Number of `(i, j), i < j` pairs inside the tile.
    pub fn pair_count(&self) -> u64 {
        if self.is_diagonal() {
            let t = (self.row_end - self.row_start) as u64;
            t * (t - 1) / 2
        } else {
            let r = (self.row_end - self.row_start) as u64;
            let c = (self.col_end - self.col_start) as u64;
            r * c
        }
    }

    /// Number of distinct genes whose weight matrices the tile touches —
    /// the quantity the cache-blocking tile-size choice is based on.
    pub fn genes_touched(&self) -> u32 {
        if self.is_diagonal() {
            self.row_end - self.row_start
        } else {
            (self.row_end - self.row_start) + (self.col_end - self.col_start)
        }
    }

    /// Iterate over the `(i, j), i < j` pairs of the tile in row-major
    /// order.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let tile = *self;
        (tile.row_start..tile.row_end).flat_map(move |i| {
            let cstart = if tile.is_diagonal() {
                i + 1
            } else {
                tile.col_start
            };
            (cstart.max(tile.col_start)..tile.col_end).map(move |j| (i, j))
        })
    }

    /// The distinct gene indices the tile touches: rows first, then any
    /// columns not already in the row range.
    pub fn gene_indices(&self) -> Vec<u32> {
        let mut out: Vec<u32> = (self.row_start..self.row_end).collect();
        if !self.is_diagonal() {
            out.extend(self.col_start..self.col_end);
        }
        out
    }
}

/// The full tiling of the strict upper triangle of an `n × n` pair matrix
/// into `tile_size`-wide blocks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileSpace {
    genes: u32,
    tile_size: u32,
    tiles: Vec<Tile>,
}

impl TileSpace {
    /// Tile the pair space of `genes` genes with `tile_size × tile_size`
    /// blocks (edge blocks are smaller).
    ///
    /// # Panics
    /// Panics if `genes < 2` or `tile_size == 0`.
    pub fn new(genes: usize, tile_size: usize) -> Self {
        assert!(genes >= 2, "need at least two genes to have a pair");
        assert!(tile_size >= 1, "tile size must be positive");
        let n = u32::try_from(genes).expect("gene count fits the u32 tile index space");
        let t = u32::try_from(tile_size).expect("tile size fits the u32 tile index space");
        let blocks = n.div_ceil(t);
        let mut tiles = Vec::with_capacity((blocks * (blocks + 1) / 2) as usize);
        for br in 0..blocks {
            for bc in br..blocks {
                let tile = Tile {
                    row_start: br * t,
                    row_end: ((br + 1) * t).min(n),
                    col_start: bc * t,
                    col_end: ((bc + 1) * t).min(n),
                };
                if tile.pair_count() > 0 {
                    tiles.push(tile);
                }
            }
        }
        Self {
            genes: n,
            tile_size: t,
            tiles,
        }
    }

    /// Number of genes `n`.
    pub fn genes(&self) -> usize {
        self.genes as usize
    }

    /// Configured tile edge length.
    pub fn tile_size(&self) -> usize {
        self.tile_size as usize
    }

    /// The tiles, in row-major block order.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Total pair count over all tiles; always `n(n−1)/2`.
    pub fn total_pairs(&self) -> u64 {
        self.tiles.iter().map(Tile::pair_count).sum()
    }

    /// Choose a tile size so one tile's working set (`2·T` gene weight
    /// matrices of `bytes_per_gene`) fits in `cache_bytes`, clamped to
    /// `[4, genes]`. This encodes the paper's L2 blocking rule.
    pub fn tile_size_for_cache(genes: usize, bytes_per_gene: usize, cache_bytes: usize) -> usize {
        assert!(bytes_per_gene > 0, "genes cannot be weightless");
        let t = cache_bytes / (2 * bytes_per_gene);
        t.clamp(4, genes.max(4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn tiles_partition_the_pair_space_exactly() {
        for (n, t) in [
            (10usize, 3usize),
            (16, 4),
            (17, 4),
            (100, 7),
            (5, 64),
            (2, 1),
        ] {
            let space = TileSpace::new(n, t);
            let mut seen = HashSet::new();
            for tile in space.tiles() {
                for (i, j) in tile.pairs() {
                    assert!(i < j, "pair ({i},{j}) not strictly upper triangular");
                    assert!((j as usize) < n);
                    assert!(seen.insert((i, j)), "pair ({i},{j}) covered twice");
                }
            }
            assert_eq!(
                seen.len() as u64,
                (n as u64) * (n as u64 - 1) / 2,
                "n={n}, t={t}"
            );
            assert_eq!(space.total_pairs(), seen.len() as u64);
        }
    }

    #[test]
    fn pair_count_matches_enumeration() {
        let space = TileSpace::new(23, 5);
        for tile in space.tiles() {
            assert_eq!(tile.pair_count(), tile.pairs().count() as u64, "{tile:?}");
        }
    }

    #[test]
    fn diagonal_tiles_are_triangles() {
        let space = TileSpace::new(12, 4);
        let diag: Vec<&Tile> = space.tiles().iter().filter(|t| t.is_diagonal()).collect();
        assert_eq!(diag.len(), 3);
        for t in diag {
            assert_eq!(t.pair_count(), 6); // C(4,2)
            assert_eq!(t.genes_touched(), 4);
        }
    }

    #[test]
    fn off_diagonal_tiles_are_full_rectangles() {
        let space = TileSpace::new(8, 4);
        let off: Vec<&Tile> = space.tiles().iter().filter(|t| !t.is_diagonal()).collect();
        assert_eq!(off.len(), 1);
        assert_eq!(off[0].pair_count(), 16);
        assert_eq!(off[0].genes_touched(), 8);
    }

    #[test]
    fn gene_indices_cover_rows_and_columns() {
        let t = Tile {
            row_start: 0,
            row_end: 2,
            col_start: 4,
            col_end: 6,
        };
        assert_eq!(t.gene_indices(), vec![0, 1, 4, 5]);
        let d = Tile {
            row_start: 4,
            row_end: 6,
            col_start: 4,
            col_end: 6,
        };
        assert_eq!(d.gene_indices(), vec![4, 5]);
    }

    #[test]
    fn oversized_tile_degenerates_to_single_tile() {
        let space = TileSpace::new(6, 100);
        assert_eq!(space.tiles().len(), 1);
        assert!(space.tiles()[0].is_diagonal());
        assert_eq!(space.total_pairs(), 15);
    }

    #[test]
    #[should_panic(expected = "at least two genes")]
    fn single_gene_rejected() {
        let _ = TileSpace::new(1, 4);
    }

    #[test]
    fn cache_blocking_rule() {
        // 44 KB per gene (3137 samples × 14 B sparse) in a 512 KB L2 share
        // ⇒ T ≈ 5... clamped up to 4 minimum; with 256 KB per-core share of
        // a big L2 and small genes, T grows.
        let t = TileSpace::tile_size_for_cache(15_575, 44_000, 512 * 1024);
        assert_eq!(t, 5);
        let t2 = TileSpace::tile_size_for_cache(1000, 1_000, 512 * 1024);
        assert_eq!(t2, 262);
        let t3 = TileSpace::tile_size_for_cache(100, 1_000_000, 512 * 1024);
        assert_eq!(t3, 4, "clamped to the minimum");
    }

    proptest! {
        #[test]
        fn prop_partition_exact(n in 2usize..120, t in 1usize..40) {
            let space = TileSpace::new(n, t);
            let covered: u64 = space.tiles().iter().map(Tile::pair_count).sum();
            prop_assert_eq!(covered, (n as u64) * (n as u64 - 1) / 2);
            // No tile exceeds the configured working set.
            for tile in space.tiles() {
                prop_assert!(tile.genes_touched() as usize <= 2 * t);
            }
        }
    }
}
