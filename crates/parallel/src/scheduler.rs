//! Tile distribution policies and the multithreaded executor.
//!
//! All policies run the same worker over the same tile set and differ only
//! in *which thread runs which tile when* — so the merged result is
//! bitwise identical across policies whenever the per-thread states merge
//! exactly (the pipeline's accumulators are mergeable for exactly this
//! reason). The policies mirror the paper's comparison:
//!
//! * [`SchedulerPolicy::StaticBlock`] — thread `t` takes one contiguous
//!   chunk of the tile list. Cheapest dispatch, worst imbalance: early
//!   chunks hold diagonal (half-empty) tiles.
//! * [`SchedulerPolicy::StaticCyclic`] — thread `t` takes tiles
//!   `t, t+T, t+2T, …`. Better spread, still blind to runtime variation.
//! * [`SchedulerPolicy::DynamicCounter`] — threads pop the next tile from
//!   a shared atomic counter (the paper's scheme): one `fetch_add` per
//!   tile, self-balancing.
//! * [`SchedulerPolicy::RayonSteal`] — Rayon's work-stealing deques, the
//!   idiomatic Rust equivalent.

use crossbeam::thread as cb_thread;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::tile::Tile;

/// Tile distribution policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerPolicy {
    /// Contiguous chunk per thread.
    StaticBlock,
    /// Round-robin interleaving.
    StaticCyclic,
    /// Shared atomic counter (the paper's dynamic scheme).
    #[default]
    DynamicCounter,
    /// Rayon work stealing.
    RayonSteal,
}

impl SchedulerPolicy {
    /// All policies, for sweep experiments.
    pub const ALL: [SchedulerPolicy; 4] = [
        Self::StaticBlock,
        Self::StaticCyclic,
        Self::DynamicCounter,
        Self::RayonSteal,
    ];

    /// Short stable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::StaticBlock => "static-block",
            Self::StaticCyclic => "static-cyclic",
            Self::DynamicCounter => "dynamic",
            Self::RayonSteal => "rayon-steal",
        }
    }
}

/// Per-thread execution statistics captured by the executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Tiles this thread executed.
    pub tiles: usize,
    /// Pairs this thread executed.
    pub pairs: u64,
    /// Wall time this thread spent inside the worker.
    pub busy: Duration,
}

/// Whole-run report: wall time plus per-thread statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// End-to-end wall time of the parallel section.
    pub elapsed: Duration,
    /// One entry per worker thread.
    pub per_thread: Vec<ThreadStats>,
}

impl ExecutionReport {
    /// Load imbalance: slowest thread's busy time over the mean busy time.
    /// 1.0 is perfect balance; the paper's static-vs-dynamic comparison is
    /// expressed in this metric.
    pub fn imbalance(&self) -> f64 {
        if self.per_thread.is_empty() {
            return 1.0;
        }
        let times: Vec<f64> = self
            .per_thread
            .iter()
            .map(|t| t.busy.as_secs_f64())
            .collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Total pairs executed across threads.
    pub fn total_pairs(&self) -> u64 {
        self.per_thread.iter().map(|t| t.pairs).sum()
    }
}

/// Execute `work` over every tile using `threads` workers under `policy`.
///
/// `make_state` builds one private state per thread (scratch buffers,
/// accumulators); `work` is invoked as `work(state, tile)`. Returns every
/// thread's final state (callers merge them) and the execution report.
///
/// The executor guarantees each tile is executed exactly once regardless
/// of policy.
///
/// # Panics
/// Panics if `threads == 0` or a worker panics.
pub fn execute_tiles<S, FMake, FWork>(
    tiles: &[Tile],
    threads: usize,
    policy: SchedulerPolicy,
    make_state: FMake,
    work: FWork,
) -> (Vec<S>, ExecutionReport)
where
    S: Send,
    FMake: Fn(usize) -> S + Sync,
    FWork: Fn(&mut S, &Tile) + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    let start = Instant::now();
    let (states, per_thread) = match policy {
        SchedulerPolicy::StaticBlock => run_static(
            tiles,
            threads,
            &make_state,
            &work,
            assign_block(tiles.len(), threads),
        ),
        SchedulerPolicy::StaticCyclic => run_static(
            tiles,
            threads,
            &make_state,
            &work,
            assign_cyclic(tiles.len(), threads),
        ),
        SchedulerPolicy::DynamicCounter => run_dynamic(tiles, threads, &make_state, &work),
        SchedulerPolicy::RayonSteal => run_rayon(tiles, threads, &make_state, &work),
    };
    (
        states,
        ExecutionReport {
            elapsed: start.elapsed(),
            per_thread,
        },
    )
}

/// Contiguous chunk assignment: thread `t` gets tile indices
/// `[t·⌈n/T⌉ … (t+1)·⌈n/T⌉)`, clipped.
pub fn assign_block(n: usize, threads: usize) -> Vec<Vec<usize>> {
    let chunk = n.div_ceil(threads.max(1));
    (0..threads)
        .map(|t| {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            (lo..hi).collect()
        })
        .collect()
}

/// Cyclic assignment: thread `t` gets tiles `t, t+T, t+2T, …`.
pub fn assign_cyclic(n: usize, threads: usize) -> Vec<Vec<usize>> {
    (0..threads)
        .map(|t| (t..n).step_by(threads.max(1)).collect())
        .collect()
}

fn run_static<S, FMake, FWork>(
    tiles: &[Tile],
    threads: usize,
    make_state: &FMake,
    work: &FWork,
    assignment: Vec<Vec<usize>>,
) -> (Vec<S>, Vec<ThreadStats>)
where
    S: Send,
    FMake: Fn(usize) -> S + Sync,
    FWork: Fn(&mut S, &Tile) + Sync,
{
    cb_thread::scope(|scope| {
        let handles: Vec<_> = assignment
            .into_iter()
            .enumerate()
            .map(|(tid, indices)| {
                scope.spawn(move |_| {
                    let mut state = make_state(tid);
                    let mut stats = ThreadStats::default();
                    let t0 = Instant::now();
                    for idx in indices {
                        let tile = &tiles[idx];
                        work(&mut state, tile);
                        stats.tiles += 1;
                        stats.pairs += tile.pair_count();
                    }
                    stats.busy = t0.elapsed();
                    (state, stats)
                })
            })
            .collect();
        let mut states = Vec::with_capacity(threads);
        let mut all_stats = Vec::with_capacity(threads);
        for h in handles {
            let (s, st) = h.join().expect("worker thread panicked");
            states.push(s);
            all_stats.push(st);
        }
        (states, all_stats)
    })
    .expect("scoped execution failed")
}

fn run_dynamic<S, FMake, FWork>(
    tiles: &[Tile],
    threads: usize,
    make_state: &FMake,
    work: &FWork,
) -> (Vec<S>, Vec<ThreadStats>)
where
    S: Send,
    FMake: Fn(usize) -> S + Sync,
    FWork: Fn(&mut S, &Tile) + Sync,
{
    let next = AtomicUsize::new(0);
    cb_thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let next = &next;
                scope.spawn(move |_| {
                    let mut state = make_state(tid);
                    let mut stats = ThreadStats::default();
                    let t0 = Instant::now();
                    loop {
                        // ordering: the counter only claims tile indices —
                        // no data is published through it, and the scoped
                        // join below synchronizes the merged states.
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= tiles.len() {
                            break;
                        }
                        let tile = &tiles[idx];
                        work(&mut state, tile);
                        stats.tiles += 1;
                        stats.pairs += tile.pair_count();
                    }
                    stats.busy = t0.elapsed();
                    (state, stats)
                })
            })
            .collect();
        let mut states = Vec::with_capacity(threads);
        let mut all_stats = Vec::with_capacity(threads);
        for h in handles {
            let (s, st) = h.join().expect("worker thread panicked");
            states.push(s);
            all_stats.push(st);
        }
        (states, all_stats)
    })
    .expect("scoped execution failed")
}

fn run_rayon<S, FMake, FWork>(
    tiles: &[Tile],
    threads: usize,
    make_state: &FMake,
    work: &FWork,
) -> (Vec<S>, Vec<ThreadStats>)
where
    S: Send,
    FMake: Fn(usize) -> S + Sync,
    FWork: Fn(&mut S, &Tile) + Sync,
{
    use rayon::prelude::*;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    // fold() gives one partial state per rayon job batch; each carries its
    // own stats. The number of partials is ≤ the number of stolen splits,
    // not necessarily `threads`.
    let partials: Vec<(S, ThreadStats)> = pool.install(|| {
        tiles
            .par_iter()
            .fold(
                || {
                    let tid = rayon::current_thread_index().unwrap_or(0);
                    (make_state(tid), ThreadStats::default(), Instant::now())
                },
                |(mut state, mut stats, t0), tile| {
                    work(&mut state, tile);
                    stats.tiles += 1;
                    stats.pairs += tile.pair_count();
                    stats.busy = t0.elapsed();
                    (state, stats, t0)
                },
            )
            .map(|(s, st, _)| (s, st))
            .collect()
    });
    partials.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileSpace;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn space() -> TileSpace {
        TileSpace::new(40, 7)
    }

    #[test]
    fn block_assignment_covers_all_indices_once() {
        for (n, t) in [(10usize, 3usize), (7, 7), (5, 9), (0, 4)] {
            for assign in [assign_block(n, t), assign_cyclic(n, t)] {
                let mut seen = HashSet::new();
                for per_thread in &assign {
                    for &i in per_thread {
                        assert!(seen.insert(i), "index {i} assigned twice");
                    }
                }
                assert_eq!(seen.len(), n);
            }
        }
    }

    #[test]
    fn cyclic_interleaves() {
        let a = assign_cyclic(7, 3);
        assert_eq!(a[0], vec![0, 3, 6]);
        assert_eq!(a[1], vec![1, 4]);
        assert_eq!(a[2], vec![2, 5]);
    }

    #[test]
    fn every_policy_executes_each_tile_exactly_once() {
        let sp = space();
        for policy in SchedulerPolicy::ALL {
            let executed = Mutex::new(Vec::<Tile>::new());
            let (_, report) = execute_tiles(
                sp.tiles(),
                4,
                policy,
                |_| (),
                |_, tile| {
                    executed.lock().unwrap().push(*tile);
                },
            );
            let executed = executed.into_inner().unwrap();
            assert_eq!(executed.len(), sp.tiles().len(), "policy {policy:?}");
            let set: HashSet<_> = executed.iter().collect();
            assert_eq!(
                set.len(),
                sp.tiles().len(),
                "policy {policy:?} duplicated a tile"
            );
            assert_eq!(report.total_pairs(), sp.total_pairs(), "policy {policy:?}");
        }
    }

    #[test]
    fn per_thread_states_partition_the_work() {
        let sp = space();
        for policy in SchedulerPolicy::ALL {
            let (states, _) = execute_tiles(
                sp.tiles(),
                3,
                policy,
                |_| 0u64,
                |pairs, tile| {
                    *pairs += tile.pair_count();
                },
            );
            let merged: u64 = states.iter().sum();
            assert_eq!(merged, sp.total_pairs(), "policy {policy:?}");
        }
    }

    #[test]
    fn single_thread_works_for_all_policies() {
        let sp = TileSpace::new(9, 2);
        for policy in SchedulerPolicy::ALL {
            let (states, report) = execute_tiles(
                sp.tiles(),
                1,
                policy,
                |_| 0u64,
                |pairs, tile| *pairs += tile.pair_count(),
            );
            assert_eq!(states.iter().sum::<u64>(), 36);
            assert_eq!(report.total_pairs(), 36);
        }
    }

    #[test]
    fn more_threads_than_tiles_is_fine() {
        let sp = TileSpace::new(4, 4); // one tile
        for policy in SchedulerPolicy::ALL {
            let (states, _) = execute_tiles(
                sp.tiles(),
                8,
                policy,
                |_| 0u64,
                |pairs, tile| *pairs += tile.pair_count(),
            );
            assert_eq!(states.iter().sum::<u64>(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let sp = space();
        let _ = execute_tiles(
            sp.tiles(),
            0,
            SchedulerPolicy::DynamicCounter,
            |_| (),
            |_, _| (),
        );
    }

    #[test]
    fn report_imbalance_is_at_least_one() {
        let sp = space();
        let (_, report) = execute_tiles(
            sp.tiles(),
            2,
            SchedulerPolicy::DynamicCounter,
            |_| (),
            |_, tile| {
                // Unequal synthetic work so busy times differ.
                let spin = tile.pair_count() * 50;
                let mut acc = 0u64;
                for i in 0..spin {
                    acc = acc.wrapping_add(i);
                }
                std::hint::black_box(acc);
            },
        );
        assert!(report.imbalance() >= 1.0);
        assert_eq!(report.per_thread.len(), 2);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(SchedulerPolicy::DynamicCounter.name(), "dynamic");
        assert_eq!(SchedulerPolicy::StaticBlock.name(), "static-block");
        assert_eq!(SchedulerPolicy::StaticCyclic.name(), "static-cyclic");
        assert_eq!(SchedulerPolicy::RayonSteal.name(), "rayon-steal");
    }

    #[test]
    fn states_receive_distinct_thread_ids() {
        let sp = space();
        let (states, _) = execute_tiles(
            sp.tiles(),
            4,
            SchedulerPolicy::StaticCyclic,
            |tid| tid,
            |_, _| {},
        );
        let unique: HashSet<_> = states.iter().collect();
        assert_eq!(unique.len(), 4);
    }
}
