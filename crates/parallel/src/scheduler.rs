//! Tile distribution policies and the multithreaded executor.
//!
//! All policies run the same worker over the same tile set and differ only
//! in *which thread runs which tile when* — so the merged result is
//! bitwise identical across policies whenever the per-thread states merge
//! exactly (the pipeline's accumulators are mergeable for exactly this
//! reason). The policies mirror the paper's comparison:
//!
//! * [`SchedulerPolicy::StaticBlock`] — thread `t` takes one contiguous
//!   chunk of the tile list. Cheapest dispatch, worst imbalance: early
//!   chunks hold diagonal (half-empty) tiles.
//! * [`SchedulerPolicy::StaticCyclic`] — thread `t` takes tiles
//!   `t, t+T, t+2T, …`. Better spread, still blind to runtime variation.
//! * [`SchedulerPolicy::DynamicCounter`] — threads pop the next tile from
//!   a shared atomic counter (the paper's scheme): one `fetch_add` per
//!   tile, self-balancing.
//! * [`SchedulerPolicy::RayonSteal`] — Rayon's work-stealing deques, the
//!   idiomatic Rust equivalent.

use crossbeam::thread as cb_thread;
use gnet_trace::Recorder;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::tile::Tile;

/// Histogram name for per-tile execution latency (µs).
pub const HIST_TILE_US: &str = "scheduler.tile_us";

/// Tile distribution policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerPolicy {
    /// Contiguous chunk per thread.
    StaticBlock,
    /// Round-robin interleaving.
    StaticCyclic,
    /// Shared atomic counter (the paper's dynamic scheme).
    #[default]
    DynamicCounter,
    /// Rayon work stealing.
    RayonSteal,
}

impl SchedulerPolicy {
    /// All policies, for sweep experiments.
    pub const ALL: [SchedulerPolicy; 4] = [
        Self::StaticBlock,
        Self::StaticCyclic,
        Self::DynamicCounter,
        Self::RayonSteal,
    ];

    /// Short stable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::StaticBlock => "static-block",
            Self::StaticCyclic => "static-cyclic",
            Self::DynamicCounter => "dynamic",
            Self::RayonSteal => "rayon-steal",
        }
    }

    /// Parse a policy from its [`Self::name`] slug; `"rayon"` is kept
    /// as an alias for `"rayon-steal"` (the CLI's historical spelling).
    pub fn from_slug(slug: &str) -> Option<Self> {
        match slug {
            "static-block" => Some(Self::StaticBlock),
            "static-cyclic" => Some(Self::StaticCyclic),
            "dynamic" => Some(Self::DynamicCounter),
            "rayon-steal" | "rayon" => Some(Self::RayonSteal),
            _ => None,
        }
    }
}

/// Per-thread execution statistics captured by the executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Tiles this thread executed.
    pub tiles: usize,
    /// Pairs this thread executed.
    pub pairs: u64,
    /// Wall time this thread spent inside the worker.
    pub busy: Duration,
}

/// Whole-run report: wall time plus per-thread statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// End-to-end wall time of the parallel section.
    pub elapsed: Duration,
    /// One entry per worker thread.
    pub per_thread: Vec<ThreadStats>,
}

impl ExecutionReport {
    /// Load imbalance: slowest thread's busy time over the mean busy time.
    /// 1.0 is perfect balance; the paper's static-vs-dynamic comparison is
    /// expressed in this metric.
    pub fn imbalance(&self) -> f64 {
        if self.per_thread.is_empty() {
            return 1.0;
        }
        let times: Vec<f64> = self
            .per_thread
            .iter()
            .map(|t| t.busy.as_secs_f64())
            .collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Total pairs executed across threads.
    pub fn total_pairs(&self) -> u64 {
        self.per_thread.iter().map(|t| t.pairs).sum()
    }

    /// Total tiles executed across threads.
    pub fn total_tiles(&self) -> usize {
        self.per_thread.iter().map(|t| t.tiles).sum()
    }

    /// Fold another report into this one, thread-index-wise: chunked
    /// drivers (checkpointing) run several parallel sections and must
    /// account for all of them, not just the last. Wall times add (the
    /// sections ran back to back); per-thread tiles/pairs/busy add
    /// entry-wise, growing the vector if `other` saw more threads.
    pub fn absorb(&mut self, other: &ExecutionReport) {
        self.elapsed += other.elapsed;
        if self.per_thread.len() < other.per_thread.len() {
            self.per_thread
                .resize(other.per_thread.len(), ThreadStats::default());
        }
        for (mine, theirs) in self.per_thread.iter_mut().zip(&other.per_thread) {
            mine.tiles += theirs.tiles;
            mine.pairs += theirs.pairs;
            mine.busy += theirs.busy;
        }
    }
}

/// Execute `work` over every tile using `threads` workers under `policy`.
///
/// `make_state` builds one private state per thread (scratch buffers,
/// accumulators); `work` is invoked as `work(state, tile)`. Returns every
/// thread's final state (callers merge them) and the execution report.
///
/// The executor guarantees each tile is executed exactly once regardless
/// of policy.
///
/// # Panics
/// Panics if `threads == 0` or a worker panics.
pub fn execute_tiles<S, FMake, FWork>(
    tiles: &[Tile],
    threads: usize,
    policy: SchedulerPolicy,
    make_state: FMake,
    work: FWork,
) -> (Vec<S>, ExecutionReport)
where
    S: Send,
    FMake: Fn(usize) -> S + Sync,
    FWork: Fn(&mut S, &Tile) + Sync,
{
    execute_tiles_traced(
        tiles,
        threads,
        policy,
        make_state,
        work,
        &Recorder::disabled(),
    )
}

/// [`execute_tiles`] with instrumentation: when `rec` is enabled, every
/// tile's execution latency feeds the [`HIST_TILE_US`] histogram, each
/// worker's claim count lands in a `scheduler.claims.t<tid>` counter, and
/// a progress update (tiles done / total) is forwarded after every tile.
/// With a disabled recorder this is exactly `execute_tiles` — one branch
/// per tile of overhead.
///
/// # Panics
/// Panics if `threads == 0` or a worker panics.
pub fn execute_tiles_traced<S, FMake, FWork>(
    tiles: &[Tile],
    threads: usize,
    policy: SchedulerPolicy,
    make_state: FMake,
    work: FWork,
    rec: &Recorder,
) -> (Vec<S>, ExecutionReport)
where
    S: Send,
    FMake: Fn(usize) -> S + Sync,
    FWork: Fn(&mut S, &Tile) + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    let start = Instant::now();
    let tracer = TileTracer::new(rec, tiles.len());
    let (states, per_thread) = match policy {
        SchedulerPolicy::StaticBlock => run_static(
            tiles,
            threads,
            &make_state,
            &work,
            assign_block(tiles.len(), threads),
            &tracer,
        ),
        SchedulerPolicy::StaticCyclic => run_static(
            tiles,
            threads,
            &make_state,
            &work,
            assign_cyclic(tiles.len(), threads),
            &tracer,
        ),
        SchedulerPolicy::DynamicCounter => run_dynamic(tiles, threads, &make_state, &work, &tracer),
        SchedulerPolicy::RayonSteal => run_rayon(tiles, threads, &make_state, &work, &tracer),
    };
    (
        states,
        ExecutionReport {
            elapsed: start.elapsed(),
            per_thread,
        },
    )
}

/// Shared per-run instrumentation state: the recorder plus a cross-thread
/// completion counter driving the progress feed.
struct TileTracer<'a> {
    rec: &'a Recorder,
    done: AtomicUsize,
    total: usize,
}

impl<'a> TileTracer<'a> {
    fn new(rec: &'a Recorder, total: usize) -> Self {
        Self {
            rec,
            done: AtomicUsize::new(0),
            total,
        }
    }

    fn enabled(&self) -> bool {
        self.rec.is_enabled()
    }

    /// Record one completed tile (latency histogram + progress update).
    fn tile_done(&self, dur: Duration) {
        self.rec.observe(HIST_TILE_US, dur);
        // ordering: the counter is telemetry only — progress may be
        // observed slightly stale, nothing synchronizes through it.
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.rec.progress(done, self.total);
    }

    /// Record a worker's total claim count under its thread id.
    fn claims(&self, tid: usize, tiles: usize) {
        if self.enabled() && tiles > 0 {
            self.rec
                .counter_add(&format!("scheduler.claims.t{tid}"), tiles as u64);
        }
    }
}

/// Contiguous chunk assignment: thread `t` gets tile indices
/// `[t·⌈n/T⌉ … (t+1)·⌈n/T⌉)`, clipped.
pub fn assign_block(n: usize, threads: usize) -> Vec<Vec<usize>> {
    let chunk = n.div_ceil(threads.max(1));
    (0..threads)
        .map(|t| {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            (lo..hi).collect()
        })
        .collect()
}

/// Cyclic assignment: thread `t` gets tiles `t, t+T, t+2T, …`.
pub fn assign_cyclic(n: usize, threads: usize) -> Vec<Vec<usize>> {
    (0..threads)
        .map(|t| (t..n).step_by(threads.max(1)).collect())
        .collect()
}

fn run_static<S, FMake, FWork>(
    tiles: &[Tile],
    threads: usize,
    make_state: &FMake,
    work: &FWork,
    assignment: Vec<Vec<usize>>,
    tracer: &TileTracer<'_>,
) -> (Vec<S>, Vec<ThreadStats>)
where
    S: Send,
    FMake: Fn(usize) -> S + Sync,
    FWork: Fn(&mut S, &Tile) + Sync,
{
    cb_thread::scope(|scope| {
        let handles: Vec<_> = assignment
            .into_iter()
            .enumerate()
            .map(|(tid, indices)| {
                scope.spawn(move |_| {
                    let mut state = make_state(tid);
                    let mut stats = ThreadStats::default();
                    let t0 = Instant::now();
                    for idx in indices {
                        let tile = &tiles[idx];
                        if tracer.enabled() {
                            let t_tile = Instant::now();
                            work(&mut state, tile);
                            tracer.tile_done(t_tile.elapsed());
                        } else {
                            work(&mut state, tile);
                        }
                        stats.tiles += 1;
                        stats.pairs += tile.pair_count();
                    }
                    stats.busy = t0.elapsed();
                    tracer.claims(tid, stats.tiles);
                    (state, stats)
                })
            })
            .collect();
        let mut states = Vec::with_capacity(threads);
        let mut all_stats = Vec::with_capacity(threads);
        for h in handles {
            let (s, st) = h.join().expect("worker thread panicked");
            states.push(s);
            all_stats.push(st);
        }
        (states, all_stats)
    })
    .expect("scoped execution failed")
}

fn run_dynamic<S, FMake, FWork>(
    tiles: &[Tile],
    threads: usize,
    make_state: &FMake,
    work: &FWork,
    tracer: &TileTracer<'_>,
) -> (Vec<S>, Vec<ThreadStats>)
where
    S: Send,
    FMake: Fn(usize) -> S + Sync,
    FWork: Fn(&mut S, &Tile) + Sync,
{
    let next = AtomicUsize::new(0);
    cb_thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let next = &next;
                scope.spawn(move |_| {
                    let mut state = make_state(tid);
                    let mut stats = ThreadStats::default();
                    let t0 = Instant::now();
                    loop {
                        // ordering: the counter only claims tile indices —
                        // no data is published through it, and the scoped
                        // join below synchronizes the merged states.
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= tiles.len() {
                            break;
                        }
                        let tile = &tiles[idx];
                        if tracer.enabled() {
                            let t_tile = Instant::now();
                            work(&mut state, tile);
                            tracer.tile_done(t_tile.elapsed());
                        } else {
                            work(&mut state, tile);
                        }
                        stats.tiles += 1;
                        stats.pairs += tile.pair_count();
                    }
                    stats.busy = t0.elapsed();
                    tracer.claims(tid, stats.tiles);
                    (state, stats)
                })
            })
            .collect();
        let mut states = Vec::with_capacity(threads);
        let mut all_stats = Vec::with_capacity(threads);
        for h in handles {
            let (s, st) = h.join().expect("worker thread panicked");
            states.push(s);
            all_stats.push(st);
        }
        (states, all_stats)
    })
    .expect("scoped execution failed")
}

fn run_rayon<S, FMake, FWork>(
    tiles: &[Tile],
    threads: usize,
    make_state: &FMake,
    work: &FWork,
    tracer: &TileTracer<'_>,
) -> (Vec<S>, Vec<ThreadStats>)
where
    S: Send,
    FMake: Fn(usize) -> S + Sync,
    FWork: Fn(&mut S, &Tile) + Sync,
{
    use rayon::prelude::*;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    // fold() gives one partial state per rayon job batch. A worker thread
    // can own several partials whose lifetimes overlap on its clock, so
    // busy time is measured per work item (not from the partial's creation
    // — that double-counted overlapping windows and broke `imbalance()`)
    // and the partials' stats are then aggregated per worker thread. The
    // thread index is captured in the fold closure because `map` runs on
    // the collecting thread, not the worker.
    let partials: Vec<(S, ThreadStats, usize)> = pool.install(|| {
        tiles
            .par_iter()
            .fold(
                || {
                    let tid = rayon::current_thread_index().unwrap_or(0);
                    (make_state(tid), ThreadStats::default(), tid)
                },
                |(mut state, mut stats, tid), tile| {
                    let t_item = Instant::now();
                    work(&mut state, tile);
                    let dur = t_item.elapsed();
                    if tracer.enabled() {
                        tracer.tile_done(dur);
                    }
                    stats.busy += dur;
                    stats.tiles += 1;
                    stats.pairs += tile.pair_count();
                    (state, stats, tid)
                },
            )
            .collect()
    });
    let mut states = Vec::with_capacity(partials.len());
    let mut per_thread = vec![ThreadStats::default(); threads];
    for (state, stats, tid) in partials {
        states.push(state);
        let agg = per_thread
            .get_mut(tid)
            .expect("rayon thread index is bounded by the pool width");
        agg.tiles += stats.tiles;
        agg.pairs += stats.pairs;
        agg.busy += stats.busy;
    }
    for (tid, stats) in per_thread.iter().enumerate() {
        tracer.claims(tid, stats.tiles);
    }
    (states, per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileSpace;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn space() -> TileSpace {
        TileSpace::new(40, 7)
    }

    #[test]
    fn block_assignment_covers_all_indices_once() {
        for (n, t) in [(10usize, 3usize), (7, 7), (5, 9), (0, 4)] {
            for assign in [assign_block(n, t), assign_cyclic(n, t)] {
                let mut seen = HashSet::new();
                for per_thread in &assign {
                    for &i in per_thread {
                        assert!(seen.insert(i), "index {i} assigned twice");
                    }
                }
                assert_eq!(seen.len(), n);
            }
        }
    }

    #[test]
    fn policy_slugs_round_trip_and_aliases_parse() {
        for policy in SchedulerPolicy::ALL {
            assert_eq!(SchedulerPolicy::from_slug(policy.name()), Some(policy));
        }
        assert_eq!(
            SchedulerPolicy::from_slug("rayon"),
            Some(SchedulerPolicy::RayonSteal)
        );
        assert_eq!(SchedulerPolicy::from_slug("work-stealing"), None);
    }

    #[test]
    fn cyclic_interleaves() {
        let a = assign_cyclic(7, 3);
        assert_eq!(a[0], vec![0, 3, 6]);
        assert_eq!(a[1], vec![1, 4]);
        assert_eq!(a[2], vec![2, 5]);
    }

    #[test]
    fn every_policy_executes_each_tile_exactly_once() {
        let sp = space();
        for policy in SchedulerPolicy::ALL {
            let executed = Mutex::new(Vec::<Tile>::new());
            let (_, report) = execute_tiles(
                sp.tiles(),
                4,
                policy,
                |_| (),
                |_, tile| {
                    executed.lock().unwrap().push(*tile);
                },
            );
            let executed = executed.into_inner().unwrap();
            assert_eq!(executed.len(), sp.tiles().len(), "policy {policy:?}");
            let set: HashSet<_> = executed.iter().collect();
            assert_eq!(
                set.len(),
                sp.tiles().len(),
                "policy {policy:?} duplicated a tile"
            );
            assert_eq!(report.total_pairs(), sp.total_pairs(), "policy {policy:?}");
        }
    }

    #[test]
    fn per_thread_states_partition_the_work() {
        let sp = space();
        for policy in SchedulerPolicy::ALL {
            let (states, _) = execute_tiles(
                sp.tiles(),
                3,
                policy,
                |_| 0u64,
                |pairs, tile| {
                    *pairs += tile.pair_count();
                },
            );
            let merged: u64 = states.iter().sum();
            assert_eq!(merged, sp.total_pairs(), "policy {policy:?}");
        }
    }

    #[test]
    fn single_thread_works_for_all_policies() {
        let sp = TileSpace::new(9, 2);
        for policy in SchedulerPolicy::ALL {
            let (states, report) = execute_tiles(
                sp.tiles(),
                1,
                policy,
                |_| 0u64,
                |pairs, tile| *pairs += tile.pair_count(),
            );
            assert_eq!(states.iter().sum::<u64>(), 36);
            assert_eq!(report.total_pairs(), 36);
        }
    }

    #[test]
    fn more_threads_than_tiles_is_fine() {
        let sp = TileSpace::new(4, 4); // one tile
        for policy in SchedulerPolicy::ALL {
            let (states, _) = execute_tiles(
                sp.tiles(),
                8,
                policy,
                |_| 0u64,
                |pairs, tile| *pairs += tile.pair_count(),
            );
            assert_eq!(states.iter().sum::<u64>(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let sp = space();
        let _ = execute_tiles(
            sp.tiles(),
            0,
            SchedulerPolicy::DynamicCounter,
            |_| (),
            |_, _| (),
        );
    }

    #[test]
    fn report_imbalance_is_at_least_one() {
        let sp = space();
        let (_, report) = execute_tiles(
            sp.tiles(),
            2,
            SchedulerPolicy::DynamicCounter,
            |_| (),
            |_, tile| {
                // Unequal synthetic work so busy times differ.
                let spin = tile.pair_count() * 50;
                let mut acc = 0u64;
                for i in 0..spin {
                    acc = acc.wrapping_add(i);
                }
                std::hint::black_box(acc);
            },
        );
        assert!(report.imbalance() >= 1.0);
        assert_eq!(report.per_thread.len(), 2);
    }

    /// Synthetic spin proportional to a tile's pair count, so busy times
    /// differ measurably across threads.
    fn spin_work(tile: &Tile) {
        let spin = tile.pair_count() * 200;
        let mut acc = 0u64;
        for i in 0..spin {
            acc = acc.wrapping_add(i ^ (i << 3));
        }
        std::hint::black_box(acc);
    }

    /// Regression: `run_rayon` used to stamp `busy = t0.elapsed()` per
    /// fold partial from the *partial's creation time*, so one worker
    /// owning several partials reported overlapping busy windows. Busy is
    /// now per-item time aggregated per worker thread, which restores the
    /// physical invariants: imbalance ≥ 1 and the busy sum bounded by
    /// wall-clock × threads.
    #[test]
    fn rayon_busy_is_per_thread_and_physically_bounded() {
        let sp = space();
        let threads = 3;
        let (_, report) = execute_tiles(
            sp.tiles(),
            threads,
            SchedulerPolicy::RayonSteal,
            |_| (),
            |_, tile| spin_work(tile),
        );
        assert!(report.imbalance() >= 1.0, "{}", report.imbalance());
        assert_eq!(report.per_thread.len(), threads);
        assert_eq!(report.total_pairs(), sp.total_pairs());
        assert_eq!(report.total_tiles(), sp.tiles().len());
        let busy_sum: Duration = report.per_thread.iter().map(|t| t.busy).sum();
        assert!(
            busy_sum <= report.elapsed * u32::try_from(threads).expect("tiny thread count"),
            "busy sum {busy_sum:?} exceeds wall {:?} × {threads}",
            report.elapsed
        );
        // Each thread's own busy time is also bounded by the wall clock.
        for t in &report.per_thread {
            assert!(
                t.busy <= report.elapsed,
                "{:?} > {:?}",
                t.busy,
                report.elapsed
            );
        }
    }

    #[test]
    fn absorb_accumulates_reports_entrywise() {
        let mut a = ExecutionReport {
            elapsed: Duration::from_millis(10),
            per_thread: vec![ThreadStats {
                tiles: 2,
                pairs: 20,
                busy: Duration::from_millis(8),
            }],
        };
        let b = ExecutionReport {
            elapsed: Duration::from_millis(5),
            per_thread: vec![
                ThreadStats {
                    tiles: 1,
                    pairs: 10,
                    busy: Duration::from_millis(4),
                },
                ThreadStats {
                    tiles: 3,
                    pairs: 30,
                    busy: Duration::from_millis(5),
                },
            ],
        };
        a.absorb(&b);
        assert_eq!(a.elapsed, Duration::from_millis(15));
        assert_eq!(a.per_thread.len(), 2);
        assert_eq!(a.per_thread[0].tiles, 3);
        assert_eq!(a.per_thread[0].pairs, 30);
        assert_eq!(a.per_thread[0].busy, Duration::from_millis(12));
        assert_eq!(a.per_thread[1].tiles, 3);
        assert_eq!(a.total_pairs(), 60);
    }

    #[test]
    fn traced_execution_records_tiles_claims_and_progress() {
        use std::sync::atomic::AtomicUsize as Counter;
        use std::sync::Arc;
        let sp = space();
        for policy in SchedulerPolicy::ALL {
            let max_done = Arc::new(Counter::new(0));
            let max_done2 = Arc::clone(&max_done);
            let total_tiles = sp.tiles().len();
            let rec = gnet_trace::Recorder::enabled_with_progress(move |p| {
                assert_eq!(p.total, total_tiles);
                max_done2.fetch_max(p.done, Ordering::SeqCst);
            });
            let (_, report) = execute_tiles_traced(
                sp.tiles(),
                2,
                policy,
                |_| (),
                |_, tile| spin_work(tile),
                &rec,
            );
            let hist = rec
                .histogram(HIST_TILE_US)
                .expect("tile histogram recorded");
            assert_eq!(hist.count(), total_tiles as u64, "{policy:?}");
            assert_eq!(max_done.load(Ordering::SeqCst), total_tiles, "{policy:?}");
            let claims: u64 = (0..2)
                .filter_map(|t| rec.counter(&format!("scheduler.claims.t{t}")))
                .sum();
            assert_eq!(claims, total_tiles as u64, "{policy:?}");
            assert_eq!(report.total_tiles(), total_tiles);
        }
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(SchedulerPolicy::DynamicCounter.name(), "dynamic");
        assert_eq!(SchedulerPolicy::StaticBlock.name(), "static-block");
        assert_eq!(SchedulerPolicy::StaticCyclic.name(), "static-cyclic");
        assert_eq!(SchedulerPolicy::RayonSteal.name(), "rayon-steal");
    }

    #[test]
    fn states_receive_distinct_thread_ids() {
        let sp = space();
        let (states, _) = execute_tiles(
            sp.tiles(),
            4,
            SchedulerPolicy::StaticCyclic,
            |tid| tid,
            |_, _| {},
        );
        let unique: HashSet<_> = states.iter().collect();
        assert_eq!(unique.len(), 4);
    }
}
