//! Tile decomposition and scheduling for the pairwise MI computation.
//!
//! The pair space of `n` genes is the strict upper triangle of an `n × n`
//! matrix — `n(n−1)/2` independent units of work. Computing it pair-by-pair
//! would reload two weight matrices per pair; the paper instead partitions
//! the triangle into `T × T` **tiles** so that one tile touches at most
//! `2T` distinct genes whose weight matrices fit in a core's share of L2,
//! and every pair inside the tile reuses them ([`tile`]).
//!
//! Tiles have unequal pair counts (diagonal tiles are half-full triangles)
//! and, on a 244-thread chip, per-tile runtime varies enough that the
//! distribution policy matters. [`scheduler`] implements the policies the
//! evaluation compares: static block, static cyclic, a dynamic shared
//! counter (the paper's choice), and Rayon work-stealing — all behind one
//! executor so the result is policy-independent by construction.

#![warn(missing_docs)]

pub mod pairwise;
pub mod scheduler;
pub mod tile;

pub use pairwise::{compute_pairwise, pair_index};
pub use scheduler::{
    execute_tiles, execute_tiles_traced, ExecutionReport, SchedulerPolicy, ThreadStats,
    HIST_TILE_US,
};
pub use tile::{Tile, TileSpace};
