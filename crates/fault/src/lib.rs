//! Deterministic fault injection for chaos testing the pipeline.
//!
//! A multi-hour whole-genome run must survive preempted ranks, dropped
//! fabric messages, torn checkpoint writes, and dying coprocessors. This
//! crate makes every one of those failures a *reproducible test case*:
//!
//! * [`FaultPlan`] — a seeded list of faults to inject. Plans render to
//!   and parse from a compact plan string
//!   (`seed=42;crash(rank=1,round=2);flip(write=0,byte=17,bit=3)`), so a
//!   chaos failure observed in CI replays locally from one line of text.
//!   [`FaultPlan::randomized`] derives a plan from a seed via SplitMix64,
//!   giving unbounded deterministic chaos from a single integer.
//! * [`FaultInjector`] — the cheap, cloneable runtime handle the fabric,
//!   checkpoint store, distributed driver, and offload simulator consult
//!   at their fault points. The default handle is **disarmed**: every
//!   query is a single `Option` branch, so production paths pay nothing.
//! * [`names`] — the trace vocabulary shared between injection sites and
//!   the recovery paths that react to them, so metrics JSON shows both
//!   what was injected and what the recovery cost.
//!
//! The crate sits below `gnet-core`/`gnet-cluster`/`gnet-phi` in the
//! workspace graph and depends only on `gnet-trace`.

// cast-ok (crate-wide): randomized plans narrow SplitMix64 draws back
// into the integer domains that bounded them (`ChaosSpace` usize fields,
// bit indices drawn below 8), so the casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

mod injector;
mod plan;
mod rng;

pub use injector::{FaultInjector, MessageAction, WireAction};
pub use plan::{ChaosSpace, Fault, FaultPlan, IoOp, PlanParseError};
pub use rng::SplitMix64;

/// Trace event/counter/histogram names shared by injection and recovery.
///
/// Injection sites record the `fault.*` names; the recovery paths in
/// `gnet-core`, `gnet-cluster`, and `gnet-phi` record the `recovery.*`
/// names. Tests and the metrics exporter address both through these
/// constants so the vocabulary cannot drift.
pub mod names {
    /// Event: a fabric message was silently dropped.
    pub const EVT_MESSAGE_DROPPED: &str = "fault.message_dropped";
    /// Event: a fabric message was delayed before delivery.
    pub const EVT_MESSAGE_DELAYED: &str = "fault.message_delayed";
    /// Event: a rank crashed at a ring-round boundary.
    pub const EVT_RANK_CRASH: &str = "fault.rank_crash";
    /// Event: the shared-memory pipeline was killed at a chunk boundary.
    pub const EVT_CHUNK_CRASH: &str = "fault.chunk_crash";
    /// Event: the incremental-update driver was killed at a progress
    /// boundary.
    pub const EVT_UPDATE_CRASH: &str = "fault.update_crash";
    /// Event: an injected I/O error fired.
    pub const EVT_IO_ERROR: &str = "fault.io_error";
    /// Event: checkpoint payload bytes were bit-flipped before writing.
    pub const EVT_BIT_FLIP: &str = "fault.bit_flip";
    /// Event: the offload device died mid-split.
    pub const EVT_DEVICE_LOSS: &str = "fault.device_loss";
    /// Event: a transport dial attempt was refused.
    pub const EVT_CONNECT_REFUSED: &str = "fault.connect_refused";
    /// Event: a wire frame was severed halfway through.
    pub const EVT_FRAME_CUT: &str = "fault.frame_cut";
    /// Event: a wire frame write stalled mid-frame.
    pub const EVT_FRAME_STALLED: &str = "fault.frame_stalled";
    /// Event: a wire frame was truncated then the connection severed.
    pub const EVT_FRAME_TRUNCATED: &str = "fault.frame_truncated";
    /// Counter: total faults fired by an injector.
    pub const CNT_FAULTS_INJECTED: &str = "fault.injected";

    /// Event: a survivor detected a dead peer.
    pub const EVT_CRASH_DETECTED: &str = "recovery.crash_detected";
    /// Event: a rank healed a broken ring by rebuilding the block locally.
    pub const EVT_RING_HEALED: &str = "recovery.ring_healed";
    /// Event: dead-owned block pairs were reassigned to survivors.
    pub const EVT_REDISTRIBUTED: &str = "recovery.redistributed";
    /// Event: an interrupted run resumed from a durable checkpoint.
    pub const EVT_RESUMED: &str = "recovery.resumed";
    /// Event: offload work failed over to host-only execution.
    pub const EVT_HOST_FALLBACK: &str = "recovery.host_fallback";
    /// Counter: dead peers detected across all ranks.
    pub const CNT_CRASHES_DETECTED: &str = "recovery.crashes_detected";
    /// Counter: successful resumes from a durable checkpoint.
    pub const CNT_RESUMES: &str = "recovery.resumes";
    /// Counter: block pairs recomputed by survivors after a crash.
    pub const CNT_PAIRS_REASSIGNED: &str = "recovery.pairs_reassigned";
    /// Counter: device tiles failed over to the host.
    pub const CNT_FAILOVER_TILES: &str = "recovery.failover_tiles";
    /// Histogram: microseconds from failure to detection/repair.
    pub const HIST_RECOVERY_LATENCY_US: &str = "recovery.latency_us";
}
