//! The runtime fault injector consulted at every fault point.
//!
//! Mirrors the `Recorder` design from `gnet-trace`: a cloneable handle
//! whose default state is *disarmed* and costs one `Option` branch per
//! query, so the fabric, checkpoint store, and offload simulator can keep
//! their injection hooks unconditionally wired without taxing production
//! runs. Armed injectors are `Send + Sync` and shared across rank
//! threads; all bookkeeping is atomic counters plus one mutex-guarded
//! per-edge message map (touched at message granularity, far off the hot
//! path).
//!
//! Every fault that actually fires is recorded through the injector's
//! `Recorder` under the [`crate::names`] vocabulary, so the metrics
//! document of a chaos run lists exactly which injections happened.

use crate::names;
use crate::plan::{Fault, FaultPlan, IoOp};
use gnet_trace::{Recorder, Value};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// What the fabric should do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageAction {
    /// Deliver normally.
    Deliver,
    /// Silently drop (the receiver sees nothing).
    Drop,
    /// Deliver after sleeping for the given duration.
    Delay(Duration),
}

/// What a wire transport should do with one outgoing frame.
///
/// Consulted by real network transports (TCP) per frame written; the
/// in-process channel fabric never asks, so wire faults cannot perturb
/// channel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAction {
    /// Write the frame normally.
    Deliver,
    /// Write half the frame, pause for the duration, then write the rest.
    Stall(Duration),
    /// Write only the first `n` bytes, then sever the connection.
    Truncate(usize),
}

struct Inner {
    plan: FaultPlan,
    /// Messages observed per directed edge `(from, to)`.
    edge_counts: Mutex<HashMap<(usize, usize), u64>>,
    /// Frames written per directed wire `(from, to)` — deliberately a
    /// separate count from `edge_counts`, so a plan's `nth` means the
    /// same thing whether the clause targets the message layer or the
    /// wire layer.
    wire_counts: Mutex<HashMap<(usize, usize), u64>>,
    /// Dial attempts observed per directed connection `(from, to)`.
    connect_counts: Mutex<HashMap<(usize, usize), u64>>,
    /// I/O operations observed per [`IoOp`] kind.
    io_counts: [AtomicU64; 3],
    /// Checkpoint payloads offered for corruption so far.
    checkpoint_writes: AtomicU64,
    /// Total faults that actually fired.
    fired: AtomicU64,
    rec: Recorder,
}

/// Cloneable handle to a fault plan being executed, or to nothing.
///
/// [`FaultInjector::none`] (also `Default`) is the disarmed handle every
/// production path uses.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl FaultInjector {
    /// The disarmed injector: every query is a no-op.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Arm an injector with `plan`, recording fired faults nowhere.
    #[must_use]
    pub fn from_plan(plan: &FaultPlan) -> Self {
        Self::from_plan_traced(plan, &Recorder::disabled())
    }

    /// Arm an injector with `plan`, recording fired faults into `rec`.
    #[must_use]
    pub fn from_plan_traced(plan: &FaultPlan, rec: &Recorder) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                plan: plan.clone(),
                edge_counts: Mutex::new(HashMap::new()),
                wire_counts: Mutex::new(HashMap::new()),
                connect_counts: Mutex::new(HashMap::new()),
                io_counts: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
                checkpoint_writes: AtomicU64::new(0),
                fired: AtomicU64::new(0),
                rec: rec.clone(),
            })),
        }
    }

    /// True when a plan is armed (even an empty one).
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The armed plan, if any.
    #[must_use]
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.inner.as_deref().map(|i| &i.plan)
    }

    /// Total faults that have fired so far.
    #[must_use]
    pub fn faults_fired(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| {
            // ordering: independent stat counter; no cross-thread data dependency.
            i.fired.load(Ordering::Relaxed)
        })
    }

    fn fire(inner: &Inner) {
        // ordering: independent stat counter; no cross-thread data dependency.
        inner.fired.fetch_add(1, Ordering::Relaxed);
        inner.rec.counter_add(names::CNT_FAULTS_INJECTED, 1);
    }

    /// Consult the plan for one fabric message on `from → to`.
    ///
    /// Advances the per-edge message count; a `Drop` clause beats a
    /// `Delay` clause matching the same message.
    pub fn on_message(&self, from: usize, to: usize) -> MessageAction {
        let Some(inner) = self.inner.as_deref() else {
            return MessageAction::Deliver;
        };
        let nth = {
            let mut counts = inner
                .edge_counts
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let slot = counts.entry((from, to)).or_insert(0);
            let nth = *slot;
            *slot += 1;
            nth
        };
        let mut delay = None;
        for fault in &inner.plan.faults {
            match *fault {
                Fault::DropMessage {
                    from: f,
                    to: t,
                    nth: n,
                } if f == from && t == to && n == nth => {
                    Self::fire(inner);
                    inner.rec.event(
                        names::EVT_MESSAGE_DROPPED,
                        &[
                            ("from", Value::from(from)),
                            ("to", Value::from(to)),
                            ("nth", Value::from(nth)),
                        ],
                    );
                    return MessageAction::Drop;
                }
                Fault::DelayMessage {
                    from: f,
                    to: t,
                    nth: n,
                    micros,
                } if f == from && t == to && n == nth && delay.is_none() => {
                    delay = Some(micros);
                }
                _ => {}
            }
        }
        match delay {
            Some(micros) => {
                Self::fire(inner);
                inner.rec.event(
                    names::EVT_MESSAGE_DELAYED,
                    &[
                        ("from", Value::from(from)),
                        ("to", Value::from(to)),
                        ("nth", Value::from(nth)),
                        ("us", Value::from(micros)),
                    ],
                );
                MessageAction::Delay(Duration::from_micros(micros))
            }
            None => MessageAction::Deliver,
        }
    }

    /// Consult the plan for one outgoing wire frame on `from → to`.
    ///
    /// `frame_len` is the full on-wire size (length prefix + frame).
    /// Advances the per-wire frame count — a count independent of the
    /// message-layer count in [`Self::on_message`]. A `trunc` clause
    /// beats a `cut` clause beats a `stall` clause matching the same
    /// frame; `cut` is truncation at half the frame.
    pub fn on_frame(&self, from: usize, to: usize, frame_len: usize) -> WireAction {
        let Some(inner) = self.inner.as_deref() else {
            return WireAction::Deliver;
        };
        let nth = {
            let mut counts = inner
                .wire_counts
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let slot = counts.entry((from, to)).or_insert(0);
            let nth = *slot;
            *slot += 1;
            nth
        };
        let mut stall = None;
        let mut cut = false;
        for fault in &inner.plan.faults {
            match *fault {
                Fault::TruncateFrame {
                    from: f,
                    to: t,
                    nth: n,
                    bytes,
                } if f == from && t == to && n == nth => {
                    Self::fire(inner);
                    inner.rec.event(
                        names::EVT_FRAME_TRUNCATED,
                        &[
                            ("from", Value::from(from)),
                            ("to", Value::from(to)),
                            ("nth", Value::from(nth)),
                            ("bytes", Value::from(bytes)),
                        ],
                    );
                    return WireAction::Truncate(bytes.min(frame_len.saturating_sub(1)));
                }
                Fault::CutFrame {
                    from: f,
                    to: t,
                    nth: n,
                } if f == from && t == to && n == nth => {
                    cut = true;
                }
                Fault::StallFrame {
                    from: f,
                    to: t,
                    nth: n,
                    micros,
                } if f == from && t == to && n == nth && stall.is_none() => {
                    stall = Some(micros);
                }
                _ => {}
            }
        }
        if cut {
            Self::fire(inner);
            inner.rec.event(
                names::EVT_FRAME_CUT,
                &[
                    ("from", Value::from(from)),
                    ("to", Value::from(to)),
                    ("nth", Value::from(nth)),
                ],
            );
            return WireAction::Truncate(frame_len / 2);
        }
        match stall {
            Some(micros) => {
                Self::fire(inner);
                inner.rec.event(
                    names::EVT_FRAME_STALLED,
                    &[
                        ("from", Value::from(from)),
                        ("to", Value::from(to)),
                        ("nth", Value::from(nth)),
                        ("us", Value::from(micros)),
                    ],
                );
                WireAction::Stall(Duration::from_micros(micros))
            }
            None => WireAction::Deliver,
        }
    }

    /// Consult the plan for one dial attempt on the transport connection
    /// `from → to`.
    ///
    /// Advances the per-connection attempt count; returns true while the
    /// attempt index is below a matching `refuse` clause's `attempts`,
    /// simulating `ECONNREFUSED` that clears after bounded retries.
    pub fn connect_refused(&self, from: usize, to: usize) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        let attempt = {
            let mut counts = inner
                .connect_counts
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let slot = counts.entry((from, to)).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        let refused = inner.plan.faults.iter().any(|f| {
            matches!(
                *f,
                Fault::ConnectRefused { from: f2, to: t, attempts }
                    if f2 == from && t == to && attempt < attempts
            )
        });
        if refused {
            Self::fire(inner);
            inner.rec.event(
                names::EVT_CONNECT_REFUSED,
                &[
                    ("from", Value::from(from)),
                    ("to", Value::from(to)),
                    ("attempt", Value::from(attempt)),
                ],
            );
        }
        refused
    }

    /// Should `rank` die at ring-round boundary `round`?
    pub fn should_crash_rank(&self, rank: usize, round: usize) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        let hit = inner.plan.faults.iter().any(
            |f| matches!(*f, Fault::CrashRank { rank: r, round: d } if r == rank && d == round),
        );
        if hit {
            Self::fire(inner);
            inner.rec.event(
                names::EVT_RANK_CRASH,
                &[("rank", Value::from(rank)), ("round", Value::from(round))],
            );
        }
        hit
    }

    /// Should the shared-memory pipeline die at chunk boundary `boundary`?
    pub fn should_crash_at_chunk(&self, boundary: usize) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        let hit = inner
            .plan
            .faults
            .iter()
            .any(|f| matches!(*f, Fault::CrashAtChunk { boundary: b } if b == boundary));
        if hit {
            Self::fire(inner);
            inner.rec.event(
                names::EVT_CHUNK_CRASH,
                &[("boundary", Value::from(boundary))],
            );
        }
        hit
    }

    /// Should the incremental-update driver die at update progress
    /// boundary `boundary`?
    pub fn should_crash_at_update_boundary(&self, boundary: usize) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        let hit = inner
            .plan
            .faults
            .iter()
            .any(|f| matches!(*f, Fault::UpdateCrash { boundary: b } if b == boundary));
        if hit {
            Self::fire(inner);
            inner.rec.event(
                names::EVT_UPDATE_CRASH,
                &[("boundary", Value::from(boundary))],
            );
        }
        hit
    }

    /// Consult the plan before performing a file operation of kind `op`.
    ///
    /// Advances the per-kind operation count; returns the injected error
    /// the caller must surface instead of performing the operation.
    pub fn on_io(&self, op: IoOp) -> Option<io::Error> {
        let inner = self.inner.as_deref()?;
        // ordering: independent stat counter; no cross-thread data dependency.
        let nth = inner.io_counts[op.index()].fetch_add(1, Ordering::Relaxed);
        let hit = inner
            .plan
            .faults
            .iter()
            .any(|f| matches!(*f, Fault::IoError { op: o, nth: n } if o == op && n == nth));
        if hit {
            Self::fire(inner);
            inner.rec.event(
                names::EVT_IO_ERROR,
                &[("op", Value::from(op.index())), ("nth", Value::from(nth))],
            );
            Some(io::Error::other(format!(
                "injected fault: {op:?} operation #{nth} failed"
            )))
        } else {
            None
        }
    }

    /// Offer one encoded checkpoint payload for corruption.
    ///
    /// Advances the write count and applies every matching bit flip in
    /// place. Returns true when at least one bit was flipped.
    pub fn corrupt_checkpoint(&self, bytes: &mut [u8]) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        // ordering: independent stat counter; no cross-thread data dependency.
        let write = inner.checkpoint_writes.fetch_add(1, Ordering::Relaxed);
        let mut flipped = false;
        for fault in &inner.plan.faults {
            if let Fault::FlipBit {
                write: w,
                byte,
                bit,
            } = *fault
            {
                if w == write && byte < bytes.len() {
                    bytes[byte] ^= 1 << bit;
                    flipped = true;
                    Self::fire(inner);
                    inner.rec.event(
                        names::EVT_BIT_FLIP,
                        &[
                            ("write", Value::from(write)),
                            ("byte", Value::from(byte)),
                            ("bit", Value::from(u64::from(bit))),
                        ],
                    );
                }
            }
        }
        flipped
    }

    /// The device-loss point, if the plan schedules one: the number of
    /// device tiles completed before the coprocessor dies.
    #[must_use]
    pub fn device_loss_tile(&self) -> Option<usize> {
        let inner = self.inner.as_deref()?;
        inner
            .plan
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::DeviceLoss { tile } => Some(tile),
                _ => None,
            })
            .min()
    }

    /// Record that a scheduled device loss actually applied at `tile`.
    pub fn note_device_loss(&self, tile: usize) {
        if let Some(inner) = self.inner.as_deref() {
            Self::fire(inner);
            inner
                .rec
                .event(names::EVT_DEVICE_LOSS, &[("tile", Value::from(tile))]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosSpace;

    #[test]
    fn disarmed_injector_is_inert() {
        let inj = FaultInjector::none();
        assert!(!inj.is_armed());
        assert_eq!(inj.on_message(0, 1), MessageAction::Deliver);
        assert!(!inj.should_crash_rank(1, 1));
        assert!(!inj.should_crash_at_chunk(0));
        assert!(inj.on_io(IoOp::Write).is_none());
        let mut buf = [0xffu8; 4];
        assert!(!inj.corrupt_checkpoint(&mut buf));
        assert_eq!(buf, [0xff; 4]);
        assert_eq!(inj.device_loss_tile(), None);
        assert_eq!(inj.faults_fired(), 0);
    }

    #[test]
    fn drop_fires_on_exact_edge_and_index() {
        let plan = FaultPlan::new(1).with(Fault::DropMessage {
            from: 0,
            to: 1,
            nth: 1,
        });
        let inj = FaultInjector::from_plan(&plan);
        assert_eq!(inj.on_message(0, 1), MessageAction::Deliver); // nth 0
        assert_eq!(inj.on_message(1, 0), MessageAction::Deliver); // other edge
        assert_eq!(inj.on_message(0, 1), MessageAction::Drop); // nth 1
        assert_eq!(inj.on_message(0, 1), MessageAction::Deliver); // nth 2
        assert_eq!(inj.faults_fired(), 1);
    }

    #[test]
    fn delay_yields_duration_and_drop_wins_over_delay() {
        let plan = FaultPlan::new(1)
            .with(Fault::DelayMessage {
                from: 2,
                to: 3,
                nth: 0,
                micros: 250,
            })
            .with(Fault::DropMessage {
                from: 2,
                to: 3,
                nth: 1,
            })
            .with(Fault::DelayMessage {
                from: 2,
                to: 3,
                nth: 1,
                micros: 9,
            });
        let inj = FaultInjector::from_plan(&plan);
        assert_eq!(
            inj.on_message(2, 3),
            MessageAction::Delay(Duration::from_micros(250))
        );
        assert_eq!(inj.on_message(2, 3), MessageAction::Drop);
    }

    #[test]
    fn crash_queries_match_rank_and_round() {
        let plan = FaultPlan::new(1)
            .with(Fault::CrashRank { rank: 2, round: 1 })
            .with(Fault::CrashAtChunk { boundary: 3 });
        let inj = FaultInjector::from_plan(&plan);
        assert!(!inj.should_crash_rank(2, 0));
        assert!(!inj.should_crash_rank(1, 1));
        assert!(inj.should_crash_rank(2, 1));
        assert!(!inj.should_crash_at_chunk(2));
        assert!(inj.should_crash_at_chunk(3));
    }

    #[test]
    fn io_error_fires_on_nth_operation_of_kind() {
        let plan = FaultPlan::new(1).with(Fault::IoError {
            op: IoOp::Rename,
            nth: 1,
        });
        let inj = FaultInjector::from_plan(&plan);
        assert!(inj.on_io(IoOp::Write).is_none()); // other kind
        assert!(inj.on_io(IoOp::Rename).is_none()); // nth 0
        let err = inj.on_io(IoOp::Rename); // nth 1
        assert!(err.is_some());
        assert!(err
            .map(|e| e.to_string())
            .is_some_and(|m| m.contains("injected fault")));
        assert!(inj.on_io(IoOp::Rename).is_none()); // nth 2
    }

    #[test]
    fn bit_flip_corrupts_exactly_the_named_bit() {
        let plan = FaultPlan::new(1).with(Fault::FlipBit {
            write: 1,
            byte: 2,
            bit: 4,
        });
        let inj = FaultInjector::from_plan(&plan);
        let mut first = [0u8; 4];
        assert!(!inj.corrupt_checkpoint(&mut first)); // write 0 untouched
        assert_eq!(first, [0; 4]);
        let mut second = [0u8; 4];
        assert!(inj.corrupt_checkpoint(&mut second)); // write 1 corrupted
        assert_eq!(second, [0, 0, 1 << 4, 0]);
    }

    #[test]
    fn disarmed_injector_ignores_wire_queries() {
        let inj = FaultInjector::none();
        assert_eq!(inj.on_frame(0, 1, 64), WireAction::Deliver);
        assert!(!inj.connect_refused(1, 0));
        assert_eq!(inj.faults_fired(), 0);
    }

    #[test]
    fn wire_faults_fire_on_exact_wire_and_index() {
        let plan = FaultPlan::new(1)
            .with(Fault::CutFrame {
                from: 0,
                to: 1,
                nth: 1,
            })
            .with(Fault::StallFrame {
                from: 0,
                to: 1,
                nth: 2,
                micros: 300,
            })
            .with(Fault::TruncateFrame {
                from: 2,
                to: 0,
                nth: 0,
                bytes: 3,
            });
        let inj = FaultInjector::from_plan(&plan);
        assert_eq!(inj.on_frame(0, 1, 40), WireAction::Deliver); // nth 0
        assert_eq!(inj.on_frame(1, 0, 40), WireAction::Deliver); // other wire
        assert_eq!(inj.on_frame(0, 1, 40), WireAction::Truncate(20)); // cut at half
        assert_eq!(
            inj.on_frame(0, 1, 40),
            WireAction::Stall(Duration::from_micros(300))
        );
        assert_eq!(inj.on_frame(2, 0, 40), WireAction::Truncate(3));
        assert_eq!(inj.faults_fired(), 3);
    }

    #[test]
    fn truncation_never_covers_the_whole_frame() {
        let plan = FaultPlan::new(1).with(Fault::TruncateFrame {
            from: 0,
            to: 1,
            nth: 0,
            bytes: 500,
        });
        let inj = FaultInjector::from_plan(&plan);
        // A trunc clause larger than the frame still severs it short, so
        // the peer always observes a torn frame rather than a clean one.
        assert_eq!(inj.on_frame(0, 1, 10), WireAction::Truncate(9));
    }

    #[test]
    fn wire_counts_are_independent_of_message_counts() {
        let plan = FaultPlan::new(1).with(Fault::CutFrame {
            from: 0,
            to: 1,
            nth: 0,
        });
        let inj = FaultInjector::from_plan(&plan);
        // Message-layer traffic must not consume the wire index.
        assert_eq!(inj.on_message(0, 1), MessageAction::Deliver);
        assert_eq!(inj.on_message(0, 1), MessageAction::Deliver);
        assert_eq!(inj.on_frame(0, 1, 8), WireAction::Truncate(4));
    }

    #[test]
    fn connect_refusal_clears_after_the_budgeted_attempts() {
        let plan = FaultPlan::new(1).with(Fault::ConnectRefused {
            from: 2,
            to: 0,
            attempts: 2,
        });
        let inj = FaultInjector::from_plan(&plan);
        assert!(!inj.connect_refused(1, 0)); // other connection
        assert!(inj.connect_refused(2, 0)); // attempt 0
        assert!(inj.connect_refused(2, 0)); // attempt 1
        assert!(!inj.connect_refused(2, 0)); // attempt 2 succeeds
        assert_eq!(inj.faults_fired(), 2);
    }

    #[test]
    fn fired_faults_are_recorded_in_the_trace() {
        let rec = Recorder::enabled();
        let plan = FaultPlan::new(1).with(Fault::DropMessage {
            from: 0,
            to: 1,
            nth: 0,
        });
        let inj = FaultInjector::from_plan_traced(&plan, &rec);
        assert_eq!(inj.on_message(0, 1), MessageAction::Drop);
        assert_eq!(rec.event_count(names::EVT_MESSAGE_DROPPED), 1);
        assert_eq!(rec.counter(names::CNT_FAULTS_INJECTED), Some(1));
    }

    #[test]
    fn randomized_plan_drives_injector_deterministically() {
        let space = ChaosSpace {
            ranks: 4,
            rounds: 2,
            chunk_boundaries: 4,
            checkpoint_bytes: 64,
            device_tiles: 8,
            transport: true,
        };
        let plan = FaultPlan::randomized(7, &space, 6);
        let a = FaultInjector::from_plan(&plan);
        let b = FaultInjector::from_plan(&plan);
        for from in 0..4 {
            for to in 0..4 {
                if from != to {
                    for _ in 0..4 {
                        assert_eq!(a.on_message(from, to), b.on_message(from, to));
                    }
                }
            }
        }
        assert_eq!(a.faults_fired(), b.faults_fired());
        assert_eq!(a.device_loss_tile(), b.device_loss_tile());
    }
}
