//! Fault plans: what to inject, rendered to a replayable plan string.
//!
//! Grammar (semicolon-separated, no whitespace significance):
//!
//! ```text
//! plan     := "seed=" u64 (";" fault)*
//! fault    := crash | chunk | update | drop | delay | io | flip | device
//!           | refuse | cut | stall | trunc
//! crash    := "crash(rank=" usize ",round=" usize ")"
//! chunk    := "chunk-crash(boundary=" usize ")"
//! update   := "update-crash(boundary=" usize ")"
//! drop     := "drop(from=" usize ",to=" usize ",nth=" u64 ")"
//! delay    := "delay(from=" usize ",to=" usize ",nth=" u64 ",us=" u64 ")"
//! io       := "io(op=" ("read"|"write"|"rename") ",nth=" u64 ")"
//! flip     := "flip(write=" u64 ",byte=" usize ",bit=" 0..=7 ")"
//! device   := "device(tile=" usize ")"
//! refuse   := "refuse(from=" usize ",to=" usize ",attempts=" u64 ")"
//! cut      := "cut(from=" usize ",to=" usize ",nth=" u64 ")"
//! stall    := "stall(from=" usize ",to=" usize ",nth=" u64 ",us=" u64 ")"
//! trunc    := "trunc(from=" usize ",to=" usize ",nth=" u64 ",bytes=" usize ")"
//! ```
//!
//! The last four clauses are *transport* (wire-level) faults, consulted
//! by real network transports only: `refuse` rejects the first
//! `attempts` dial attempts on a connection `from → to`, `cut` severs
//! the socket halfway through the `nth` frame, `stall` pauses mid-frame
//! for `us` microseconds, and `trunc` writes only `bytes` bytes of the
//! `nth` frame before severing. The in-process channel fabric never
//! consults them, so a wire-fault plan is a no-op there by construction.
//!
//! `Display` emits exactly this grammar, so `FaultPlan::parse(&p.to_string())`
//! round-trips every plan — the property the chaos CI job relies on to
//! replay failures from a single logged line.

use crate::rng::SplitMix64;
use std::fmt;
use std::str::FromStr;

/// Which file operation an injected I/O error targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Reading a checkpoint file back.
    Read,
    /// Writing the temporary checkpoint file.
    Write,
    /// Renaming the temporary file over the durable one.
    Rename,
}

impl IoOp {
    /// Stable index for per-op counters.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Read => 0,
            Self::Write => 1,
            Self::Rename => 2,
        }
    }

    fn token(self) -> &'static str {
        match self {
            Self::Read => "read",
            Self::Write => "write",
            Self::Rename => "rename",
        }
    }
}

/// One injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Rank `rank` dies at ring-round boundary `round` (0 = before its
    /// diagonal block, `r` = before sending in round `r`).
    CrashRank {
        /// Rank that dies. Rank 0 (the coordinator) is rejected by the
        /// distributed driver, mirroring MPI semantics where loss of the
        /// root is loss of the job.
        rank: usize,
        /// Ring-round boundary at which the rank stops executing.
        round: usize,
    },
    /// The shared-memory pipeline is killed at checkpoint chunk boundary
    /// `boundary` (0-based count of completed chunks), after the durable
    /// checkpoint for that boundary has been written.
    CrashAtChunk {
        /// Chunk boundary (0-based) at which the process dies.
        boundary: usize,
    },
    /// The incremental-update driver (`gnet update`) is killed at update
    /// progress boundary `boundary` (0-based count of completed pair
    /// chunks), after the durable progress file for that boundary has been
    /// written. Kept separate from [`Self::CrashAtChunk`] so one plan can
    /// target the batch pipeline and the update driver independently.
    UpdateCrash {
        /// Update progress boundary (0-based) at which the process dies.
        boundary: usize,
    },
    /// Silently drop the `nth` (0-based) fabric message on `from → to`.
    DropMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 0-based message index on this directed edge.
        nth: u64,
    },
    /// Delay the `nth` message on `from → to` by `micros` microseconds.
    DelayMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 0-based message index on this directed edge.
        nth: u64,
        /// Injected latency in microseconds.
        micros: u64,
    },
    /// Fail the `nth` (0-based) file operation of kind `op`.
    IoError {
        /// Targeted operation kind.
        op: IoOp,
        /// 0-based count of operations of that kind.
        nth: u64,
    },
    /// Flip `bit` of `byte` in the payload of the `nth` checkpoint write,
    /// simulating a torn write / silent media corruption.
    FlipBit {
        /// 0-based checkpoint write index.
        write: u64,
        /// Byte offset within the encoded payload.
        byte: usize,
        /// Bit position within the byte (0–7).
        bit: u8,
    },
    /// The offload device dies after completing `tile` device tiles.
    DeviceLoss {
        /// Number of device tiles completed before the loss.
        tile: usize,
    },
    /// Refuse the first `attempts` dial attempts on the transport
    /// connection `from → to` (the dialer sees `ECONNREFUSED` and must
    /// retry with backoff).
    ConnectRefused {
        /// Dialing rank.
        from: usize,
        /// Listening rank.
        to: usize,
        /// Number of initial dial attempts to reject.
        attempts: u64,
    },
    /// Sever the wire halfway through the `nth` (0-based) frame written
    /// on `from → to`: the peer receives a partial frame then EOF.
    CutFrame {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 0-based frame index on this directed wire.
        nth: u64,
    },
    /// Pause mid-frame for `micros` microseconds while writing the
    /// `nth` frame on `from → to` (a write stall the reader observes as
    /// a slow partial read).
    StallFrame {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 0-based frame index on this directed wire.
        nth: u64,
        /// Stall duration in microseconds.
        micros: u64,
    },
    /// Write only the first `bytes` bytes of the `nth` frame on
    /// `from → to`, then sever the wire (a torn write).
    TruncateFrame {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 0-based frame index on this directed wire.
        nth: u64,
        /// Bytes of the frame actually written before the cut.
        bytes: usize,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::CrashRank { rank, round } => write!(f, "crash(rank={rank},round={round})"),
            Self::CrashAtChunk { boundary } => write!(f, "chunk-crash(boundary={boundary})"),
            Self::UpdateCrash { boundary } => write!(f, "update-crash(boundary={boundary})"),
            Self::DropMessage { from, to, nth } => write!(f, "drop(from={from},to={to},nth={nth})"),
            Self::DelayMessage {
                from,
                to,
                nth,
                micros,
            } => write!(f, "delay(from={from},to={to},nth={nth},us={micros})"),
            Self::IoError { op, nth } => write!(f, "io(op={},nth={nth})", op.token()),
            Self::FlipBit { write, byte, bit } => {
                write!(f, "flip(write={write},byte={byte},bit={bit})")
            }
            Self::DeviceLoss { tile } => write!(f, "device(tile={tile})"),
            Self::ConnectRefused { from, to, attempts } => {
                write!(f, "refuse(from={from},to={to},attempts={attempts})")
            }
            Self::CutFrame { from, to, nth } => write!(f, "cut(from={from},to={to},nth={nth})"),
            Self::StallFrame {
                from,
                to,
                nth,
                micros,
            } => write!(f, "stall(from={from},to={to},nth={nth},us={micros})"),
            Self::TruncateFrame {
                from,
                to,
                nth,
                bytes,
            } => write!(f, "trunc(from={from},to={to},nth={nth},bytes={bytes})"),
        }
    }
}

/// Error from [`FaultPlan::parse`]: what was malformed and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending clause (or the whole input for structural errors).
    pub clause: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault plan clause `{}`: {}",
            self.clause, self.message
        )
    }
}

impl std::error::Error for PlanParseError {}

fn clause_err(clause: &str, message: impl Into<String>) -> PlanParseError {
    PlanParseError {
        clause: clause.to_string(),
        message: message.into(),
    }
}

/// A seeded, ordered list of faults to inject — the unit of replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (recorded for provenance; randomized
    /// plans with the same seed and space are identical).
    pub seed: u64,
    /// Faults to inject, in declaration order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan carrying only a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder-style: append one fault.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse a plan string produced by `Display` (grammar in the module
    /// docs).
    ///
    /// # Errors
    /// Returns a [`PlanParseError`] naming the malformed clause.
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let text = text.trim();
        let mut clauses = text.split(';');
        let seed_clause = clauses
            .next()
            .ok_or_else(|| clause_err(text, "empty plan"))?
            .trim();
        let seed = seed_clause
            .strip_prefix("seed=")
            .ok_or_else(|| clause_err(seed_clause, "plan must start with `seed=<u64>`"))?;
        let seed = u64::from_str(seed)
            .map_err(|_| clause_err(seed_clause, "seed is not an unsigned integer"))?;
        let mut plan = Self::new(seed);
        for clause in clauses {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            plan.faults.push(parse_fault(clause)?);
        }
        Ok(plan)
    }

    /// Derive a plan of `count` faults from `seed`, choosing kinds and
    /// parameters with SplitMix64 over the dimensions `space` declares.
    ///
    /// Identical `(seed, space, count)` always yields an identical plan,
    /// and the plan string round-trips, so any chaos failure is fully
    /// described by the seed that produced it. Rank crashes never target
    /// rank 0 (the coordinator).
    #[must_use]
    pub fn randomized(seed: u64, space: &ChaosSpace, count: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::new(seed);
        // Build the menu of kinds the space allows, in fixed order so the
        // draw sequence is stable.
        let mut kinds: Vec<u8> = Vec::new();
        if space.ranks > 1 && space.rounds > 0 {
            kinds.push(0); // crash
            kinds.push(2); // drop
            kinds.push(3); // delay
        }
        if space.chunk_boundaries > 0 {
            kinds.push(1); // chunk-crash
        }
        kinds.push(4); // io error (always meaningful for a store)
        if space.checkpoint_bytes > 0 {
            kinds.push(5); // flip
        }
        if space.device_tiles > 0 {
            kinds.push(6); // device loss
        }
        if space.transport && space.ranks > 1 {
            kinds.push(7); // connect refused
            kinds.push(8); // mid-frame cut
            kinds.push(9); // mid-frame stall
            kinds.push(10); // truncated write
        }
        for _ in 0..count {
            let kind = kinds[rng.below(kinds.len() as u64) as usize];
            let fault = match kind {
                0 => Fault::CrashRank {
                    // cast-ok: below(ranks-1) fits usize on every target.
                    rank: 1 + rng.below(space.ranks as u64 - 1) as usize,
                    round: rounds_draw(&mut rng, space.rounds),
                },
                1 => Fault::CrashAtChunk {
                    // cast-ok: bounded by chunk_boundaries, a usize.
                    boundary: rng.below(space.chunk_boundaries as u64) as usize,
                },
                2 | 3 => {
                    // cast-ok: both bounded by ranks, a usize.
                    let from = rng.below(space.ranks as u64) as usize;
                    let mut to = rng.below(space.ranks as u64) as usize;
                    if to == from {
                        to = (to + 1) % space.ranks;
                    }
                    let nth = rng.below(4);
                    if kind == 2 {
                        Fault::DropMessage { from, to, nth }
                    } else {
                        Fault::DelayMessage {
                            from,
                            to,
                            nth,
                            micros: 100 + rng.below(5_000),
                        }
                    }
                }
                4 => Fault::IoError {
                    op: match rng.below(3) {
                        0 => IoOp::Read,
                        1 => IoOp::Write,
                        _ => IoOp::Rename,
                    },
                    nth: rng.below(3),
                },
                5 => Fault::FlipBit {
                    write: rng.below(space.chunk_boundaries.max(1) as u64),
                    // cast-ok: bounded by checkpoint_bytes, a usize.
                    byte: rng.below(space.checkpoint_bytes as u64) as usize,
                    // cast-ok: below(8) fits u8.
                    bit: rng.below(8) as u8,
                },
                6 => Fault::DeviceLoss {
                    // cast-ok: bounded by device_tiles, a usize.
                    tile: rng.below(space.device_tiles as u64) as usize,
                },
                _ => {
                    // cast-ok: both bounded by ranks, a usize.
                    let from = rng.below(space.ranks as u64) as usize;
                    let mut to = rng.below(space.ranks as u64) as usize;
                    if to == from {
                        to = (to + 1) % space.ranks;
                    }
                    match kind {
                        7 => Fault::ConnectRefused {
                            from,
                            to,
                            attempts: 1 + rng.below(3),
                        },
                        8 => Fault::CutFrame {
                            from,
                            to,
                            nth: rng.below(4),
                        },
                        9 => Fault::StallFrame {
                            from,
                            to,
                            nth: rng.below(4),
                            micros: 100 + rng.below(5_000),
                        },
                        _ => Fault::TruncateFrame {
                            from,
                            to,
                            nth: rng.below(4),
                            // cast-ok: below(8) fits usize; 1..=8 bytes
                            // always lands inside the 5-byte frame header
                            // plus payload.
                            bytes: 1 + rng.below(8) as usize,
                        },
                    }
                }
            };
            plan.faults.push(fault);
        }
        plan
    }
}

// Helper keeping the match arm above readable: a crash round in
// `0..=rounds` (boundary 0 = before the diagonal).
fn rounds_draw(rng: &mut SplitMix64, rounds: usize) -> usize {
    // cast-ok: bounded by rounds+1, a usize.
    rng.below(rounds as u64 + 1) as usize
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for fault in &self.faults {
            write!(f, ";{fault}")?;
        }
        Ok(())
    }
}

/// The dimensions a randomized plan may draw faults from.
///
/// A zeroed dimension removes the corresponding fault kinds from the
/// menu, so e.g. a pure shared-memory chaos run sets `ranks: 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSpace {
    /// Fabric size; rank crashes target `1..ranks`.
    pub ranks: usize,
    /// Ring rounds per run (`⌊ranks/2⌋` for the rotation driver).
    pub rounds: usize,
    /// Checkpoint chunk boundaries a run crosses.
    pub chunk_boundaries: usize,
    /// Encoded checkpoint payload size, for bit flips.
    pub checkpoint_bytes: usize,
    /// Device tiles in an offload split, for device-loss faults.
    pub device_tiles: usize,
    /// Whether the run uses a real wire transport (TCP): enables the
    /// `refuse`/`cut`/`stall`/`trunc` kinds. Off by default so channel
    /// chaos runs keep their historical draw sequences.
    pub transport: bool,
}

fn parse_fault(clause: &str) -> Result<Fault, PlanParseError> {
    let open = clause
        .find('(')
        .ok_or_else(|| clause_err(clause, "missing `(`"))?;
    let close = clause
        .strip_suffix(')')
        .ok_or_else(|| clause_err(clause, "missing trailing `)`"))?;
    let head = &clause[..open];
    let body = &close[open + 1..];
    let mut fields = FieldCursor::new(clause, body);
    let fault = match head {
        "crash" => Fault::CrashRank {
            rank: fields.take("rank")?,
            round: fields.take("round")?,
        },
        "chunk-crash" => Fault::CrashAtChunk {
            boundary: fields.take("boundary")?,
        },
        // Not in the randomized menu: adding it there would shift the
        // historical draw sequences replayed from logged plan strings
        // (same reasoning as the transport gating below).
        "update-crash" => Fault::UpdateCrash {
            boundary: fields.take("boundary")?,
        },
        "drop" => Fault::DropMessage {
            from: fields.take("from")?,
            to: fields.take("to")?,
            nth: fields.take("nth")?,
        },
        "delay" => Fault::DelayMessage {
            from: fields.take("from")?,
            to: fields.take("to")?,
            nth: fields.take("nth")?,
            micros: fields.take("us")?,
        },
        "io" => {
            let op = match fields.take_str("op")? {
                "read" => IoOp::Read,
                "write" => IoOp::Write,
                "rename" => IoOp::Rename,
                other => {
                    return Err(clause_err(
                        clause,
                        format!("unknown io op `{other}` (read|write|rename)"),
                    ))
                }
            };
            Fault::IoError {
                op,
                nth: fields.take("nth")?,
            }
        }
        "flip" => {
            let fault = Fault::FlipBit {
                write: fields.take("write")?,
                byte: fields.take("byte")?,
                bit: fields.take("bit")?,
            };
            if let Fault::FlipBit { bit, .. } = fault {
                if bit > 7 {
                    return Err(clause_err(clause, "bit must be 0..=7"));
                }
            }
            fault
        }
        "device" => Fault::DeviceLoss {
            tile: fields.take("tile")?,
        },
        "refuse" => Fault::ConnectRefused {
            from: fields.take("from")?,
            to: fields.take("to")?,
            attempts: fields.take("attempts")?,
        },
        "cut" => Fault::CutFrame {
            from: fields.take("from")?,
            to: fields.take("to")?,
            nth: fields.take("nth")?,
        },
        "stall" => Fault::StallFrame {
            from: fields.take("from")?,
            to: fields.take("to")?,
            nth: fields.take("nth")?,
            micros: fields.take("us")?,
        },
        "trunc" => Fault::TruncateFrame {
            from: fields.take("from")?,
            to: fields.take("to")?,
            nth: fields.take("nth")?,
            bytes: fields.take("bytes")?,
        },
        other => return Err(clause_err(clause, format!("unknown fault kind `{other}`"))),
    };
    fields.finish()?;
    Ok(fault)
}

/// Sequential `key=value` field reader over a clause body.
struct FieldCursor<'a> {
    clause: &'a str,
    fields: std::str::Split<'a, char>,
}

impl<'a> FieldCursor<'a> {
    fn new(clause: &'a str, body: &'a str) -> Self {
        Self {
            clause,
            fields: body.split(','),
        }
    }

    fn take_str(&mut self, key: &str) -> Result<&'a str, PlanParseError> {
        let field = self
            .fields
            .next()
            .ok_or_else(|| clause_err(self.clause, format!("missing field `{key}`")))?;
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| clause_err(self.clause, format!("field `{field}` is not key=value")))?;
        if k != key {
            return Err(clause_err(
                self.clause,
                format!("expected field `{key}`, found `{k}`"),
            ));
        }
        Ok(v)
    }

    fn take<T: FromStr>(&mut self, key: &str) -> Result<T, PlanParseError> {
        let v = self.take_str(key)?;
        v.parse::<T>()
            .map_err(|_| clause_err(self.clause, format!("field `{key}`: bad number `{v}`")))
    }

    fn finish(mut self) -> Result<(), PlanParseError> {
        if let Some(extra) = self.fields.next() {
            if !extra.is_empty() {
                return Err(clause_err(
                    self.clause,
                    format!("unexpected trailing field `{extra}`"),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_crash_round_trips_and_is_distinct_from_chunk_crash() {
        let plan = FaultPlan::new(7)
            .with(Fault::UpdateCrash { boundary: 2 })
            .with(Fault::CrashAtChunk { boundary: 2 });
        let text = plan.to_string();
        assert_eq!(
            text,
            "seed=7;update-crash(boundary=2);chunk-crash(boundary=2)"
        );
        assert_eq!(FaultPlan::parse(&text).expect("round trip"), plan);
    }

    fn sample_plan() -> FaultPlan {
        FaultPlan::new(42)
            .with(Fault::CrashRank { rank: 2, round: 1 })
            .with(Fault::CrashAtChunk { boundary: 3 })
            .with(Fault::DropMessage {
                from: 0,
                to: 1,
                nth: 2,
            })
            .with(Fault::DelayMessage {
                from: 3,
                to: 0,
                nth: 0,
                micros: 1500,
            })
            .with(Fault::IoError {
                op: IoOp::Rename,
                nth: 1,
            })
            .with(Fault::FlipBit {
                write: 0,
                byte: 17,
                bit: 3,
            })
            .with(Fault::DeviceLoss { tile: 5 })
            .with(Fault::ConnectRefused {
                from: 2,
                to: 0,
                attempts: 3,
            })
            .with(Fault::CutFrame {
                from: 1,
                to: 2,
                nth: 4,
            })
            .with(Fault::StallFrame {
                from: 0,
                to: 3,
                nth: 1,
                micros: 2500,
            })
            .with(Fault::TruncateFrame {
                from: 3,
                to: 1,
                nth: 0,
                bytes: 7,
            })
    }

    #[test]
    fn display_parse_round_trip() {
        let plan = sample_plan();
        let text = plan.to_string();
        assert_eq!(FaultPlan::parse(&text), Ok(plan));
    }

    #[test]
    fn rendered_text_is_the_documented_grammar() {
        let text = sample_plan().to_string();
        assert_eq!(
            text,
            "seed=42;crash(rank=2,round=1);chunk-crash(boundary=3);\
             drop(from=0,to=1,nth=2);delay(from=3,to=0,nth=0,us=1500);\
             io(op=rename,nth=1);flip(write=0,byte=17,bit=3);device(tile=5);\
             refuse(from=2,to=0,attempts=3);cut(from=1,to=2,nth=4);\
             stall(from=0,to=3,nth=1,us=2500);trunc(from=3,to=1,nth=0,bytes=7)"
        );
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "",
            "crash(rank=1,round=0)",                   // missing seed
            "seed=x",                                  // non-numeric seed
            "seed=1;crash(rank=1)",                    // missing field
            "seed=1;crash(round=1,rank=1)",            // wrong field order
            "seed=1;crash(rank=1,round=2,extra=3)",    // trailing field
            "seed=1;warp(speed=9)",                    // unknown kind
            "seed=1;flip(write=0,byte=0,bit=9)",       // bit out of range
            "seed=1;io(op=truncate,nth=0)",            // unknown io op
            "seed=1;drop(from=0,to=1,nth=oops)",       // bad number
            "seed=1;crash rank=1,round=2)",            // missing paren
            "seed=1;refuse(from=0,to=1)",              // missing attempts
            "seed=1;cut(from=0,nth=1)",                // missing to
            "seed=1;stall(from=0,to=1,nth=0)",         // missing us
            "seed=1;trunc(from=0,to=1,nth=0,bytes=x)", // bad number
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn randomized_is_deterministic_and_round_trips() {
        let space = ChaosSpace {
            ranks: 4,
            rounds: 2,
            chunk_boundaries: 8,
            checkpoint_bytes: 256,
            device_tiles: 10,
            transport: true,
        };
        let a = FaultPlan::randomized(99, &space, 12);
        let b = FaultPlan::randomized(99, &space, 12);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 12);
        assert_eq!(FaultPlan::parse(&a.to_string()), Ok(a.clone()));
        // A different seed gives a different plan.
        assert_ne!(FaultPlan::randomized(100, &space, 12), a);
    }

    #[test]
    fn randomized_never_crashes_the_coordinator() {
        let space = ChaosSpace {
            ranks: 4,
            rounds: 2,
            ..ChaosSpace::default()
        };
        for seed in 0..64 {
            let plan = FaultPlan::randomized(seed, &space, 8);
            for fault in &plan.faults {
                if let Fault::CrashRank { rank, .. } = fault {
                    assert_ne!(*rank, 0, "seed {seed} crashed rank 0");
                }
            }
        }
    }

    #[test]
    fn transport_kinds_are_gated_on_the_transport_dimension() {
        let wired = ChaosSpace {
            ranks: 4,
            rounds: 2,
            transport: true,
            ..ChaosSpace::default()
        };
        let channel_only = ChaosSpace {
            transport: false,
            ..wired
        };
        let is_wire = |f: &Fault| {
            matches!(
                f,
                Fault::ConnectRefused { .. }
                    | Fault::CutFrame { .. }
                    | Fault::StallFrame { .. }
                    | Fault::TruncateFrame { .. }
            )
        };
        let mut saw_wire = false;
        for seed in 0..32 {
            saw_wire |= FaultPlan::randomized(seed, &wired, 8)
                .faults
                .iter()
                .any(is_wire);
            assert!(
                !FaultPlan::randomized(seed, &channel_only, 8)
                    .faults
                    .iter()
                    .any(is_wire),
                "seed {seed} drew a wire fault without transport"
            );
        }
        assert!(saw_wire, "no wire fault drawn across 32 seeds");
    }

    #[test]
    fn empty_space_still_offers_io_faults() {
        let plan = FaultPlan::randomized(5, &ChaosSpace::default(), 4);
        assert!(plan
            .faults
            .iter()
            .all(|f| matches!(f, Fault::IoError { .. })));
    }
}
