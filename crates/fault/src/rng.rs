//! SplitMix64 — the workspace's standard seeding generator.
//!
//! The same mixer drives permutation-table seeding in `gnet-core`; it is
//! duplicated here (rather than exported from core) because `gnet-fault`
//! sits *below* core in the dependency graph. The algorithm is fixed by
//! Steele et al. (2014), so both copies produce identical streams.

/// SplitMix64 PRNG: one `u64` of state, full-period, splittable-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Seed the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` via rejection sampling (no modulo bias).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-empty range");
        // Rejection zone: the largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let draw = self.next_u64();
            if draw < zone {
                return draw % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1 << 40] {
            for _ in 0..32 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn matches_reference_vector() {
        // First outputs for seed 0 from the published SplitMix64 reference.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }
}
