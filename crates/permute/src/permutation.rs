//! Seeded permutation generation (Fisher–Yates) and the shared set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Draw a uniform random permutation of `0..m` with Fisher–Yates.
pub fn fisher_yates(m: usize, rng: &mut StdRng) -> Vec<u32> {
    let m32 = u32::try_from(m).expect("sample count fits the u32 permutation domain");
    let mut p: Vec<u32> = (0..m32).collect();
    // Classic downward Fisher–Yates: swap i with a uniform j ≤ i.
    for i in (1..m).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// Check that `p` is a bijection of `0..m`.
pub fn is_permutation(p: &[u32]) -> bool {
    let m = p.len();
    let mut seen = vec![false; m];
    for &v in p {
        let v = v as usize;
        if v >= m || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    true
}

/// The shared set of `q` permutations of the sample index space, drawn once
/// from a seed and reused for every gene pair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermutationSet {
    samples: usize,
    seed: u64,
    perms: Vec<Vec<u32>>,
}

impl PermutationSet {
    /// Draw `q` permutations of `0..samples` from `seed`.
    ///
    /// ```
    /// use gnet_permute::PermutationSet;
    /// let set = PermutationSet::generate(100, 30, 42);
    /// assert_eq!(set.len(), 30);
    /// assert_eq!(set.get(0).len(), 100);
    /// // Deterministic per seed:
    /// assert_eq!(set, PermutationSet::generate(100, 30, 42));
    /// ```
    ///
    /// Identity permutations are rejected and redrawn (they would make the
    /// observed value one of its own nulls); for `samples < 2` no
    /// non-identity permutation exists, so `q` must then be zero.
    ///
    /// # Panics
    /// Panics if `samples < 2` while `q > 0`.
    pub fn generate(samples: usize, q: usize, seed: u64) -> Self {
        assert!(
            q == 0 || samples >= 2,
            "cannot draw non-identity permutations of fewer than 2 samples"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perms = Vec::with_capacity(q);
        while perms.len() < q {
            let p = fisher_yates(samples, &mut rng);
            let identity = p.iter().enumerate().all(|(i, &v)| v as usize == i);
            if !identity {
                perms.push(p);
            }
        }
        Self {
            samples,
            seed,
            perms,
        }
    }

    /// Number of permutations `q`.
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// True when `q == 0` (permutation testing disabled).
    pub fn is_empty(&self) -> bool {
        self.perms.is_empty()
    }

    /// Sample-space size `m` the permutations act on.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Seed the set was drawn from (recorded for reproducibility).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Permutation `i`.
    pub fn get(&self, i: usize) -> &[u32] {
        &self.perms[i]
    }

    /// All permutations, in draw order — the shape `mi_with_nulls` expects.
    pub fn as_vecs(&self) -> &[Vec<u32>] {
        &self.perms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fisher_yates_produces_bijections() {
        let mut rng = StdRng::seed_from_u64(1);
        for m in [1usize, 2, 3, 10, 257] {
            let p = fisher_yates(m, &mut rng);
            assert_eq!(p.len(), m);
            assert!(is_permutation(&p));
        }
    }

    #[test]
    fn fisher_yates_is_roughly_uniform() {
        // Over many draws of permutations of 3, each of the 6 arrangements
        // should appear ≈ 1/6 of the time.
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        let draws = 6000;
        for _ in 0..draws {
            let p = fisher_yates(3, &mut rng);
            *counts.entry(p).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 6, "all 6 permutations must occur");
        for (p, &c) in &counts {
            let freq = c as f64 / draws as f64;
            assert!(
                (freq - 1.0 / 6.0).abs() < 0.03,
                "permutation {p:?} frequency {freq}"
            );
        }
    }

    #[test]
    fn is_permutation_rejects_invalid() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(is_permutation(&[]));
        assert!(!is_permutation(&[0, 0, 2]), "duplicate");
        assert!(!is_permutation(&[0, 3, 1]), "out of range");
    }

    #[test]
    fn set_is_deterministic_per_seed() {
        let a = PermutationSet::generate(50, 10, 42);
        let b = PermutationSet::generate(50, 10, 42);
        let c = PermutationSet::generate(50, 10, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10);
        assert_eq!(a.samples(), 50);
        assert_eq!(a.seed(), 42);
    }

    #[test]
    fn set_contains_no_identity() {
        // With m = 2 half of all draws are the identity, so rejection is
        // exercised hard here.
        let set = PermutationSet::generate(2, 20, 3);
        for i in 0..set.len() {
            assert_eq!(set.get(i), &[1, 0], "only non-identity permutation of 2");
        }
    }

    #[test]
    fn empty_set_is_allowed() {
        let set = PermutationSet::generate(10, 0, 1);
        assert!(set.is_empty());
        let degenerate = PermutationSet::generate(1, 0, 1);
        assert!(degenerate.is_empty());
    }

    #[test]
    #[should_panic(expected = "fewer than 2 samples")]
    fn tiny_sample_space_with_q_panics() {
        let _ = PermutationSet::generate(1, 5, 1);
    }

    proptest! {
        #[test]
        fn prop_generated_sets_are_bijections(m in 2usize..100, q in 1usize..20, seed: u64) {
            let set = PermutationSet::generate(m, q, seed);
            prop_assert_eq!(set.len(), q);
            for i in 0..q {
                prop_assert!(is_permutation(set.get(i)));
            }
        }
    }
}
