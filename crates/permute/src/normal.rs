//! Standard-normal distribution helpers (no external stats dependency).
//!
//! The pooled-null global threshold needs `Φ⁻¹` for Bonferroni-corrected
//! tail quantiles like `1 − α / 10⁸`, i.e. very deep in the upper tail, so
//! the implementation must stay accurate for p near 0 and 1. We use
//! Acklam's rational approximation (relative error < 1.15e-9 over the open
//! unit interval), which is the standard choice for exactly this use case.

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn inverse_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile is only defined on (0, 1), got {p}"
    );

    // Coefficients of Acklam's approximation, kept digit-for-digit as
    // published (one has a trailing zero clippy reads as excess precision).
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley refinement tightens the tails further.
    let e = cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// CDF of the standard normal distribution via the complementary error
/// function (Abramowitz–Stegun 7.1.26 style rational approximation refined
/// for double precision).
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function, double-precision rational approximation
/// (max error ≈ 1.2e-7 absolute — ample for threshold work and the Halley
/// corrector above).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quantiles() {
        // Reference values from standard normal tables.
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959963984540054),
            (0.995, 2.575829303548901),
            (0.9999, 3.719016485455709),
            (0.025, -1.959963984540054),
            (1e-8, -5.612001244174789),
        ];
        for (p, z) in cases {
            let got = inverse_cdf(p);
            assert!((got - z).abs() < 1e-5, "Φ⁻¹({p}) = {got}, want {z}");
        }
    }

    #[test]
    fn cdf_matches_known_values() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((cdf(-1.96) - 0.025).abs() < 1e-4);
        assert!(cdf(8.0) > 1.0 - 1e-14);
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let back = cdf(inverse_cdf(p));
            assert!((back - p).abs() < 1e-7, "p={p} roundtrip {back}");
        }
    }

    #[test]
    fn deep_tail_quantiles_are_monotone_and_finite() {
        // Bonferroni over 1.2e8 pairs at α = 0.05 needs p ≈ 1 − 4e-10.
        let mut prev = 0.0;
        for exp in 2..12 {
            let p = 1.0 - 10f64.powi(-exp);
            let z = inverse_cdf(p);
            assert!(z.is_finite());
            assert!(z > prev, "quantiles must increase into the tail");
            prev = z;
        }
        assert!(
            prev > 6.0,
            "1 − 1e-11 quantile should exceed 6σ, got {prev}"
        );
    }

    #[test]
    #[should_panic(expected = "only defined on (0, 1)")]
    fn quantile_domain_enforced() {
        let _ = inverse_cdf(1.0);
    }

    #[test]
    fn erfc_symmetry() {
        for x in [-2.0, -0.5, 0.0, 0.3, 1.7] {
            let s = erfc(x) + erfc(-x);
            assert!((s - 2.0).abs() < 1e-7, "erfc({x}) symmetry violated: {s}");
        }
    }
}
