//! Permutation testing for MI-network significance, TINGe style.
//!
//! TINGe assesses whether an observed mutual-information value could have
//! arisen by chance by comparing it against the MI of the same pair after
//! randomly permuting one gene's samples. Its two structural decisions —
//! both reproduced here — are what make the test affordable at
//! whole-genome scale:
//!
//! 1. **Shared permutations.** One fixed set of `q` permutations is drawn
//!    up front and reused for *every* pair ([`PermutationSet`]). The test
//!    stays exact per pair (any fixed permutation of an exchangeable null
//!    is valid), while the permuted weight matrices become reusable,
//!    batchable inputs for the vector kernel.
//! 2. **Pooled global threshold.** Per-pair exceedance alone cannot reach
//!    family-wise significance over `n(n−1)/2 ≈ 10⁸` tests with feasible
//!    `q`. TINGe therefore pools all `q · pairs` null MI values, models the
//!    pooled null, and derives one corrected threshold `I*`
//!    ([`PooledNull::global_threshold`]); an edge must beat its own `q`
//!    nulls *and* `I*`.

#![warn(missing_docs)]

pub mod normal;
pub mod permutation;
pub mod significance;

pub use permutation::PermutationSet;
pub use significance::{empirical_p_value, EdgeTest, PooledNull};
