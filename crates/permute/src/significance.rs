//! Edge significance: per-pair exceedance plus the pooled global threshold.

use crate::normal::inverse_cdf;
use serde::{Deserialize, Serialize};

/// Empirical permutation p-value with the add-one correction:
/// `(1 + #{null ≥ observed}) / (q + 1)`. Ties count against the observed
/// value (conservative), and `q = 0` yields the uninformative `p = 1`.
pub fn empirical_p_value(observed: f64, null: &[f64]) -> f64 {
    let exceed = null.iter().filter(|&&v| v >= observed).count();
    (1 + exceed) as f64 / (1 + null.len()) as f64
}

/// Streaming, mergeable accumulator over the pooled null distribution
/// (every null MI value of every pair). Uses Welford/Chan so per-thread
/// accumulators merge exactly, keeping the pipeline's result independent
/// of the scheduling policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PooledNull {
    count: u64,
    mean: f64,
    m2: f64,
    max: f64,
}

impl PooledNull {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one null MI value.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.max = self.max.max(value);
    }

    /// Fold in a batch of null values.
    pub fn extend(&mut self, values: &[f64]) {
        for &v in values {
            self.push(v);
        }
    }

    /// Merge another accumulator (Chan's parallel combination).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Number of values folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the pooled null.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n − 1 denominator) of the pooled null.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation of the pooled null.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Largest null value observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Raw moments `(count, mean, m2, max)` — for wire transfer between
    /// processes/ranks. Inverse of [`Self::from_raw_parts`].
    pub fn raw_parts(&self) -> (u64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.max)
    }

    /// Reassemble from raw moments produced by [`Self::raw_parts`].
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, max: f64) -> Self {
        Self {
            count,
            mean,
            m2,
            max,
        }
    }

    /// The TINGe-style family-wise threshold `I*`: the Bonferroni-corrected
    /// upper quantile of a normal fitted to the pooled null,
    /// `I* = μ + Φ⁻¹(1 − α/tests) · σ`.
    ///
    /// # Panics
    /// Panics if `alpha ∉ (0, 1)`, `tests == 0`, or fewer than two null
    /// values were pooled.
    pub fn global_threshold(&self, alpha: f64, tests: u64) -> f64 {
        assert!(
            (f64::MIN_POSITIVE..1.0).contains(&alpha),
            "alpha must lie in (0, 1)"
        );
        assert!(tests > 0, "must correct over at least one test");
        assert!(self.count >= 2, "need at least two pooled null values");
        let corrected = (alpha / tests as f64).max(f64::MIN_POSITIVE);
        let z = inverse_cdf(1.0 - corrected);
        self.mean + z * self.std_dev()
    }
}

/// The complete TINGe edge criterion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeTest {
    /// Family-wise significance level α (e.g. 0.01).
    pub alpha: f64,
    /// Total number of pair tests for the multiple-testing correction
    /// (usually `n(n−1)/2`).
    pub tests: u64,
    /// Pooled-null threshold `I*` (nats), computed once after the MI pass.
    pub threshold: f64,
}

impl EdgeTest {
    /// Build the test from a finished pooled-null accumulator.
    pub fn from_pooled(pooled: &PooledNull, alpha: f64, tests: u64) -> Self {
        Self {
            alpha,
            tests,
            threshold: pooled.global_threshold(alpha, tests),
        }
    }

    /// A test with an explicit MI threshold and no permutation component —
    /// the "fixed threshold" mode used for kernel benchmarks where
    /// statistics are irrelevant.
    pub fn fixed(threshold: f64) -> Self {
        Self {
            alpha: 1.0 - f64::EPSILON,
            tests: 1,
            threshold,
        }
    }

    /// TINGe keeps an edge iff the observed MI beats every one of its own
    /// `q` permutation nulls *and* clears the pooled global threshold.
    pub fn keeps(&self, observed: f64, null: &[f64]) -> bool {
        observed > self.threshold && null.iter().all(|&v| v < observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empirical_p_add_one_correction() {
        assert_eq!(empirical_p_value(0.9, &[0.1, 0.2, 0.3]), 0.25);
        assert_eq!(empirical_p_value(0.15, &[0.1, 0.2, 0.3]), 0.75);
        assert_eq!(empirical_p_value(0.5, &[]), 1.0, "q = 0 is uninformative");
        // Tie counts as an exceedance.
        assert_eq!(empirical_p_value(0.2, &[0.1, 0.2, 0.3]), 0.75);
    }

    #[test]
    fn pooled_matches_two_pass_statistics() {
        let values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 100) as f64 / 10.0).collect();
        let mut p = PooledNull::new();
        p.extend(&values);
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let var: f64 =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        assert!((p.mean() - mean).abs() < 1e-10);
        assert!((p.variance() - var).abs() < 1e-8);
        assert_eq!(p.count(), 1000);
        assert_eq!(p.max(), 9.9);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut whole = PooledNull::new();
        whole.extend(&all);

        let mut left = PooledNull::new();
        left.extend(&all[..123]);
        let mut right = PooledNull::new();
        right.extend(&all[123..]);
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-8);
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = PooledNull::new();
        a.extend(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&PooledNull::new());
        assert_eq!(a, before);

        let mut e = PooledNull::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn global_threshold_grows_with_test_count() {
        let mut p = PooledNull::new();
        // Standard-normal-ish null.
        for i in 0..10_000 {
            let u = (i as f64 + 0.5) / 10_000.0;
            p.push(crate::normal::inverse_cdf(u));
        }
        let t1 = p.global_threshold(0.05, 1);
        let t2 = p.global_threshold(0.05, 1_000);
        let t3 = p.global_threshold(0.05, 121_000_000); // ≈ 15,575 genes
        assert!(t1 < t2 && t2 < t3, "{t1} {t2} {t3}");
        // Φ⁻¹(0.95) ≈ 1.645 on a unit normal null.
        assert!((t1 - 1.645).abs() < 0.05, "t1={t1}");
        // Bonferroni over 1.21e8 tests at α=0.05 ⇒ z ≈ 6.2σ.
        assert!(t3 > 5.8 && t3 < 6.6, "t3={t3}");
    }

    #[test]
    #[should_panic(expected = "at least two pooled null values")]
    fn threshold_requires_data() {
        let p = PooledNull::new();
        let _ = p.global_threshold(0.05, 10);
    }

    #[test]
    fn edge_test_requires_both_conditions() {
        let t = EdgeTest {
            alpha: 0.05,
            tests: 100,
            threshold: 0.4,
        };
        assert!(t.keeps(0.5, &[0.1, 0.2]));
        assert!(!t.keeps(0.35, &[0.1, 0.2]), "below global threshold");
        assert!(!t.keeps(0.5, &[0.1, 0.6]), "loses to one of its own nulls");
        assert!(!t.keeps(0.5, &[0.5]), "tie with a null rejects");
    }

    #[test]
    fn fixed_edge_test_only_checks_threshold() {
        let t = EdgeTest::fixed(0.25);
        assert!(t.keeps(0.3, &[]));
        assert!(!t.keeps(0.2, &[]));
    }

    proptest! {
        #[test]
        fn prop_merge_any_split(values in proptest::collection::vec(-10.0f64..10.0, 2..200),
                                split in 0usize..200) {
            let split = split.min(values.len());
            let mut whole = PooledNull::new();
            whole.extend(&values);
            let mut a = PooledNull::new();
            a.extend(&values[..split]);
            let mut b = PooledNull::new();
            b.extend(&values[split..]);
            a.merge(&b);
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-8);
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
            prop_assert_eq!(a.count(), whole.count());
        }

        #[test]
        fn prop_empirical_p_in_unit_interval(obs in -5.0f64..5.0,
                                             null in proptest::collection::vec(-5.0f64..5.0, 0..50)) {
            let p = empirical_p_value(obs, &null);
            prop_assert!(p > 0.0 && p <= 1.0);
        }
    }
}
