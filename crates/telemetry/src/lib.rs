//! Live telemetry plane for running inferences.
//!
//! Everything else in the observability stack (`gnet-trace` →
//! `gnet-obs`) is post-hoc: traces are written during the run and
//! analyzed after it. This crate is the *live* path — what a 4-rank
//! whole-genome run looks like **while it is running** — built from four
//! pieces that the cluster layer and the CLI wire together:
//!
//! * [`MetricsRegistry`] — lock-light named counters/gauges/histograms
//!   updated in place by workers (fed by `Recorder::with_metrics`) and
//!   snapshotable at any instant without pausing anyone.
//! * [`Heartbeat`] — the std-only codec for the periodic status beat
//!   each worker piggybacks onto the cluster transport as a `TELEM`
//!   frame: registry snapshot, round/pair watermarks, queue depth.
//! * [`ClusterView`] — rank 0's fold of those beats: per-rank liveness
//!   (missed-beat detection), EWMA pair rates, and straggler flags with
//!   a monotone "ever flagged" history.
//! * Pull surfaces — [`render_status_json`] (schema-pinned
//!   `gnet-status/1`), [`render_prometheus`] (fixed metric-name set),
//!   [`write_status_file_atomic`], and the std-only [`StatusServer`]
//!   serving `GET /status` and `GET /metrics`.
//!
//! The invariant the whole plane is built around: **telemetry never
//! perturbs results**. Heartbeats travel out-of-band on the existing
//! transport, every decoder degrades instead of panicking, and the
//! cluster integration is validated by byte-identical edge sets with
//! telemetry on versus off (see `gnet-cluster`'s live tests and the CI
//! smoke job).

#![warn(missing_docs)]

mod heartbeat;
mod http;
mod registry;
mod status;
mod view;

pub use heartbeat::{Heartbeat, HEARTBEAT_VERSION};
pub use http::{DocSource, StatusDocs, StatusServer};
pub use registry::{AtomicHistogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use status::{
    render_prometheus, render_status_json, write_status_file_atomic, STATUS_FORMAT, STATUS_VERSION,
};
pub use view::{ClusterView, RankView};
