//! Heartbeat codec: the payload each worker piggybacks onto the cluster
//! transport inside a `TELEM` frame.
//!
//! Version-1 wire layout, all integers little-endian, std-only (no serde
//! — the codec sits below the crates that have it):
//!
//! ```text
//! version   u8   (= 1)
//! rank      u32
//! round     u32  protocol round watermark
//! done      u8   (0 | 1)
//! pairs     u64  gene pairs completed so far
//! elapsed_us u64 worker wall-clock since rank start
//! queue_depth u64 outbound transport queue depth at send time
//! n_counters u32, then n × (name_len u32, name bytes, value u64)
//! n_gauges   u32, then n × (name_len u32, name bytes, value u64)
//! ```
//!
//! Histograms are folded into two derived counters at encode time
//! (`<name>.count`, `<name>.sum_us`) — the live view needs rates and
//! totals, not bucket shapes, and this keeps heartbeats small and the
//! schema closed.
//!
//! Decoding **degrades, never panics**: any truncation, over-limit entry
//! count, oversized name, or unknown version yields `None`, and the
//! receiver simply treats the frame as a lost heartbeat. Liveness
//! tracking is designed around missed beats, so a corrupt one costs
//! nothing.

use crate::registry::MetricsSnapshot;

/// Highest heartbeat wire version this build encodes and decodes.
pub const HEARTBEAT_VERSION: u8 = 1;

/// Decode guard: maximum counter + gauge entries accepted per section.
const MAX_ENTRIES: u32 = 4096;

/// Decode guard: maximum metric-name length in bytes.
const MAX_NAME: u32 = 256;

/// One worker's periodic status report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sender's rank.
    pub rank: u32,
    /// Protocol round watermark (highest round the rank has entered).
    pub round: u32,
    /// True on the final beat a rank sends before returning.
    pub done: bool,
    /// Gene pairs completed so far.
    pub pairs: u64,
    /// Worker wall-clock since the rank started, µs.
    pub elapsed_us: u64,
    /// Outbound transport queue depth at send time.
    pub queue_depth: u64,
    /// Counter snapshot (sorted by name; includes derived histogram
    /// `.count`/`.sum_us` entries).
    pub counters: Vec<(String, u64)>,
    /// Gauge snapshot (sorted by name).
    pub gauges: Vec<(String, u64)>,
}

fn put_entries(buf: &mut Vec<u8>, entries: &[(String, u64)]) {
    let n = u32::try_from(entries.len().min(MAX_ENTRIES as usize))
        .expect("entry count clamped to MAX_ENTRIES");
    buf.extend_from_slice(&n.to_le_bytes());
    for (name, value) in entries.iter().take(n as usize) {
        let bytes = name.as_bytes();
        let len = bytes.len().min(MAX_NAME as usize);
        let len32 = u32::try_from(len).expect("name length clamped to MAX_NAME");
        buf.extend_from_slice(&len32.to_le_bytes());
        buf.extend_from_slice(&bytes[..len]);
        buf.extend_from_slice(&value.to_le_bytes());
    }
}

fn get_u8(buf: &[u8], at: &mut usize) -> Option<u8> {
    let b = *buf.get(*at)?;
    *at += 1;
    Some(b)
}

fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let slice = buf.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(
        slice.try_into().expect("4-byte slice fits [u8; 4]"),
    ))
}

fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let slice = buf.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(
        slice.try_into().expect("8-byte slice fits [u8; 8]"),
    ))
}

fn get_entries(buf: &[u8], at: &mut usize) -> Option<Vec<(String, u64)>> {
    let n = get_u32(buf, at)?;
    if n > MAX_ENTRIES {
        return None;
    }
    let mut entries = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let len = get_u32(buf, at)?;
        if len > MAX_NAME {
            return None;
        }
        let name_bytes = buf.get(*at..*at + len as usize)?;
        *at += len as usize;
        let name = String::from_utf8(name_bytes.to_vec()).ok()?;
        let value = get_u64(buf, at)?;
        entries.push((name, value));
    }
    Some(entries)
}

impl Heartbeat {
    /// Build a beat from a registry snapshot plus the sender's live
    /// position. Histograms become derived `<name>.count` /
    /// `<name>.sum_us` counters; metric names longer than the wire limit
    /// are truncated at encode.
    #[must_use]
    pub fn from_snapshot(
        rank: u32,
        round: u32,
        done: bool,
        pairs: u64,
        elapsed_us: u64,
        queue_depth: u64,
        snap: &MetricsSnapshot,
    ) -> Self {
        let mut counters: Vec<(String, u64)> =
            snap.counters.iter().map(|(k, &v)| (k.clone(), v)).collect();
        for (name, h) in &snap.histograms {
            counters.push((format!("{name}.count"), h.count()));
            counters.push((format!("{name}.sum_us"), h.sum_us));
        }
        counters.sort();
        let gauges = snap.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect();
        Self {
            rank,
            round,
            done,
            pairs,
            elapsed_us,
            queue_depth,
            counters,
            gauges,
        }
    }

    /// Serialize to the version-1 wire form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 32 * (self.counters.len() + self.gauges.len()));
        buf.push(HEARTBEAT_VERSION);
        buf.extend_from_slice(&self.rank.to_le_bytes());
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.push(u8::from(self.done));
        buf.extend_from_slice(&self.pairs.to_le_bytes());
        buf.extend_from_slice(&self.elapsed_us.to_le_bytes());
        buf.extend_from_slice(&self.queue_depth.to_le_bytes());
        put_entries(&mut buf, &self.counters);
        put_entries(&mut buf, &self.gauges);
        buf
    }

    /// Parse a version-1 wire form; `None` on any malformation (see the
    /// module docs — a bad beat is just a missed beat).
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut at = 0usize;
        if get_u8(buf, &mut at)? != HEARTBEAT_VERSION {
            return None;
        }
        let rank = get_u32(buf, &mut at)?;
        let round = get_u32(buf, &mut at)?;
        let done = match get_u8(buf, &mut at)? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let pairs = get_u64(buf, &mut at)?;
        let elapsed_us = get_u64(buf, &mut at)?;
        let queue_depth = get_u64(buf, &mut at)?;
        let counters = get_entries(buf, &mut at)?;
        let gauges = get_entries(buf, &mut at)?;
        if at != buf.len() {
            // Trailing garbage: not a beat this version understands.
            return None;
        }
        Some(Self {
            rank,
            round,
            done,
            pairs,
            elapsed_us,
            queue_depth,
            counters,
            gauges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample() -> Heartbeat {
        let reg = MetricsRegistry::new();
        reg.counter_add("rank.pairs", 123);
        reg.counter_add("tcp.frames_sent", 9);
        reg.gauge_set("queue", 4);
        reg.observe_us("tile_us", 100);
        reg.observe_us("tile_us", 300);
        Heartbeat::from_snapshot(2, 7, false, 123, 5_000_000, 4, &reg.snapshot())
    }

    #[test]
    fn round_trips_exactly() {
        let hb = sample();
        let decoded = Heartbeat::decode(&hb.encode()).expect("self-encoded beat decodes");
        assert_eq!(decoded, hb);
        // Histograms arrive as derived counters.
        let count = decoded
            .counters
            .iter()
            .find(|(k, _)| k == "tile_us.count")
            .map(|&(_, v)| v);
        let sum = decoded
            .counters
            .iter()
            .find(|(k, _)| k == "tile_us.sum_us")
            .map(|&(_, v)| v);
        assert_eq!(count, Some(2));
        assert_eq!(sum, Some(400));
    }

    #[test]
    fn done_flag_round_trips() {
        let mut hb = sample();
        hb.done = true;
        let decoded = Heartbeat::decode(&hb.encode()).expect("decodes");
        assert!(decoded.done);
    }

    #[test]
    fn truncation_and_garbage_degrade_to_none() {
        let wire = sample().encode();
        for cut in 0..wire.len() {
            assert_eq!(Heartbeat::decode(&wire[..cut]), None, "cut at {cut}");
        }
        let mut trailing = wire.clone();
        trailing.push(0);
        assert_eq!(Heartbeat::decode(&trailing), None);
        let mut bad_version = wire.clone();
        bad_version[0] = 99;
        assert_eq!(Heartbeat::decode(&bad_version), None);
        let mut bad_done = wire;
        bad_done[9] = 7;
        assert_eq!(Heartbeat::decode(&bad_done), None);
    }

    #[test]
    fn hostile_entry_counts_are_rejected() {
        // A beat claiming u32::MAX counters must fail fast, not allocate.
        let mut buf = Vec::new();
        buf.push(HEARTBEAT_VERSION);
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.push(0);
        buf.extend_from_slice(&[0u8; 24]); // pairs + elapsed + queue
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Heartbeat::decode(&buf), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// decode(encode(x)) == x for arbitrary beats, and decode
            /// never panics on arbitrary bytes.
            #[test]
            fn prop_round_trip_and_no_panic(
                rank in any::<u32>(),
                round in any::<u32>(),
                done in any::<bool>(),
                pairs in any::<u64>(),
                elapsed in any::<u64>(),
                queue in any::<u64>(),
                name_seeds in proptest::collection::vec(any::<u64>(), 0..6),
                noise in proptest::collection::vec(any::<u8>(), 0..64),
            ) {
                let counters: Vec<(String, u64)> = name_seeds
                    .iter()
                    .map(|&s| (format!("metric.{s:x}"), s.rotate_left(7)))
                    .collect();
                let hb = Heartbeat {
                    rank, round, done, pairs,
                    elapsed_us: elapsed,
                    queue_depth: queue,
                    counters,
                    gauges: Vec::new(),
                };
                prop_assert_eq!(Heartbeat::decode(&hb.encode()).as_ref(), Some(&hb));
                // Arbitrary bytes: decode returns, never panics.
                let _ = Heartbeat::decode(&noise);
            }
        }
    }
}
