//! Pull-surface renderers: the `gnet-status/1` JSON document, the
//! Prometheus text exposition, and the atomic status-file writer.
//!
//! Both renderers are **closed-world**: every key in the JSON document
//! and every metric name in the exposition comes from the fixed sets
//! below, so consumers (`gnet status`, the CI schema tripwire in
//! `gnet-obs`) can reject unknown fields as producer/consumer drift.
//! Per-rank counters ride inside a `counters` object (JSON) or a
//! `counter="…"` label (Prometheus) precisely so that dynamic metric
//! names never widen the schema itself.

use crate::view::ClusterView;
use gnet_trace::escape_json;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Instant;

/// `format` field of the status document.
pub const STATUS_FORMAT: &str = "gnet-status";

/// `version` field of the status document (schema `gnet-status/1`).
pub const STATUS_VERSION: u64 = 1;

fn push_u64_list(out: &mut String, items: impl IntoIterator<Item = u64>) {
    out.push('[');
    for (i, v) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Render the `gnet-status/1` JSON document as of `now`.
///
/// Every number is a JSON integer except the two rates, and nullable
/// fields (`eta_us`, per-rank `beat_age_us`) are literal `null` — never
/// absent — so the schema has a fixed key set.
#[must_use]
pub fn render_status_json(view: &ClusterView, now: Instant) -> String {
    let elapsed = view.elapsed(now);
    let elapsed_s = elapsed.as_secs_f64();
    let pairs_done = view.pairs_done();
    let overall_rate = if elapsed_s > 0.0 {
        pairs_done as f64 / elapsed_s
    } else {
        0.0
    };
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"format\":\"{STATUS_FORMAT}\",\"version\":{STATUS_VERSION},\"state\":\"{}\",\
         \"elapsed_us\":{},\"ranks\":{},\"round_max\":{},\"pairs_done\":{pairs_done},\
         \"pairs_total\":{},\"pairs_per_s\":{overall_rate:.3},",
        if view.is_done() { "done" } else { "running" },
        elapsed.as_micros(),
        view.ranks().len(),
        view.round_max(),
        view.pairs_total(),
    );
    match view.eta() {
        Some(eta) => {
            let _ = write!(out, "\"eta_us\":{},", eta.as_micros());
        }
        None => out.push_str("\"eta_us\":null,"),
    }
    let _ = write!(out, "\"interval_us\":{},", view.interval().as_micros());
    out.push_str("\"stragglers\":");
    push_u64_list(&mut out, view.stragglers().iter().map(|&r| r as u64));
    out.push_str(",\"stragglers_seen\":");
    push_u64_list(&mut out, view.stragglers_seen().iter().map(|&r| r as u64));
    out.push_str(",\"per_rank\":[");
    for (i, r) in view.ranks().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rank_rate = r.rate_ewma.unwrap_or(if r.elapsed_us > 0 {
            r.pairs as f64 / (r.elapsed_us as f64 / 1e6)
        } else {
            0.0
        });
        let _ = write!(
            out,
            "{{\"rank\":{},\"dead\":{},\"done\":{},\"suspect\":{},\"straggler\":{},\
             \"round\":{},\"pairs\":{},\"pairs_per_s\":{rank_rate:.3},",
            r.rank, r.dead, r.done, r.suspect, r.straggler, r.round, r.pairs,
        );
        match r.beat_age(now) {
            Some(age) => {
                let _ = write!(out, "\"beat_age_us\":{},", age.as_micros());
            }
            None => out.push_str("\"beat_age_us\":null,"),
        }
        let _ = write!(
            out,
            "\"beats\":{},\"queue_depth\":{},\"counters\":{{",
            r.beats, r.queue_depth,
        );
        for (j, (k, v)) in r.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            escape_json(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render the Prometheus text exposition (format 0.0.4) as of `now`.
///
/// The metric-name set is fixed (see DESIGN.md §17): dynamic counter
/// names appear as the `counter` label of `gnet_rank_counter_total`, so
/// a scrape validator can hold the name allowlist closed.
#[must_use]
pub fn render_prometheus(view: &ClusterView, now: Instant) -> String {
    let elapsed_s = view.elapsed(now).as_secs_f64();
    let pairs_done = view.pairs_done();
    let overall_rate = if elapsed_s > 0.0 {
        pairs_done as f64 / elapsed_s
    } else {
        0.0
    };
    let mut out = String::with_capacity(2048);
    let _ = writeln!(
        out,
        "# HELP gnet_up Whether the inference run is live (1) or finished (0)."
    );
    let _ = writeln!(out, "# TYPE gnet_up gauge");
    let _ = writeln!(out, "gnet_up {}", u8::from(!view.is_done()));
    let _ = writeln!(
        out,
        "# HELP gnet_elapsed_seconds Wall-clock seconds since the run started."
    );
    let _ = writeln!(out, "# TYPE gnet_elapsed_seconds gauge");
    let _ = writeln!(out, "gnet_elapsed_seconds {elapsed_s:.6}");
    let _ = writeln!(out, "# HELP gnet_ranks Number of ranks in the mesh.");
    let _ = writeln!(out, "# TYPE gnet_ranks gauge");
    let _ = writeln!(out, "gnet_ranks {}", view.ranks().len());
    let _ = writeln!(
        out,
        "# HELP gnet_pairs_done_total Gene pairs completed across all ranks."
    );
    let _ = writeln!(out, "# TYPE gnet_pairs_done_total counter");
    let _ = writeln!(out, "gnet_pairs_done_total {pairs_done}");
    let _ = writeln!(
        out,
        "# HELP gnet_pairs_total Total gene pairs the run will compute."
    );
    let _ = writeln!(out, "# TYPE gnet_pairs_total gauge");
    let _ = writeln!(out, "gnet_pairs_total {}", view.pairs_total());
    let _ = writeln!(
        out,
        "# HELP gnet_pairs_per_second Cluster-wide completion rate."
    );
    let _ = writeln!(out, "# TYPE gnet_pairs_per_second gauge");
    let _ = writeln!(out, "gnet_pairs_per_second {overall_rate:.3}");
    if let Some(eta) = view.eta() {
        let _ = writeln!(
            out,
            "# HELP gnet_eta_seconds Smoothed estimate of seconds remaining."
        );
        let _ = writeln!(out, "# TYPE gnet_eta_seconds gauge");
        let _ = writeln!(out, "gnet_eta_seconds {:.3}", eta.as_secs_f64());
    }
    for r in view.ranks() {
        let rank = r.rank;
        let _ = writeln!(out, "gnet_rank_pairs_total{{rank=\"{rank}\"}} {}", r.pairs);
        let rank_rate = r.rate_ewma.unwrap_or(0.0);
        let _ = writeln!(
            out,
            "gnet_rank_pairs_per_second{{rank=\"{rank}\"}} {rank_rate:.3}"
        );
        let _ = writeln!(out, "gnet_rank_round{{rank=\"{rank}\"}} {}", r.round);
        if let Some(age) = r.beat_age(now) {
            let _ = writeln!(
                out,
                "gnet_rank_heartbeat_age_seconds{{rank=\"{rank}\"}} {:.6}",
                age.as_secs_f64()
            );
        }
        let _ = writeln!(
            out,
            "gnet_rank_heartbeats_total{{rank=\"{rank}\"}} {}",
            r.beats
        );
        let _ = writeln!(
            out,
            "gnet_rank_queue_depth{{rank=\"{rank}\"}} {}",
            r.queue_depth
        );
        let _ = writeln!(out, "gnet_rank_up{{rank=\"{rank}\"}} {}", u8::from(!r.dead));
        let _ = writeln!(
            out,
            "gnet_rank_straggler{{rank=\"{rank}\"}} {}",
            u8::from(r.straggler)
        );
        for (name, value) in &r.counters {
            let _ = writeln!(
                out,
                "gnet_rank_counter_total{{rank=\"{rank}\",counter=\"{}\"}} {value}",
                escape_label(name)
            );
        }
    }
    out
}

/// Atomically replace `path` with `contents`: write a sibling temp file,
/// then rename over the target, so a concurrent reader always sees
/// either the previous complete document or the new one — never a
/// partial write.
pub fn write_status_file_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "status path has no file name")
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heartbeat::Heartbeat;
    use std::time::Duration;

    fn sample_view() -> (ClusterView, Instant) {
        let base = Instant::now();
        let mut v = ClusterView::new(3, 1000, Duration::from_millis(100));
        let mut hb = Heartbeat {
            rank: 0,
            round: 3,
            pairs: 250,
            elapsed_us: 400_000,
            queue_depth: 2,
            ..Heartbeat::default()
        };
        hb.counters.push(("tcp.frames_sent".into(), 12));
        v.fold_at(&hb, base + Duration::from_millis(400));
        // Rank 1 beat once early then went silent; rank 2 never beat.
        v.fold_at(
            &Heartbeat {
                rank: 1,
                round: 1,
                pairs: 10,
                elapsed_us: 10_000,
                ..Heartbeat::default()
            },
            base + Duration::from_millis(10),
        );
        v.refresh_at(base + Duration::from_millis(450));
        (v, base + Duration::from_millis(500))
    }

    #[test]
    fn status_json_has_the_pinned_shape() {
        let (v, now) = sample_view();
        let doc = render_status_json(&v, now);
        for needle in [
            "\"format\":\"gnet-status\"",
            "\"version\":1",
            "\"state\":\"running\"",
            "\"pairs_total\":1000",
            "\"pairs_done\":260",
            "\"interval_us\":100000",
            "\"per_rank\":[",
            "\"beat_age_us\":100000",
            "\"beat_age_us\":null",
            "\"counters\":{\"tcp.frames_sent\":12}",
            "\"stragglers_seen\":[1]",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
        // Balanced braces/brackets (cheap structural sanity; full
        // schema validation lives in gnet-obs).
        let opens = doc.matches('{').count() + doc.matches('[').count();
        let closes = doc.matches('}').count() + doc.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn prometheus_uses_only_the_fixed_name_set() {
        let (v, now) = sample_view();
        let text = render_prometheus(&v, now);
        const ALLOWED: &[&str] = &[
            "gnet_up",
            "gnet_elapsed_seconds",
            "gnet_ranks",
            "gnet_pairs_done_total",
            "gnet_pairs_total",
            "gnet_pairs_per_second",
            "gnet_eta_seconds",
            "gnet_rank_pairs_total",
            "gnet_rank_pairs_per_second",
            "gnet_rank_round",
            "gnet_rank_heartbeat_age_seconds",
            "gnet_rank_heartbeats_total",
            "gnet_rank_queue_depth",
            "gnet_rank_up",
            "gnet_rank_straggler",
            "gnet_rank_counter_total",
        ];
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line
                .split(['{', ' '])
                .next()
                .expect("sample line has a name");
            assert!(ALLOWED.contains(&name), "unexpected metric {name}");
        }
        assert!(text.contains("gnet_rank_counter_total{rank=\"0\",counter=\"tcp.frames_sent\"} 12"));
        assert!(text.contains("gnet_rank_straggler{rank=\"1\"} 1"));
    }

    #[test]
    fn status_file_replacement_is_atomic_and_complete() {
        let dir = std::env::temp_dir().join(format!("gnet-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("status.json");
        write_status_file_atomic(&path, "{\"v\":1}").expect("first write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "{\"v\":1}");
        write_status_file_atomic(&path, "{\"v\":2}").expect("replace");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "{\"v\":2}");
        assert!(
            !dir.join("status.json.tmp").exists(),
            "temp file renamed away"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
