//! Lock-light metrics registry: atomically updated counters, gauges and
//! histograms, snapshotable at any instant without pausing writers.
//!
//! The registry is the live twin of the post-hoc [`gnet_trace::Recorder`]:
//! the recorder buffers everything for NDJSON export after the run, while
//! the registry keeps only the *current* value of each metric in an atomic
//! cell that workers bump in place. Reads (heartbeat encoding, `/metrics`
//! scrapes) take a snapshot of the atomics without stopping any writer.
//!
//! Locking discipline: the maps from name to cell sit behind `RwLock`s,
//! but the hot path — updating a metric that already exists — takes only
//! the read lock to clone the `Arc` of the cell and then updates the
//! atomic lock-free. The write lock is taken once per metric name, on
//! first registration. Snapshots take the read lock and load each atomic;
//! a histogram snapshot derives its total count from the bucket loads, so
//! it is internally coherent (count == sum of buckets) *by construction*
//! even when taken mid-update.

use gnet_trace::{Histogram, MetricsSink};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-tolerant read lock: a panicking writer must not take telemetry
/// down with it.
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Poison-tolerant write lock (see [`read`]).
fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// A histogram whose buckets are independent atomics, updatable from any
/// thread without a lock.
///
/// Bucket layout mirrors [`gnet_trace::Histogram`] exactly — power-of-two
/// microsecond bounds plus one overflow bucket — so live and post-hoc
/// views of the same latency stream bucket identically. Unlike the
/// locked histogram it keeps no min/max (those would need a CAS loop for
/// no live-view benefit); the snapshot's total count is derived from the
/// bucket loads rather than stored, which is what makes a concurrent
/// snapshot coherent.
pub struct AtomicHistogram {
    counts: [AtomicU64; Histogram::BUCKETS],
    sum_us: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Bucket index for `value_us`, identical to
    /// [`gnet_trace::Histogram::observe_us`]'s placement.
    fn bucket_index(value_us: u64) -> usize {
        if value_us <= 1 {
            0
        } else {
            let ceil_log2 = 64 - (value_us - 1).leading_zeros() as usize;
            ceil_log2.min(Histogram::BUCKETS - 1)
        }
    }

    /// Record one observation of `value_us` microseconds.
    pub fn observe_us(&self, value_us: u64) {
        // ordering: each bucket is an independent monotone counter; the
        // snapshot derives totals from whatever loads it sees, so no
        // cross-cell ordering is required.
        self.counts[Self::bucket_index(value_us)].fetch_add(1, Ordering::Relaxed);
        // ordering: as above — sum_us is advisory (mean estimation) and
        // tolerates racing a bucket increment.
        self.sum_us.fetch_add(value_us, Ordering::Relaxed);
    }

    /// A coherent point-in-time copy: the count is the sum of the bucket
    /// loads, never a separately-maintained total that could disagree.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ordering: monotone counters read for reporting; a torn view
        // across buckets only under-reports in-flight observations.
        let buckets = std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed));
        // ordering: as above.
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        HistogramSnapshot { buckets, sum_us }
    }
}

/// Point-in-time copy of an [`AtomicHistogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, bound order, overflow last (same layout as
    /// [`gnet_trace::Histogram::bucket_counts`]).
    pub buckets: [u64; Histogram::BUCKETS],
    /// Saturating sum of all observations, µs.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// Total observations — always exactly the sum of `buckets`.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Registry of named live metrics.
///
/// Cheap to share (`Arc<MetricsRegistry>` implements
/// [`gnet_trace::MetricsSink`], so a [`gnet_trace::Recorder`] can feed it
/// directly via `Recorder::with_metrics`); see the module docs for the
/// locking discipline.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
}

/// Get-or-insert a named cell: read-lock fast path, write lock only on
/// first registration of the name.
fn cell<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(c) = read(map).get(name) {
        return Arc::clone(c);
    }
    let mut w = write(map);
    Arc::clone(w.entry(name.to_owned()).or_default())
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named monotonic counter (registering it at 0
    /// first if new).
    pub fn counter_add(&self, name: &str, delta: u64) {
        // ordering: monotone counter; readers tolerate any interleaving.
        cell(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: u64) {
        // ordering: last-write-wins gauge, no cross-metric invariant.
        cell(&self.gauges, name).store(value, Ordering::Relaxed);
    }

    /// Record one microsecond observation into the named histogram.
    pub fn observe_us(&self, name: &str, value_us: u64) {
        cell(&self.histograms, name).observe_us(value_us);
    }

    /// Current value of a counter, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        read(&self.counters)
            .get(name)
            // ordering: reporting read of a monotone counter.
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// Current value of a gauge, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        read(&self.gauges)
            .get(name)
            // ordering: reporting read of a gauge.
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// Coherent point-in-time copy of every metric. Writers are never
    /// paused; each cell is loaded once, and histogram counts are derived
    /// from bucket loads (see [`AtomicHistogram::snapshot`]).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = read(&self.counters)
            .iter()
            // ordering: reporting read of monotone counters.
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = read(&self.gauges)
            .iter()
            // ordering: reporting read of gauges.
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = read(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl MetricsSink for MetricsRegistry {
    fn counter_add(&self, name: &str, delta: u64) {
        MetricsRegistry::counter_add(self, name, delta);
    }

    fn observe_us(&self, name: &str, value_us: u64) {
        MetricsRegistry::observe_us(self, name, value_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_trace::Recorder;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter_add("pairs", 3);
        reg.counter_add("pairs", 4);
        reg.gauge_set("depth", 9);
        reg.gauge_set("depth", 2);
        reg.observe_us("lat", 1);
        reg.observe_us("lat", 1000);
        assert_eq!(reg.counter("pairs"), Some(7));
        assert_eq!(reg.counter("missing"), None);
        assert_eq!(reg.gauge("depth"), Some(2));
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("pairs"), Some(&7));
        assert_eq!(snap.gauges.get("depth"), Some(&2));
        let h = snap.histograms.get("lat").expect("histogram registered");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_us, 1001);
    }

    #[test]
    fn atomic_histogram_buckets_match_the_locked_histogram() {
        let ah = AtomicHistogram::default();
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1024, 1 << 25, (1 << 25) + 1, u64::MAX] {
            ah.observe_us(v);
            h.observe_us(v);
        }
        let snap = ah.snapshot();
        assert_eq!(&snap.buckets[..], h.bucket_counts());
        assert_eq!(snap.count(), h.count());
    }

    #[test]
    fn recorder_feeds_the_registry_as_a_sink() {
        let reg = Arc::new(MetricsRegistry::new());
        let rec = Recorder::disabled().with_metrics(Arc::clone(&reg) as Arc<dyn MetricsSink>);
        rec.counter_add("rank.pairs", 42);
        rec.observe_us("tile_us", 17);
        assert_eq!(reg.counter("rank.pairs"), Some(42));
        let snap = reg.snapshot();
        assert_eq!(
            snap.histograms.get("tile_us").map(HistogramSnapshot::count),
            Some(1)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Hammer a registry from several threads while snapshotting
            /// concurrently: every snapshot must be internally coherent —
            /// histogram count equals the bucket sum, counters only grow
            /// between snapshots — and the final totals must be exact.
            #[test]
            fn prop_snapshots_mid_update_are_coherent(
                per_thread in 1usize..200,
                threads in 2usize..5,
                values in proptest::collection::vec(0u64..=1 << 30, 1..8),
            ) {
                let reg = Arc::new(MetricsRegistry::new());
                let snaps = std::thread::scope(|scope| {
                    for t in 0..threads {
                        let reg = Arc::clone(&reg);
                        let values = values.clone();
                        scope.spawn(move || {
                            for i in 0..per_thread {
                                reg.counter_add("c", 1);
                                reg.observe_us("h", values[(t + i) % values.len()]);
                                reg.gauge_set("g", i as u64);
                            }
                        });
                    }
                    // Snapshot continuously while the writers hammer.
                    let mut snaps = Vec::new();
                    for _ in 0..50 {
                        snaps.push(reg.snapshot());
                    }
                    snaps
                });
                let mut last_count = 0u64;
                let mut last_hist = 0u64;
                for s in &snaps {
                    if let Some(h) = s.histograms.get("h") {
                        // Coherence by construction: count IS the bucket
                        // sum, even for a snapshot taken mid-update.
                        let bucket_sum: u64 = h.buckets.iter().sum();
                        prop_assert_eq!(h.count(), bucket_sum);
                        prop_assert!(h.count() >= last_hist, "histogram went backwards");
                        last_hist = h.count();
                    }
                    if let Some(&c) = s.counters.get("c") {
                        prop_assert!(c >= last_count, "counter went backwards");
                        last_count = c;
                    }
                }
                let total = (threads * per_thread) as u64;
                prop_assert_eq!(reg.counter("c"), Some(total));
                let final_snap = reg.snapshot();
                let h = final_snap.histograms.get("h").expect("histogram exists");
                prop_assert_eq!(h.count(), total);
            }
        }
    }
}
