//! Cluster-wide live view: rank 0 folds worker heartbeats into per-rank
//! liveness, progress watermarks, and EWMA-based straggler flags.
//!
//! The view is deliberately tolerant of a degraded telemetry stream:
//! heartbeats may be lost, reordered, or stop entirely (wire faults, rank
//! death), and every fold merges *monotonically* — rounds and pair counts
//! only move forward, a late-arriving stale beat can refresh liveness but
//! never rewinds progress. Missing data degrades the view (stale ages,
//! frozen rates); it never wedges or panics.
//!
//! Three straggler signals, re-evaluated on every [`refresh_at`]
//! (`ClusterView::refresh_at`):
//!
//! 1. **Silent** — a rank that has beaten before but whose last beat is
//!    older than `max(4 × interval, 3 × its own EWMA beat gap)`. These
//!    ranks are also marked *suspect*, which is the signal the caller
//!    feeds into the protocol's census/presume-dead path.
//! 2. **Lagging** — a rank whose round watermark trails the furthest
//!    live rank by ≥ 2 rounds.
//! 3. **Slow** — a rank (≥ 3 beats, so the EWMA has settled) whose
//!    pairs/s EWMA is below half the median of live ranks.
//!
//! Flags are transient, but `stragglers_seen` is a monotone set — once a
//! rank has been flagged it stays in the history, so a post-run check can
//! prove a mid-run stall was observed even after the rank recovered.

use crate::heartbeat::Heartbeat;
use gnet_trace::{EwmaEta, Progress};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Smoothing factor for per-rank beat-gap and pair-rate EWMAs.
const RANK_ALPHA: f64 = 0.3;

/// Live state of one rank, as seen from the coordinator.
#[derive(Clone, Debug)]
pub struct RankView {
    /// Rank index.
    pub rank: usize,
    /// Heartbeats received (including stale/reordered ones).
    pub beats: u64,
    /// Arrival time of the newest heartbeat.
    pub last_beat: Option<Instant>,
    /// Highest round watermark reported (monotone).
    pub round: u32,
    /// Highest pair count reported (monotone).
    pub pairs: u64,
    /// Worker-side elapsed µs of the newest non-stale beat.
    pub elapsed_us: u64,
    /// Outbound queue depth from the newest non-stale beat.
    pub queue_depth: u64,
    /// Rank reported completion.
    pub done: bool,
    /// Rank was presumed dead by the protocol census.
    pub dead: bool,
    /// Missed-heartbeat flag (see module docs, signal 1).
    pub suspect: bool,
    /// Any straggler signal active (module docs, signals 1–3).
    pub straggler: bool,
    /// Smoothed pairs/s, once two beats with forward progress arrived.
    pub rate_ewma: Option<f64>,
    /// Smoothed seconds between heartbeat arrivals.
    pub gap_ewma: Option<f64>,
    /// Latest counter values (monotone max-merge per name).
    pub counters: BTreeMap<String, u64>,
    /// Latest gauge values (from the newest non-stale beat).
    pub gauges: BTreeMap<String, u64>,
}

impl RankView {
    fn new(rank: usize) -> Self {
        Self {
            rank,
            beats: 0,
            last_beat: None,
            round: 0,
            pairs: 0,
            elapsed_us: 0,
            queue_depth: 0,
            done: false,
            dead: false,
            suspect: false,
            straggler: false,
            rate_ewma: None,
            gap_ewma: None,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    /// Time since the newest heartbeat, `None` before the first.
    #[must_use]
    pub fn beat_age(&self, now: Instant) -> Option<Duration> {
        self.last_beat.map(|at| now.saturating_duration_since(at))
    }

    /// True when the rank still owes the cluster heartbeats: not done,
    /// not presumed dead.
    #[must_use]
    pub fn expected_live(&self) -> bool {
        !self.done && !self.dead
    }
}

/// The coordinator's folded view of every rank.
pub struct ClusterView {
    started: Instant,
    interval: Duration,
    pairs_total: u64,
    run_done: bool,
    ranks: Vec<RankView>,
    eta: EwmaEta,
    stragglers_seen: BTreeSet<usize>,
}

impl ClusterView {
    /// A fresh view over `size` ranks expecting `pairs_total` total gene
    /// pairs, with workers beating roughly every `interval`.
    #[must_use]
    pub fn new(size: usize, pairs_total: u64, interval: Duration) -> Self {
        Self {
            started: Instant::now(),
            interval: interval.max(Duration::from_millis(1)),
            pairs_total,
            run_done: false,
            ranks: (0..size).map(RankView::new).collect(),
            eta: EwmaEta::new(),
            stragglers_seen: BTreeSet::new(),
        }
    }

    /// Fold one heartbeat in, stamped "now".
    pub fn fold(&mut self, hb: &Heartbeat) {
        self.fold_at(hb, Instant::now());
    }

    /// Fold one heartbeat that arrived at `now` (injectable clock for
    /// deterministic tests).
    pub fn fold_at(&mut self, hb: &Heartbeat, now: Instant) {
        let Some(r) = self.ranks.get_mut(hb.rank as usize) else {
            // A beat for a rank outside the mesh: corrupt or foreign —
            // degrade by ignoring it.
            return;
        };
        // Liveness first: any decodable beat proves the rank is alive,
        // stale payload or not.
        if let Some(prev) = r.last_beat {
            let gap = now.saturating_duration_since(prev).as_secs_f64();
            r.gap_ewma = Some(match r.gap_ewma {
                None => gap,
                Some(g) => RANK_ALPHA * gap + (1.0 - RANK_ALPHA) * g,
            });
        }
        r.beats += 1;
        r.last_beat = Some(now);
        r.dead = false;
        r.done |= hb.done;
        // Data merge: monotone. A reordered older beat (elapsed went
        // backwards) refreshes liveness above but must not rewind
        // progress or regress counters.
        let stale = hb.elapsed_us < r.elapsed_us;
        if hb.pairs > r.pairs && hb.elapsed_us > r.elapsed_us {
            let d_pairs = (hb.pairs - r.pairs) as f64;
            let d_secs = (hb.elapsed_us - r.elapsed_us) as f64 / 1e6;
            if d_secs > 0.0 {
                let rate = d_pairs / d_secs;
                r.rate_ewma = Some(match r.rate_ewma {
                    None => rate,
                    Some(prev) => RANK_ALPHA * rate + (1.0 - RANK_ALPHA) * prev,
                });
            }
        }
        r.round = r.round.max(hb.round);
        r.pairs = r.pairs.max(hb.pairs);
        if !stale {
            r.elapsed_us = hb.elapsed_us;
            r.queue_depth = hb.queue_depth;
            for (k, v) in &hb.gauges {
                r.gauges.insert(k.clone(), *v);
            }
        }
        for (k, v) in &hb.counters {
            let e = r.counters.entry(k.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        // Cluster ETA from the summed watermarks.
        let done = usize::try_from(self.pairs_done()).unwrap_or(usize::MAX);
        let total = usize::try_from(self.pairs_total).unwrap_or(usize::MAX);
        self.eta.update(Progress {
            done,
            total,
            elapsed: now.saturating_duration_since(self.started),
        });
    }

    /// The protocol census presumed `rank` dead: stop expecting beats
    /// from it. A later beat (spurious death verdict) revives it.
    pub fn mark_dead(&mut self, rank: usize) {
        if let Some(r) = self.ranks.get_mut(rank) {
            r.dead = true;
            r.suspect = false;
            r.straggler = false;
        }
    }

    /// The run completed: freeze the state reported by pull surfaces.
    pub fn finish(&mut self) {
        self.run_done = true;
        for r in &mut self.ranks {
            r.suspect = false;
            r.straggler = false;
        }
    }

    /// Re-evaluate suspect/straggler flags as of `now` and fold newly
    /// flagged ranks into the monotone `stragglers_seen` history.
    pub fn refresh_at(&mut self, now: Instant) {
        if self.run_done {
            return;
        }
        let round_max = self.round_max();
        let mut rates: Vec<f64> = self
            .ranks
            .iter()
            .filter(|r| r.expected_live() && r.beats >= 3)
            .filter_map(|r| r.rate_ewma)
            .collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median_rate = (!rates.is_empty()).then(|| rates[rates.len() / 2]);
        for r in &mut self.ranks {
            if !r.expected_live() || r.beats == 0 {
                r.suspect = false;
                r.straggler = false;
                continue;
            }
            let age = r.beat_age(now).unwrap_or(Duration::ZERO).as_secs_f64();
            let expected_gap = r
                .gap_ewma
                .map_or(0.0, |g| 3.0 * g)
                .max(4.0 * self.interval.as_secs_f64());
            r.suspect = age > expected_gap;
            let lagging = r.round.saturating_add(2) <= round_max;
            let slow = r.beats >= 3
                && match (r.rate_ewma, median_rate) {
                    (Some(rate), Some(median)) => rate < 0.5 * median,
                    _ => false,
                };
            r.straggler = r.suspect || lagging || slow;
            if r.straggler {
                self.stragglers_seen.insert(r.rank);
            }
        }
    }

    /// [`refresh_at`](Self::refresh_at) stamped "now".
    pub fn refresh(&mut self) {
        self.refresh_at(Instant::now());
    }

    /// Per-rank live states, rank order.
    #[must_use]
    pub fn ranks(&self) -> &[RankView] {
        &self.ranks
    }

    /// Expected heartbeat interval.
    #[must_use]
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Total gene pairs the run will compute.
    #[must_use]
    pub fn pairs_total(&self) -> u64 {
        self.pairs_total
    }

    /// Pairs completed across all ranks (sum of watermarks).
    #[must_use]
    pub fn pairs_done(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.pairs)
            .fold(0, u64::saturating_add)
    }

    /// Highest round watermark any rank has reported.
    #[must_use]
    pub fn round_max(&self) -> u32 {
        self.ranks.iter().map(|r| r.round).max().unwrap_or(0)
    }

    /// Wall-clock since the view was created.
    #[must_use]
    pub fn elapsed(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.started)
    }

    /// Smoothed cluster ETA, if any progress has been observed.
    #[must_use]
    pub fn eta(&self) -> Option<Duration> {
        self.eta.eta()
    }

    /// True once [`finish`](Self::finish) was called.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.run_done
    }

    /// Ranks currently flagged as stragglers.
    #[must_use]
    pub fn stragglers(&self) -> Vec<usize> {
        self.ranks
            .iter()
            .filter(|r| r.straggler)
            .map(|r| r.rank)
            .collect()
    }

    /// Every rank ever flagged (monotone history).
    #[must_use]
    pub fn stragglers_seen(&self) -> &BTreeSet<usize> {
        &self.stragglers_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat(rank: u32, round: u32, pairs: u64, elapsed_us: u64) -> Heartbeat {
        Heartbeat {
            rank,
            round,
            pairs,
            elapsed_us,
            ..Heartbeat::default()
        }
    }

    /// Drive `view` with healthy beats from every rank at `tick` spacing.
    fn healthy_rounds(view: &mut ClusterView, base: Instant, ticks: u64, tick: Duration) {
        for t in 1..=ticks {
            let now = base + tick * u32::try_from(t).expect("small tick count");
            for rank in 0..4u32 {
                view.fold_at(
                    &beat(rank, u32::try_from(t).expect("small"), t * 100, t * 100_000),
                    now,
                );
            }
        }
    }

    #[test]
    fn healthy_cluster_has_no_stragglers() {
        let base = Instant::now();
        let mut v = ClusterView::new(4, 10_000, Duration::from_millis(100));
        healthy_rounds(&mut v, base, 5, Duration::from_millis(100));
        v.refresh_at(base + Duration::from_millis(520));
        assert!(v.stragglers().is_empty(), "{:?}", v.stragglers());
        assert!(v.stragglers_seen().is_empty());
        assert_eq!(v.pairs_done(), 4 * 500);
        assert_eq!(v.round_max(), 5);
        assert!(v.eta().is_some());
    }

    #[test]
    fn silent_rank_goes_suspect_then_recovers_but_history_remains() {
        let base = Instant::now();
        let tick = Duration::from_millis(100);
        let mut v = ClusterView::new(4, 10_000, tick);
        healthy_rounds(&mut v, base, 3, tick);
        // Ranks 0,1,2 keep beating; rank 3 goes silent.
        for t in 4..=10u64 {
            let now = base + tick * u32::try_from(t).expect("small");
            for rank in 0..3u32 {
                v.fold_at(
                    &beat(rank, u32::try_from(t).expect("small"), t * 100, t * 100_000),
                    now,
                );
            }
        }
        let now = base + tick * 10;
        v.refresh_at(now);
        let r3 = &v.ranks()[3];
        assert!(r3.suspect, "700 ms silent with 100 ms interval");
        assert!(r3.straggler);
        assert_eq!(v.stragglers(), vec![3]);
        // Rank 3 resumes: flags clear, history stays.
        v.fold_at(&beat(3, 10, 1000, 1_000_000), now);
        v.refresh_at(now + Duration::from_millis(10));
        assert!(!v.ranks()[3].suspect);
        assert!(v.stragglers().is_empty());
        assert!(v.stragglers_seen().contains(&3));
    }

    #[test]
    fn round_lag_flags_a_straggler_even_while_beating() {
        let base = Instant::now();
        let tick = Duration::from_millis(100);
        let mut v = ClusterView::new(2, 1000, tick);
        for t in 1..=4u64 {
            let now = base + tick * u32::try_from(t).expect("small");
            v.fold_at(
                &beat(
                    0,
                    u32::try_from(t * 2).expect("small"),
                    t * 100,
                    t * 100_000,
                ),
                now,
            );
            v.fold_at(&beat(1, 1, 10, t * 100_000), now); // stuck in round 1
        }
        v.refresh_at(base + tick * 4 + Duration::from_millis(10));
        assert!(!v.ranks()[1].suspect, "it IS beating");
        assert!(v.ranks()[1].straggler, "but 7 rounds behind");
        assert!(v.stragglers_seen().contains(&1));
    }

    #[test]
    fn slow_rate_flags_a_straggler() {
        let base = Instant::now();
        let tick = Duration::from_millis(100);
        let mut v = ClusterView::new(4, 100_000, tick);
        for t in 1..=5u64 {
            let now = base + tick * u32::try_from(t).expect("small");
            for rank in 0..3u32 {
                v.fold_at(
                    &beat(
                        rank,
                        u32::try_from(t).expect("small"),
                        t * 1000,
                        t * 100_000,
                    ),
                    now,
                );
            }
            // Rank 3 beats on time and at the same round, but computes
            // pairs at a tenth the rate of its peers.
            v.fold_at(
                &beat(3, u32::try_from(t).expect("small"), t * 100, t * 100_000),
                now,
            );
        }
        v.refresh_at(base + tick * 5 + Duration::from_millis(10));
        let r3 = &v.ranks()[3];
        assert!(!r3.suspect);
        assert!(r3.straggler, "rate {:?} vs peers", r3.rate_ewma);
    }

    #[test]
    fn dead_and_done_ranks_are_never_flagged() {
        let base = Instant::now();
        let tick = Duration::from_millis(100);
        let mut v = ClusterView::new(3, 1000, tick);
        healthy_rounds_3(&mut v, base, 3, tick);
        v.mark_dead(1);
        let mut done_beat = beat(2, 3, 300, 300_000);
        done_beat.done = true;
        v.fold_at(&done_beat, base + tick * 3);
        // Long silence from everyone.
        v.refresh_at(base + tick * 60);
        assert!(v.ranks()[1].dead);
        assert!(!v.ranks()[1].straggler, "dead ranks are expected-silent");
        assert!(v.ranks()[2].done);
        assert!(!v.ranks()[2].straggler, "done ranks are expected-silent");
        assert!(v.ranks()[0].straggler, "rank 0 is genuinely missing");
    }

    fn healthy_rounds_3(view: &mut ClusterView, base: Instant, ticks: u64, tick: Duration) {
        for t in 1..=ticks {
            let now = base + tick * u32::try_from(t).expect("small");
            for rank in 0..3u32 {
                view.fold_at(
                    &beat(rank, u32::try_from(t).expect("small"), t * 100, t * 100_000),
                    now,
                );
            }
        }
    }

    #[test]
    fn reordered_stale_beats_never_rewind_progress() {
        let base = Instant::now();
        let mut v = ClusterView::new(1, 1000, Duration::from_millis(100));
        let mut hb_new = beat(0, 5, 500, 500_000);
        hb_new.counters.push(("c".into(), 50));
        hb_new.gauges.push(("g".into(), 9));
        v.fold_at(&hb_new, base + Duration::from_millis(500));
        // An older beat arrives late (reordered under faults).
        let mut hb_old = beat(0, 2, 200, 200_000);
        hb_old.counters.push(("c".into(), 20));
        hb_old.gauges.push(("g".into(), 3));
        v.fold_at(&hb_old, base + Duration::from_millis(510));
        let r = &v.ranks()[0];
        assert_eq!(r.round, 5);
        assert_eq!(r.pairs, 500);
        assert_eq!(r.counters.get("c"), Some(&50));
        assert_eq!(r.gauges.get("g"), Some(&9), "stale gauge ignored");
        assert_eq!(r.beats, 2, "stale beat still proves liveness");
        // A beat for a rank outside the mesh is ignored without panic.
        v.fold_at(&beat(17, 1, 1, 1), base);
        assert_eq!(v.ranks().len(), 1);
    }

    #[test]
    fn finish_freezes_flags() {
        let base = Instant::now();
        let mut v = ClusterView::new(2, 100, Duration::from_millis(10));
        v.fold_at(&beat(0, 1, 10, 10_000), base);
        v.refresh_at(base + Duration::from_secs(5));
        assert!(v.ranks()[0].straggler);
        v.finish();
        assert!(v.is_done());
        assert!(v.stragglers().is_empty());
        v.refresh_at(base + Duration::from_secs(60));
        assert!(v.stragglers().is_empty(), "refresh after finish is a no-op");
        assert!(v.stragglers_seen().contains(&0), "history survives finish");
    }
}
