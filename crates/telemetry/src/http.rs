//! Minimal std-only HTTP/1.0 status listener.
//!
//! Serves exactly two read-only endpoints — `GET /status` (the
//! `gnet-status/1` JSON document) and `GET /metrics` (Prometheus text
//! exposition 0.0.4) — from a single accept-loop thread. The server
//! renders nothing itself: the caller supplies a [`DocSource`] closure
//! invoked per request, so documents are always current and the server
//! stays decoupled from the cluster view's locking.
//!
//! Deliberately primitive: one request per connection
//! (`Connection: close`), 2-second socket timeouts, 4 KiB request cap.
//! The status plane must never become a way to wedge an inference run,
//! so every failure path drops the connection and keeps accepting.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Documents served by one scrape: rendered together so `/status` and
/// `/metrics` scraped back-to-back describe the same instant.
pub struct StatusDocs {
    /// The `gnet-status/1` JSON document.
    pub status_json: String,
    /// The Prometheus text exposition.
    pub metrics: String,
}

/// Per-request document renderer supplied by the caller.
pub type DocSource = Arc<dyn Fn() -> StatusDocs + Send + Sync>;

/// Per-connection socket timeout: a stalled scraper must not hold the
/// single accept thread hostage.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request head we will read before answering.
const MAX_REQUEST: usize = 4096;

/// A running status listener; dropping it stops the accept thread.
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `spec` (e.g. `127.0.0.1:0`) and start serving `source`.
    pub fn bind(spec: &str, source: DocSource) -> std::io::Result<Self> {
        let listener = TcpListener::bind(spec)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gnet-status-http".into())
            .spawn(move || accept_loop(&listener, &stop_flag, &source))?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serving thread. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        // ordering: the accept thread re-checks the flag after every
        // accept; the wake-up connection below provides the hand-off.
        self.stop.store(true, Ordering::Relaxed);
        // Self-dial to unblock the accept call.
        if let Ok(s) = TcpStream::connect_timeout(&self.addr, SOCKET_TIMEOUT) {
            drop(s);
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, source: &DocSource) {
    for stream in listener.incoming() {
        // ordering: shutdown hand-off happens via the wake-up connection
        // itself; the flag only needs to be seen eventually.
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Serve inline: two tiny documents per request, and a per-socket
        // timeout bounds how long a bad client can occupy the loop.
        let _ = serve_one(stream, source);
    }
}

fn serve_one(mut stream: TcpStream, source: &DocSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the request head (blank line) or the cap.
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST {
            break;
        }
    }
    let request_line = std::str::from_utf8(&head)
        .ok()
        .and_then(|t| t.lines().next())
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (code, reason, content_type, body) = if method != "GET" {
        (
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_owned(),
        )
    } else {
        match path {
            "/status" => {
                let docs = source();
                (200, "OK", "application/json", docs.status_json)
            }
            "/metrics" => {
                let docs = source();
                (
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    docs.metrics,
                )
            }
            _ => (
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "try /status or /metrics\n".to_owned(),
            ),
        }
    };
    let header = format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect to status server");
        write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a head/body split");
        (head.to_owned(), body.to_owned())
    }

    fn test_server() -> StatusServer {
        let source: DocSource = Arc::new(|| StatusDocs {
            status_json: "{\"format\":\"gnet-status\"}".to_owned(),
            metrics: "gnet_up 1\n".to_owned(),
        });
        StatusServer::bind("127.0.0.1:0", source).expect("bind loopback")
    }

    #[test]
    fn serves_status_and_metrics_with_content_length() {
        let server = test_server();
        let (head, body) = get(server.addr(), "/status");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("Content-Type: application/json"), "{head}");
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
        assert_eq!(body, "{\"format\":\"gnet-status\"}");
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert_eq!(body, "gnet_up 1\n");
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected_politely() {
        let server = test_server();
        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        write!(s, "POST /status HTTP/1.0\r\n\r\n").expect("send");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
    }

    #[test]
    fn shutdown_joins_and_further_requests_fail() {
        let mut server = test_server();
        let addr = server.addr();
        let (head, _) = get(addr, "/status");
        assert!(head.starts_with("HTTP/1.0 200"));
        server.shutdown();
        server.shutdown(); // idempotent
                           // The listener is gone: connect or the request itself now fails.
        let refused = match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            Err(_) => true,
            Ok(mut s) => write!(s, "GET /status HTTP/1.0\r\n\r\n")
                .and_then(|()| {
                    let mut buf = String::new();
                    s.read_to_string(&mut buf).map(|_| buf)
                })
                .map_or(true, |buf| buf.is_empty()),
        };
        assert!(refused, "server still answering after shutdown");
    }
}
