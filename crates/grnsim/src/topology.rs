//! Ground-truth regulatory topologies.
//!
//! Regulatory edges are *directed* (regulator → target) and oriented from
//! lower to higher gene index, making every generated topology a DAG whose
//! topological order is simply `0..n` — which is what lets the kinetics
//! stage compute a steady state in one forward pass. The inference target
//! (what MI can recover) is the undirected skeleton.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which random topology family to draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TopologyKind {
    /// Preferential attachment (Barabási–Albert): heavy-tailed degrees,
    /// matching empirical transcriptional networks.
    #[default]
    ScaleFree,
    /// Erdős–Rényi with matched expected edge count, as a control.
    ErdosRenyi,
}

/// One directed regulatory interaction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Regulation {
    /// Regulator gene (always `< target`).
    pub regulator: u32,
    /// Target gene.
    pub target: u32,
    /// +1 activation, −1 repression.
    pub sign: i8,
    /// Interaction strength in `[0.4, 1.0]`.
    pub strength: f32,
}

/// A ground-truth regulatory network (DAG by construction).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthNetwork {
    genes: usize,
    regulations: Vec<Regulation>,
    /// `incoming[g]` = indices into `regulations` whose target is `g`.
    incoming: Vec<Vec<u32>>,
}

impl GroundTruthNetwork {
    /// Draw a topology of `genes` genes with roughly `avg_degree`
    /// undirected mean degree.
    ///
    /// # Panics
    /// Panics if `genes < 2` or `avg_degree <= 0`.
    pub fn generate(kind: TopologyKind, genes: usize, avg_degree: f64, seed: u64) -> Self {
        assert!(genes >= 2, "need at least two genes");
        assert!(avg_degree > 0.0, "average degree must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = match kind {
            TopologyKind::ScaleFree => scale_free_edges(genes, avg_degree, &mut rng),
            TopologyKind::ErdosRenyi => erdos_renyi_edges(genes, avg_degree, &mut rng),
        };
        Self::from_pairs(genes, &pairs, &mut rng)
    }

    /// Build from explicit undirected pairs, orienting low → high and
    /// drawing random signs/strengths.
    pub fn from_pairs(genes: usize, pairs: &[(u32, u32)], rng: &mut StdRng) -> Self {
        let mut regulations = Vec::with_capacity(pairs.len());
        let mut incoming = vec![Vec::new(); genes];
        let mut seen = std::collections::HashSet::new();
        for &(i, j) in pairs {
            assert!(i != j, "self-regulation is not representable");
            assert!(
                (i as usize) < genes && (j as usize) < genes,
                "edge out of range"
            );
            let (regulator, target) = if i < j { (i, j) } else { (j, i) };
            if !seen.insert((regulator, target)) {
                continue;
            }
            let sign: i8 = if rng.gen_bool(0.65) { 1 } else { -1 }; // activation-biased
            let strength = rng.gen_range(0.4f32..=1.0);
            incoming[target as usize].push(regulations.len() as u32);
            regulations.push(Regulation {
                regulator,
                target,
                sign,
                strength,
            });
        }
        Self {
            genes,
            regulations,
            incoming,
        }
    }

    /// Number of genes.
    pub fn genes(&self) -> usize {
        self.genes
    }

    /// All directed regulations.
    pub fn regulations(&self) -> &[Regulation] {
        &self.regulations
    }

    /// Regulations targeting gene `g`.
    pub fn regulators_of(&self, g: usize) -> impl Iterator<Item = &Regulation> + '_ {
        self.incoming[g]
            .iter()
            .map(move |&idx| &self.regulations[idx as usize])
    }

    /// Is `g` a root (no regulators)?
    pub fn is_root(&self, g: usize) -> bool {
        self.incoming[g].is_empty()
    }

    /// The undirected skeleton — the edge set MI-based inference targets.
    pub fn skeleton(&self) -> Vec<(u32, u32)> {
        self.regulations
            .iter()
            .map(|r| (r.regulator, r.target))
            .collect()
    }

    /// Undirected degree of each gene.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.genes];
        for r in &self.regulations {
            d[r.regulator as usize] += 1;
            d[r.target as usize] += 1;
        }
        d
    }
}

/// Barabási–Albert preferential attachment: each new node attaches
/// `m = avg_degree / 2` (rounded, ≥ 1) edges to existing nodes with
/// probability proportional to their current degree.
fn scale_free_edges(genes: usize, avg_degree: f64, rng: &mut StdRng) -> Vec<(u32, u32)> {
    let m = ((avg_degree / 2.0).round() as usize).max(1);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoint_pool: Vec<u32> = Vec::new();

    // Seed clique over the first m+1 nodes.
    let seed_n = (m + 1).min(genes);
    for i in 0..seed_n as u32 {
        for j in i + 1..seed_n as u32 {
            edges.push((i, j));
            endpoint_pool.push(i);
            endpoint_pool.push(j);
        }
    }

    for v in seed_n as u32..genes as u32 {
        let mut targets = std::collections::HashSet::new();
        let mut guard = 0;
        while targets.len() < m && guard < 100 * m {
            let t = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            targets.insert(t);
            guard += 1;
        }
        // HashSet iteration order is instance-random; sort for
        // reproducibility of both the edge order and the RNG consumption
        // downstream.
        let mut targets: Vec<u32> = targets.into_iter().collect();
        targets.sort_unstable();
        for &t in &targets {
            edges.push((t.min(v), t.max(v)));
            endpoint_pool.push(t);
            endpoint_pool.push(v);
        }
    }
    edges
}

/// Erdős–Rényi with expected edge count `genes · avg_degree / 2`, sampled
/// by index pairs.
fn erdos_renyi_edges(genes: usize, avg_degree: f64, rng: &mut StdRng) -> Vec<(u32, u32)> {
    let target_edges = ((genes as f64 * avg_degree) / 2.0).round() as usize;
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::with_capacity(target_edges);
    let max_possible = genes * (genes - 1) / 2;
    let want = target_edges.min(max_possible);
    while edges.len() < want {
        let i = rng.gen_range(0..genes as u32);
        let j = rng.gen_range(0..genes as u32);
        if i == j {
            continue;
        }
        let key = (i.min(j), i.max(j));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = GroundTruthNetwork::generate(TopologyKind::ScaleFree, 100, 4.0, 9);
        let b = GroundTruthNetwork::generate(TopologyKind::ScaleFree, 100, 4.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn edges_are_dag_oriented() {
        for kind in [TopologyKind::ScaleFree, TopologyKind::ErdosRenyi] {
            let net = GroundTruthNetwork::generate(kind, 200, 3.0, 5);
            for r in net.regulations() {
                assert!(r.regulator < r.target, "{kind:?}: must orient low → high");
                assert!((0.4..=1.0).contains(&r.strength));
                assert!(r.sign == 1 || r.sign == -1);
            }
        }
    }

    #[test]
    fn no_duplicate_edges() {
        let net = GroundTruthNetwork::generate(TopologyKind::ScaleFree, 300, 6.0, 2);
        let mut seen = std::collections::HashSet::new();
        for r in net.regulations() {
            assert!(seen.insert((r.regulator, r.target)), "duplicate regulation");
        }
    }

    #[test]
    fn average_degree_is_approximately_requested() {
        for kind in [TopologyKind::ScaleFree, TopologyKind::ErdosRenyi] {
            let net = GroundTruthNetwork::generate(kind, 1000, 4.0, 7);
            let mean = net.degrees().iter().sum::<usize>() as f64 / 1000.0;
            assert!((mean - 4.0).abs() < 1.0, "{kind:?}: mean degree {mean}");
        }
    }

    #[test]
    fn scale_free_has_heavier_tail_than_er() {
        let sf = GroundTruthNetwork::generate(TopologyKind::ScaleFree, 2000, 4.0, 3);
        let er = GroundTruthNetwork::generate(TopologyKind::ErdosRenyi, 2000, 4.0, 3);
        let max_sf = *sf.degrees().iter().max().unwrap();
        let max_er = *er.degrees().iter().max().unwrap();
        assert!(
            max_sf > 2 * max_er,
            "scale-free hub degree {max_sf} should dwarf ER max {max_er}"
        );
    }

    #[test]
    fn roots_exist_and_have_no_regulators() {
        let net = GroundTruthNetwork::generate(TopologyKind::ScaleFree, 50, 2.0, 1);
        assert!(
            net.is_root(0),
            "gene 0 can never have a lower-index regulator"
        );
        for g in 0..50 {
            if net.is_root(g) {
                assert_eq!(net.regulators_of(g).count(), 0);
            }
        }
    }

    #[test]
    fn skeleton_matches_regulations() {
        let net = GroundTruthNetwork::generate(TopologyKind::ErdosRenyi, 40, 3.0, 11);
        let sk = net.skeleton();
        assert_eq!(sk.len(), net.regulations().len());
        for (pair, reg) in sk.iter().zip(net.regulations()) {
            assert_eq!(*pair, (reg.regulator, reg.target));
        }
    }

    #[test]
    fn incoming_index_is_consistent() {
        let net = GroundTruthNetwork::generate(TopologyKind::ScaleFree, 120, 5.0, 13);
        let mut count = 0;
        for g in 0..net.genes() {
            for r in net.regulators_of(g) {
                assert_eq!(r.target as usize, g);
                count += 1;
            }
        }
        assert_eq!(count, net.regulations().len());
    }

    #[test]
    #[should_panic(expected = "at least two genes")]
    fn tiny_network_rejected() {
        let _ = GroundTruthNetwork::generate(TopologyKind::ScaleFree, 1, 2.0, 0);
    }
}
