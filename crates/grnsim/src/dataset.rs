//! Bundled synthetic datasets: matrix + ground truth + provenance.

use crate::kinetics::{simulate_matrix, Kinetics};
use crate::topology::{GroundTruthNetwork, TopologyKind};
use gnet_expr::{ExpressionMatrix, MissingPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Full configuration of a synthetic dataset.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GrnConfig {
    /// Number of genes `n`.
    pub genes: usize,
    /// Number of samples (experiments) `m`.
    pub samples: usize,
    /// Topology family.
    pub topology: TopologyKind,
    /// Target mean undirected degree.
    pub avg_degree: f64,
    /// Kinetic parameters of the expression simulation.
    pub kinetics: Kinetics,
    /// Number of measurement batches the samples are split into (1 = no
    /// batch structure). Real compendia aggregate hundreds of labs'
    /// arrays; each batch gets a global log-intensity shift.
    pub batches: usize,
    /// Standard deviation of the per-batch global shift (log space).
    pub batch_sd: f32,
}

impl GrnConfig {
    /// A small, fast default for tests and the quickstart example.
    pub fn small() -> Self {
        Self {
            genes: 100,
            samples: 200,
            topology: TopologyKind::ScaleFree,
            avg_degree: 3.0,
            kinetics: Kinetics::default(),
            batches: 1,
            batch_sd: 0.0,
        }
    }

    /// The paper's headline dimensions: 15,575 genes × 3,137 experiments
    /// (Arabidopsis thaliana ATH1 compendium scale). ~195 MB of f32 data.
    pub fn arabidopsis_like() -> Self {
        Self {
            genes: 15_575,
            samples: 3_137,
            topology: TopologyKind::ScaleFree,
            avg_degree: 4.0,
            kinetics: Kinetics::default(),
            batches: 1,
            batch_sd: 0.0,
        }
    }

    /// Same structure at a reduced gene count (sample count preserved),
    /// for sweeps on machines that cannot hold the full run.
    pub fn arabidopsis_like_scaled(genes: usize) -> Self {
        Self {
            genes,
            ..Self::arabidopsis_like()
        }
    }
}

/// A generated dataset: expression matrix plus its planted ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// Microarray-like log-intensity matrix.
    pub matrix: ExpressionMatrix,
    /// The ground-truth network the data was simulated from.
    pub truth: GroundTruthNetwork,
    /// Measurement batch of each sample (all zero when `batches == 1`).
    pub batch_labels: Vec<u32>,
    /// Configuration the dataset was drawn with.
    pub config: GrnConfig,
    /// Seed the dataset was drawn with.
    pub seed: u64,
}

impl SyntheticDataset {
    /// Generate a dataset. Topology and expression use decorrelated
    /// sub-seeds of `seed`, so the same topology can be re-simulated with
    /// different noise by varying only the high bits.
    pub fn generate(config: GrnConfig, seed: u64) -> Self {
        let truth = GroundTruthNetwork::generate(
            config.topology,
            config.genes,
            config.avg_degree,
            seed ^ 0x9E37_79B9_7F4A_7C15,
        );
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1);
        let mut flat = simulate_matrix(&truth, &config.kinetics, config.samples, &mut rng);

        // Batch structure: contiguous sample groups, each with a global
        // log-intensity shift (array brightness / lab effect) applied to
        // every gene — the confounder batch-centering exists to remove.
        let batches = config.batches.max(1);
        let mut batch_labels = vec![0u32; config.samples];
        if batches > 1 && config.batch_sd > 0.0 {
            let shifts: Vec<f32> = (0..batches)
                .map(|_| config.batch_sd * crate::kinetics::normal(&mut rng))
                .collect();
            let per = config.samples.div_ceil(batches);
            for s in 0..config.samples {
                let b = (s / per).min(batches - 1);
                batch_labels[s] = b as u32;
                for g in 0..config.genes {
                    flat[g * config.samples + s] += shifts[b];
                }
            }
        }

        let matrix =
            ExpressionMatrix::from_flat(config.genes, config.samples, flat, MissingPolicy::Error)
                .expect("simulation produces finite values");
        Self {
            matrix,
            truth,
            batch_labels,
            config,
            seed,
        }
    }

    /// The undirected ground-truth edge set (inference target).
    pub fn truth_edges(&self) -> Vec<(u32, u32)> {
        self.truth.skeleton()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_matches_config_shape() {
        let ds = SyntheticDataset::generate(GrnConfig::small(), 42);
        assert_eq!(ds.matrix.genes(), 100);
        assert_eq!(ds.matrix.samples(), 200);
        assert_eq!(ds.truth.genes(), 100);
        assert!(!ds.truth_edges().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticDataset::generate(GrnConfig::small(), 7);
        let b = SyntheticDataset::generate(GrnConfig::small(), 7);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.truth, b.truth);
        let c = SyntheticDataset::generate(GrnConfig::small(), 8);
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn headline_preset_has_paper_dimensions() {
        let cfg = GrnConfig::arabidopsis_like();
        assert_eq!(cfg.genes, 15_575);
        assert_eq!(cfg.samples, 3_137);
        let scaled = GrnConfig::arabidopsis_like_scaled(2048);
        assert_eq!(scaled.genes, 2048);
        assert_eq!(scaled.samples, 3_137);
    }

    #[test]
    fn coupled_pairs_carry_more_association_than_random_pairs() {
        let ds = SyntheticDataset::generate(
            GrnConfig {
                genes: 60,
                samples: 400,
                ..GrnConfig::small()
            },
            3,
        );
        // Mean |spearman| over true edges vs over random non-edges.
        let truth = ds.truth_edges();
        let edge_set: std::collections::HashSet<_> = truth.iter().cloned().collect();
        let mut edge_assoc = 0.0;
        for &(i, j) in &truth {
            edge_assoc +=
                gnet_expr::stats::spearman(ds.matrix.gene(i as usize), ds.matrix.gene(j as usize))
                    .abs();
        }
        edge_assoc /= truth.len() as f64;

        let mut non_assoc = 0.0;
        let mut count = 0;
        'outer: for i in 0..60u32 {
            for j in i + 1..60 {
                if !edge_set.contains(&(i, j)) {
                    non_assoc += gnet_expr::stats::spearman(
                        ds.matrix.gene(i as usize),
                        ds.matrix.gene(j as usize),
                    )
                    .abs();
                    count += 1;
                    if count >= 200 {
                        break 'outer;
                    }
                }
            }
        }
        non_assoc /= count as f64;
        // Background pairs are not fully independent — indirect (2-hop)
        // correlation through shared regulators is real signal the DPI
        // extension exists to prune — so only demand a clear separation.
        assert!(
            edge_assoc > 1.5 * non_assoc,
            "planted edges must be visibly coupled: edges {edge_assoc:.3} vs background {non_assoc:.3}"
        );
    }
}
