//! Synthetic gene-regulatory-network data for the reproduction.
//!
//! The paper's headline experiment consumes 3,137 Arabidopsis thaliana
//! ATH1 microarray hybridizations over 15,575 probed genes — a proprietary
//! compendium we cannot ship. The inference pipeline, however, only ever
//! sees an `n × m` matrix that it immediately rank-transforms, so *any*
//! realistic matrix with planted statistical dependencies exercises the
//! identical code path at the identical cost. This crate produces such
//! matrices mechanistically:
//!
//! * [`topology`] — ground-truth regulatory topologies: preferential-
//!   attachment (scale-free, the empirical shape of transcriptional
//!   networks) and Erdős–Rényi controls, oriented into a DAG so a steady
//!   state is well defined;
//! * [`kinetics`] — per-sample steady-state expression: root genes draw
//!   random condition-dependent activities, downstream genes respond to
//!   their regulators through saturating Hill-type transfer functions
//!   (activating or repressing) with multiplicative log-normal noise —
//!   i.e. log-intensity data with microarray-like marginals;
//! * [`dataset`] — the bundled `(ExpressionMatrix, ground-truth edges)`
//!   pair plus the `arabidopsis_like` preset matching the paper's exact
//!   dimensions.
//!
//! Because the truth is known, the reproduction can also report
//! precision/recall of the inferred network (experiment R10) — something
//! the original paper could not measure.

// cast-ok (crate-wide): generated data uses the pipeline's own u32 gene
// ids and f32 expression values, and topology sizing rounds f64 targets to
// small counts — the narrowing casts are the intended representation.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod dataset;
pub mod kinetics;
pub mod topology;

pub use dataset::{GrnConfig, SyntheticDataset};
pub use topology::{GroundTruthNetwork, TopologyKind};
