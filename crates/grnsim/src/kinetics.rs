//! Steady-state expression synthesis over a ground-truth DAG.
//!
//! Each sample (microarray experiment) is an independent random *condition*:
//! root genes draw condition-specific activities from a log-normal, and
//! every downstream gene responds to its regulators through a saturating
//! Hill transfer function, with multiplicative log-normal measurement
//! noise. All arithmetic happens in log-intensity space, which is both how
//! microarray data is analysed in practice and what gives the profiles
//! realistic (roughly Gaussian) marginals.
//!
//! For gene `g` with regulators `r` in sample `s`:
//!
//! ```text
//! logx[g] = Σ_r  sign_r · strength_r · gain · hill(logx[r])  +  σ · ε
//! hill(v) = v^h / (K^h + v^h)  applied to the regulator's activity
//!           mapped through a logistic into (0, 1), recentred to (−½, ½)
//! ```
//!
//! The Hill exponent controls how nonlinear (and therefore how invisible
//! to Pearson correlation, yet visible to MI) the planted dependencies
//! are.

use crate::topology::GroundTruthNetwork;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Kinetic parameters of the expression simulation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Kinetics {
    /// Standard deviation of root-gene condition activity (log space).
    pub root_sd: f32,
    /// Regulatory gain applied to each transfer-function output.
    pub gain: f32,
    /// Hill exponent `h ≥ 1` (1 = near-linear response, 4 = switch-like).
    pub hill: f32,
    /// Multiplicative measurement-noise SD (log space).
    pub noise_sd: f32,
}

impl Default for Kinetics {
    fn default() -> Self {
        Self {
            root_sd: 1.0,
            gain: 2.0,
            hill: 2.0,
            noise_sd: 0.25,
        }
    }
}

impl Kinetics {
    /// Validate parameter ranges.
    ///
    /// # Panics
    /// Panics on non-positive `root_sd`/`gain`, `hill < 1`, or negative
    /// noise.
    pub fn validate(&self) {
        assert!(self.root_sd > 0.0, "root_sd must be positive");
        assert!(self.gain > 0.0, "gain must be positive");
        assert!(
            self.hill >= 1.0,
            "hill exponent below 1 is not a saturating response"
        );
        assert!(self.noise_sd >= 0.0, "noise_sd cannot be negative");
    }

    /// Saturating transfer function: map a log activity through a logistic
    /// squash, then a Hill curve, recentred to `(−0.5, 0.5)`.
    #[inline]
    pub fn transfer(&self, log_activity: f32) -> f32 {
        // Logistic squash into (0, 1) keeps the Hill input positive.
        let u = 1.0 / (1.0 + (-log_activity).exp());
        let uh = u.powf(self.hill);
        let kh = 0.5f32.powf(self.hill);
        uh / (kh + uh) - 0.5
    }
}

/// Standard normal draw (Box–Muller).
pub(crate) fn normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Simulate one sample: the per-gene log-intensity vector, in gene order.
///
/// Exploits the DAG orientation (regulator index < target index): a single
/// forward sweep visits genes in topological order.
pub fn simulate_sample(net: &GroundTruthNetwork, k: &Kinetics, rng: &mut StdRng) -> Vec<f32> {
    let n = net.genes();
    let mut logx = vec![0.0f32; n];
    for g in 0..n {
        let mut v = if net.is_root(g) {
            k.root_sd * normal(rng)
        } else {
            let mut acc = 0.0f32;
            for r in net.regulators_of(g) {
                acc += r.sign as f32 * r.strength * k.gain * k.transfer(logx[r.regulator as usize]);
            }
            acc
        };
        if k.noise_sd > 0.0 {
            v += k.noise_sd * normal(rng);
        }
        logx[g] = v;
    }
    logx
}

/// Simulate `samples` conditions into a flat gene-major matrix
/// (`genes × samples`).
pub fn simulate_matrix(
    net: &GroundTruthNetwork,
    k: &Kinetics,
    samples: usize,
    rng: &mut StdRng,
) -> Vec<f32> {
    k.validate();
    let n = net.genes();
    let mut flat = vec![0.0f32; n * samples];
    for s in 0..samples {
        let col = simulate_sample(net, k, rng);
        for g in 0..n {
            flat[g * samples + s] = col[g];
        }
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> GroundTruthNetwork {
        GroundTruthNetwork::generate(TopologyKind::ScaleFree, 30, 3.0, seed)
    }

    #[test]
    fn transfer_is_bounded_and_monotone() {
        let k = Kinetics::default();
        let mut prev = f32::NEG_INFINITY;
        for i in -50..=50 {
            let v = k.transfer(i as f32 / 5.0);
            assert!((-0.5..=0.5).contains(&v), "transfer out of range: {v}");
            assert!(v >= prev, "transfer must be monotone");
            prev = v;
        }
        assert!(k.transfer(0.0).abs() < 1e-6, "centred at zero activity");
    }

    #[test]
    fn higher_hill_is_more_switch_like() {
        let soft = Kinetics {
            hill: 1.0,
            ..Kinetics::default()
        };
        let hard = Kinetics {
            hill: 6.0,
            ..Kinetics::default()
        };
        // Near zero the hard curve is steeper…
        let d_soft = soft.transfer(0.3) - soft.transfer(-0.3);
        let d_hard = hard.transfer(0.3) - hard.transfer(-0.3);
        assert!(d_hard > d_soft);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let net = small_net(1);
        let k = Kinetics::default();
        let a = simulate_matrix(&net, &k, 20, &mut StdRng::seed_from_u64(5));
        let b = simulate_matrix(&net, &k, 20, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn all_outputs_finite() {
        let net = small_net(2);
        let k = Kinetics::default();
        let flat = simulate_matrix(&net, &k, 100, &mut StdRng::seed_from_u64(8));
        assert!(flat.iter().all(|v| v.is_finite()));
        assert_eq!(flat.len(), 30 * 100);
    }

    #[test]
    fn regulated_gene_tracks_its_regulator() {
        // Hand-built two-gene chain with strong activation, no noise.
        let mut rng = StdRng::seed_from_u64(3);
        let net = GroundTruthNetwork::from_pairs(2, &[(0, 1)], &mut rng);
        let k = Kinetics {
            noise_sd: 0.0,
            ..Kinetics::default()
        };
        let mut sim_rng = StdRng::seed_from_u64(4);
        let flat = simulate_matrix(&net, &k, 500, &mut sim_rng);
        let x: Vec<f32> = flat[0..500].to_vec();
        let y: Vec<f32> = flat[500..1000].to_vec();
        let r = gnet_expr::stats::spearman(&x, &y).abs();
        assert!(
            r > 0.95,
            "noise-free chain must be near-deterministic, |ρ_s|={r}"
        );
    }

    #[test]
    fn noise_weakens_the_association() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = GroundTruthNetwork::from_pairs(2, &[(0, 1)], &mut rng);
        let quiet = Kinetics {
            noise_sd: 0.05,
            ..Kinetics::default()
        };
        let loud = Kinetics {
            noise_sd: 2.0,
            ..Kinetics::default()
        };
        let f1 = simulate_matrix(&net, &quiet, 800, &mut StdRng::seed_from_u64(6));
        let f2 = simulate_matrix(&net, &loud, 800, &mut StdRng::seed_from_u64(6));
        let r1 = gnet_expr::stats::spearman(&f1[..800], &f1[800..]).abs();
        let r2 = gnet_expr::stats::spearman(&f2[..800], &f2[800..]).abs();
        assert!(
            r1 > r2,
            "more noise must weaken the dependency ({r1} vs {r2})"
        );
    }

    #[test]
    fn unconnected_genes_stay_independent() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = GroundTruthNetwork::from_pairs(4, &[(0, 1), (2, 3)], &mut rng);
        let k = Kinetics::default();
        let flat = simulate_matrix(&net, &k, 3000, &mut StdRng::seed_from_u64(10));
        let g0: Vec<f32> = flat[0..3000].to_vec();
        let g2: Vec<f32> = flat[6000..9000].to_vec();
        let r = gnet_expr::stats::spearman(&g0, &g2).abs();
        assert!(
            r < 0.08,
            "cross-component genes must stay independent, |ρ_s|={r}"
        );
    }

    #[test]
    #[should_panic(expected = "hill exponent")]
    fn invalid_kinetics_rejected() {
        let k = Kinetics {
            hill: 0.5,
            ..Kinetics::default()
        };
        let net = small_net(4);
        let _ = simulate_matrix(&net, &k, 1, &mut StdRng::seed_from_u64(1));
    }
}
