//! Command implementations behind the `gnet` binary.
//!
//! Everything lives in the library so the commands are unit-testable; the
//! binary (`src/bin/gnet.rs`) only parses `std::env::args` into an
//! [`args::ArgMap`] and dispatches.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::ArgMap;
pub use commands::{
    cmd_analyze, cmd_bench, cmd_conformance, cmd_generate, cmd_infer, cmd_predict, cmd_score,
    cmd_simd, cmd_stats, cmd_status, cmd_topology, cmd_trace_report, cmd_update, cmd_worker,
    CliError,
};
