//! The five `gnet` subcommands.

use crate::args::{ArgError, ArgMap};
use gnet_cluster::{
    infer_network_distributed_faulty, infer_network_distributed_live,
    infer_network_distributed_traced, run_worker, serve_coordinator, TelemetryPlane, TelemetrySpec,
    DEFAULT_PEER_TIMEOUT,
};
use gnet_core::config::NullStrategy;
use gnet_core::{
    build_state, infer_network_durable, infer_network_traced, update_durable, CheckpointStore,
    InferenceConfig, StateError, StateStore, UpdateMode,
};
use gnet_expr::io as expr_io;
use gnet_expr::{ExpressionMatrix, MissingPolicy};
use gnet_graph::dpi::dpi_prune;
use gnet_graph::io as graph_io;
use gnet_graph::{recovery_score, Edge, GeneNetwork};
use gnet_grnsim::{GrnConfig, SyntheticDataset, TopologyKind};
use gnet_mi::MiKernel;
use gnet_parallel::SchedulerPolicy;
use gnet_phi::scenarios;
use gnet_trace::{diag_chunk, EwmaEta, Progress, Recorder};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};

/// Any failure a command can produce, rendered for the terminal.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        Self(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        Self(format!("I/O error: {e}"))
    }
}

fn fail<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Create an output file, naming the path in the error — a bare
/// "permission denied" with no path is useless in a pipeline log.
fn create_file(path: &str) -> Result<File, CliError> {
    File::create(path).map_err(|e| CliError(format!("cannot create {path}: {e}")))
}

/// `gnet generate` — synthesize a ground-truth GRN dataset.
///
/// Options: `--genes` `--samples` `--seed` `--avg-degree`
/// `--topology scale-free|erdos-renyi` `--out FILE` `--truth FILE`.
pub fn cmd_generate(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let genes = args.get_or("genes", 200usize)?;
    let samples = args.get_or("samples", 300usize)?;
    let seed = args.get_or("seed", 42u64)?;
    let avg_degree = args.get_or("avg-degree", 3.0f64)?;
    let topology = match args.get("topology").unwrap_or("scale-free") {
        "scale-free" => TopologyKind::ScaleFree,
        "erdos-renyi" => TopologyKind::ErdosRenyi,
        other => return fail(format!("unknown topology {other:?}")),
    };
    let batches = args.get_or("batches", 1usize)?;
    let batch_sd = args.get_or("batch-sd", 0.0f32)?;
    let matrix_path = args.require("out")?.to_string();
    let truth_path = args.get("truth").map(str::to_string);
    args.reject_unknown()?;

    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes,
            samples,
            topology,
            avg_degree,
            batches,
            batch_sd,
            ..GrnConfig::small()
        },
        seed,
    );
    expr_io::write_tsv(&ds.matrix, BufWriter::new(create_file(&matrix_path)?))
        .map_err(|e| CliError(format!("cannot write {matrix_path}: {e}")))?;
    writeln!(out, "wrote {genes}×{samples} matrix to {matrix_path}")?;

    if let Some(path) = truth_path {
        let truth_net = GeneNetwork::from_edges(
            genes,
            ds.matrix.gene_names().to_vec(),
            ds.truth_edges()
                .into_iter()
                .map(|(a, b)| Edge::new(a, b, 1.0)),
        );
        graph_io::write_edge_list(&truth_net, BufWriter::new(create_file(&path)?))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        writeln!(
            out,
            "wrote {} ground-truth edges to {path}",
            truth_net.edge_count()
        )?;
    }
    Ok(())
}

fn load_matrix(path: &str) -> Result<ExpressionMatrix, CliError> {
    let file = File::open(path).map_err(|e| CliError(format!("cannot open {path}: {e}")))?;
    expr_io::read_tsv(file, true, MissingPolicy::MeanImpute)
        .map_err(|e| CliError(format!("cannot read {path}: {e}")))
}

fn config_from_args(args: &ArgMap) -> Result<InferenceConfig, CliError> {
    let mut cfg = InferenceConfig {
        bins: args.get_or("bins", 10usize)?,
        spline_order: args.get_or("order", 3usize)?,
        permutations: args.get_or("q", 30usize)?,
        alpha: args.get_or("alpha", 0.01f64)?,
        seed: args.get_or("seed", InferenceConfig::default().seed)?,
        ..InferenceConfig::default()
    };
    if let Some(t) = args.get("threshold") {
        cfg.mi_threshold = Some(
            t.parse()
                .map_err(|_| CliError(format!("bad --threshold {t:?}")))?,
        );
    }
    if let Some(t) = args.get("threads") {
        cfg.threads = Some(
            t.parse()
                .map_err(|_| CliError(format!("bad --threads {t:?}")))?,
        );
    }
    if let Some(t) = args.get("tile") {
        cfg.tile_size = Some(
            t.parse()
                .map_err(|_| CliError(format!("bad --tile {t:?}")))?,
        );
    }
    cfg.kernel = match args.get("kernel").unwrap_or("vector") {
        "vector" => MiKernel::VectorDense,
        "scalar" => MiKernel::ScalarSparse,
        other => return fail(format!("unknown kernel {other:?} (vector|scalar)")),
    };
    let slug = args.get("scheduler").unwrap_or("dynamic");
    cfg.scheduler = SchedulerPolicy::from_slug(slug)
        .ok_or_else(|| CliError(format!("unknown scheduler {slug:?}")))?;
    if args.flag("early-exit") {
        cfg.null_strategy = NullStrategy::EarlyExit;
    }
    Ok(cfg)
}

/// Build the progress sink installed behind `gnet infer --progress`: a
/// single stderr status line (tiles done / total / percent / ETA),
/// rewritten in place and rate-limited to ~5 updates per second. The
/// final update (done == total) is always printed.
///
/// The ETA is EWMA-smoothed over per-chunk durations ([`EwmaEta`]) so a
/// rate change mid-run — early-exit pruning kicking in, a machine that
/// warms up or gets loaded — moves the estimate toward the *recent*
/// rate instead of the whole-run mean the raw `Progress::eta` reports.
///
/// Each repaint goes through [`gnet_trace::diag_chunk`], the process-wide
/// line-buffered stderr writer, so a concurrently-printing rank or thread
/// can never splice its output into the middle of the progress line.
fn progress_sink() -> impl Fn(Progress) + Send + Sync + 'static {
    let state = std::sync::Mutex::new((EwmaEta::new(), None::<std::time::Instant>));
    move |p: Progress| {
        let mut state = state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let eta_estimate = state.0.update(p);
        let due = p.done >= p.total
            || state
                .1
                .is_none_or(|t| t.elapsed() >= std::time::Duration::from_millis(200));
        if !due {
            return;
        }
        state.1 = Some(std::time::Instant::now());
        let eta = match eta_estimate {
            Some(d) => format!("{d:.0?}"),
            None => "?".to_string(),
        };
        let mut line = format!(
            "\rtiles {}/{} ({:3.0}%)  ETA {eta}    ",
            p.done,
            p.total,
            p.fraction() * 100.0
        );
        if p.done >= p.total {
            line.push('\n');
        }
        diag_chunk(&line);
    }
}

/// `gnet infer` — run the pipeline on a TSV matrix.
///
/// Options: `--input FILE` `--output FILE` plus the config options of
/// [`config_from_args`], `--dpi EPS` for post-pruning, `--ranks P`
/// to run over the simulated cluster instead of shared memory, and the
/// observability options `--trace FILE` (NDJSON event stream),
/// `--metrics FILE` (metrics summary JSON), `--progress` (live stderr
/// status line with an EWMA-smoothed ETA). With `--ranks`,
/// `--trace-dir DIR` writes one NDJSON stream per rank plus a
/// `manifest.json` (analyse with `gnet trace-report --trace-dir DIR`).
///
/// Fault tolerance: `--checkpoint-dir DIR` enables durable checkpoints
/// every `--checkpoint-every N` tiles (shared-memory path), `--resume`
/// continues from the checkpoint in that directory, and
/// `--fault-plan PLAN` injects a deterministic, replayable fault plan
/// (see `gnet_fault`) into either execution path.
///
/// Multi-process: `--listen ADDR` (with `--ranks P`, `P ≥ 2`) binds a
/// TCP coordinator instead of running all ranks in-process; it prints
/// `listening on IP:PORT`, waits for `P − 1` `gnet worker --connect`
/// processes, and produces the byte-identical edge set.
///
/// Live telemetry (with `--ranks`, in-process or `--listen`):
/// `--status-addr ADDR` serves `/status` (gnet-status/1 JSON) and
/// `/metrics` (Prometheus text) over HTTP and prints
/// `status listening on IP:PORT`; `--status-file FILE` atomically
/// rewrites the same JSON document on every heartbeat interval;
/// `--status-interval-ms N` tunes the heartbeat cadence (default 250).
/// Read either surface with `gnet status`. Telemetry is observational
/// only: the edge set is byte-identical with it on or off.
///
/// Incremental: `--save-state DIR` runs the canonical serial scan and
/// persists an updatable state bundle alongside the edge list, so later
/// appends go through `gnet update` instead of a rebuild. Incompatible
/// with `--ranks`, `--checkpoint-dir`, and `--early-exit`.
pub fn cmd_infer(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.require("input")?.to_string();
    let output = args.require("output")?.to_string();
    let dpi: Option<f32> = match args.get("dpi") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError(format!("bad --dpi {raw:?}")))?,
        ),
        None => None,
    };
    let ranks: Option<usize> = match args.get("ranks") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError(format!("bad --ranks {raw:?}")))?,
        ),
        None => None,
    };
    let trace_path = args.get("trace").map(str::to_string);
    let metrics_path = args.get("metrics").map(str::to_string);
    let progress = args.flag("progress");
    if ranks.is_some() && (trace_path.is_some() || metrics_path.is_some() || progress) {
        return fail("--trace/--metrics/--progress instrument the shared-memory pipeline and cannot be combined with --ranks");
    }
    let trace_dir = args.get("trace-dir").map(str::to_string);
    if trace_dir.is_some() && ranks.is_none() {
        return fail("--trace-dir writes one stream per rank and needs --ranks; use --trace FILE for the shared-memory pipeline");
    }
    let listen = args.get("listen").map(str::to_string);
    if listen.is_some() && ranks.is_none_or(|p| p < 2) {
        return fail("--listen starts a multi-process coordinator and needs --ranks P with P >= 2");
    }
    let status_addr = args.get("status-addr").map(str::to_string);
    let status_file = args.get("status-file").map(str::to_string);
    let status_interval_ms = args.get_or("status-interval-ms", 250u64)?;
    let telemetry = status_addr.is_some() || status_file.is_some();
    if telemetry && ranks.is_none() {
        return fail("--status-addr/--status-file stream live telemetry from the distributed path and need --ranks");
    }
    if args.get("status-interval-ms").is_some() && !telemetry {
        return fail("--status-interval-ms needs --status-addr or --status-file");
    }
    if status_interval_ms == 0 {
        return fail("--status-interval-ms must be at least 1");
    }
    if telemetry && trace_dir.is_some() && listen.is_none() {
        return fail("--status-* with --trace-dir needs the multi-process path (--listen); the in-process driver wires one or the other");
    }
    let checkpoint_dir = args.get("checkpoint-dir").map(str::to_string);
    let checkpoint_every = args.get_or("checkpoint-every", 8usize)?;
    let resume = args.flag("resume");
    if checkpoint_every == 0 {
        return fail("--checkpoint-every must be at least 1 tile");
    }
    if (resume || args.get("checkpoint-every").is_some()) && checkpoint_dir.is_none() {
        return fail("--resume/--checkpoint-every need --checkpoint-dir");
    }
    if ranks.is_some() && checkpoint_dir.is_some() {
        return fail("checkpoints cover the shared-memory pipeline; the distributed path (--ranks) recovers via rank failover instead");
    }
    let save_state = args.get("save-state").map(str::to_string);
    if save_state.is_some() && ranks.is_some() {
        return fail("--save-state builds the canonical serial state bundle and cannot be combined with --ranks");
    }
    if save_state.is_some() && checkpoint_dir.is_some() {
        return fail("--save-state is itself durable; drop --checkpoint-dir");
    }
    let fault_plan = match args.get("fault-plan") {
        Some(raw) => Some(
            gnet_fault::FaultPlan::parse(raw)
                .map_err(|e| CliError(format!("bad --fault-plan: {e}")))?,
        ),
        None => None,
    };
    let quantile = args.flag("quantile-normalize");
    let center_batches: Option<usize> = match args.get("center-batches") {
        Some(raw) => {
            let b: usize = raw
                .parse()
                .map_err(|_| CliError(format!("bad --center-batches {raw:?}")))?;
            if b < 1 {
                return fail("--center-batches needs at least one batch");
            }
            Some(b)
        }
        None => None,
    };
    let cfg = config_from_args(args)?;
    if save_state.is_some() && !matches!(cfg.null_strategy, NullStrategy::ExactFull) {
        return fail("--save-state needs the exact-full pooled null (drop --early-exit): an updatable state must keep the pooled moments");
    }
    args.reject_unknown()?;

    let mut matrix = load_matrix(&input)?;
    writeln!(
        out,
        "loaded {} genes × {} samples from {input}",
        matrix.genes(),
        matrix.samples()
    )?;

    if quantile {
        matrix = gnet_expr::normalize::quantile_normalize(&matrix);
        writeln!(out, "quantile-normalized {} samples", matrix.samples())?;
    }
    if let Some(batches) = center_batches {
        // Contiguous equal batches, matching `gnet generate`'s layout.
        let per = matrix.samples().div_ceil(batches);
        let labels: Vec<u32> = (0..matrix.samples())
            .map(|s| {
                u32::try_from((s / per).min(batches - 1)).expect("batch count fits the u32 label")
            })
            .collect();
        matrix = gnet_expr::normalize::center_batches(&matrix, &labels);
        writeln!(out, "centered {batches} contiguous batches")?;
    }

    // One recorder serves all three observability options; without any of
    // them it is the inert handle and the run is uninstrumented.
    let rec = if trace_path.is_some() || metrics_path.is_some() || progress {
        if progress {
            Recorder::enabled_with_progress(progress_sink())
        } else {
            Recorder::enabled()
        }
    } else {
        Recorder::disabled()
    };

    let injector = match &fault_plan {
        Some(plan) => gnet_fault::FaultInjector::from_plan_traced(plan, &rec),
        None => gnet_fault::FaultInjector::none(),
    };

    // The live telemetry plane (ISSUE 10): a `--status-file` JSON
    // document and/or a `/status` + `/metrics` HTTP listener, fed by
    // in-band worker heartbeats. Purely observational — the edge set is
    // byte-identical with or without it.
    let mut plane = if telemetry {
        let spec = TelemetrySpec {
            status_addr: status_addr.clone(),
            status_file: status_file.as_ref().map(std::path::PathBuf::from),
            interval: std::time::Duration::from_millis(status_interval_ms),
        };
        let genes = matrix.genes() as u64;
        let p = ranks.expect("telemetry requires --ranks (validated above)");
        let plane = TelemetryPlane::start(&spec, p, genes * genes.saturating_sub(1) / 2)
            .map_err(|e| CliError(format!("cannot start the status plane: {e}")))?;
        if let Some(addr) = plane.status_addr() {
            // Announced on stdout (and flushed) so a harness scraping
            // mid-run can learn the ephemeral port, mirroring the
            // `listening on` line of the --listen coordinator.
            writeln!(out, "status listening on {addr}")?;
            out.flush()?;
        }
        Some(plane)
    } else {
        None
    };

    let (mut network, summary) = match ranks {
        Some(p) => {
            let r = if let Some(addr) = &listen {
                let listener = std::net::TcpListener::bind(addr.as_str())
                    .map_err(|e| CliError(format!("cannot bind {addr}: {e}")))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| CliError(format!("cannot resolve bound address: {e}")))?;
                // Announced before the accept loop blocks, and flushed so
                // a launcher reading this pipe can start the workers.
                writeln!(out, "listening on {local}")?;
                out.flush()?;
                serve_coordinator(
                    &listener,
                    &matrix,
                    &cfg,
                    p,
                    fault_plan.as_ref(),
                    &rec,
                    DEFAULT_PEER_TIMEOUT,
                    trace_dir.as_deref().map(std::path::Path::new),
                    plane.as_ref(),
                )
            } else {
                match (&trace_dir, &plane) {
                    (Some(dir), _) => infer_network_distributed_traced(
                        &matrix,
                        &cfg,
                        p,
                        &injector,
                        &rec,
                        DEFAULT_PEER_TIMEOUT,
                        std::path::Path::new(dir),
                    ),
                    (None, Some(live)) => infer_network_distributed_live(
                        &matrix,
                        &cfg,
                        p,
                        &injector,
                        &rec,
                        DEFAULT_PEER_TIMEOUT,
                        live,
                    ),
                    (None, None) => infer_network_distributed_faulty(
                        &matrix,
                        &cfg,
                        p,
                        &injector,
                        &rec,
                        DEFAULT_PEER_TIMEOUT,
                    ),
                }
            }
            .map_err(|e| CliError(e.to_string()))?;
            if let Some(dir) = &trace_dir {
                writeln!(out, "wrote {p} per-rank trace streams + manifest to {dir}")?;
            }
            let pairs: u64 = r.rank_stats.iter().map(|s| s.pairs).sum();
            let mut summary = format!("{} ranks, {} pairs, I* = {:.4}", p, pairs, r.threshold);
            if !r.crashed_ranks.is_empty() {
                summary.push_str(&format!(
                    " (recovered from {} lost rank(s): {:?})",
                    r.crashed_ranks.len(),
                    r.crashed_ranks
                ));
            }
            (r.network, summary)
        }
        None if save_state.is_some() => {
            let dir = save_state.as_deref().expect("guarded by the match arm");
            let t0 = std::time::Instant::now();
            let state = build_state(&matrix, &cfg);
            let store = StateStore::with_faults(dir, injector.clone(), &rec);
            store.save(&state).map_err(|e| CliError(e.to_string()))?;
            let summary = format!(
                "{} pairs in {:?}, I* = {:.4} [updatable state saved to {dir}]",
                state.total_pairs(),
                t0.elapsed(),
                state.threshold()
            );
            (state.network(), summary)
        }
        None => match &checkpoint_dir {
            Some(dir) => {
                let store = CheckpointStore::with_faults(dir, injector.clone(), &rec);
                let r = infer_network_durable(&matrix, &cfg, &store, checkpoint_every, resume, &rec)
                    .map_err(|e| match e {
                        gnet_core::CheckpointError::Interrupted { tiles_done } => CliError(format!(
                            "run interrupted after {tiles_done} tile(s); checkpoint saved in {dir} — rerun with --resume to continue"
                        )),
                        other => CliError(other.to_string()),
                    })?;
                (
                    r.network,
                    format!(
                        "{} pairs in {:?} ({:.0} pairs/s), I* = {:.4} [checkpointed every {checkpoint_every} tiles]",
                        r.stats.pairs,
                        r.stats.total_time(),
                        r.stats.pair_rate(),
                        r.stats.threshold
                    ),
                )
            }
            None => {
                let r = infer_network_traced(&matrix, &cfg, &rec);
                (
                    r.network,
                    format!(
                        "{} pairs in {:?} ({:.0} pairs/s), I* = {:.4}",
                        r.stats.pairs,
                        r.stats.total_time(),
                        r.stats.pair_rate(),
                        r.stats.threshold
                    ),
                )
            }
        },
    };
    writeln!(out, "{summary}")?;

    if let Some(mut live) = plane.take() {
        live.finish()
            .map_err(|e| CliError(format!("cannot finalize the status plane: {e}")))?;
        if let Some(path) = &status_file {
            writeln!(out, "final status snapshot in {path}")?;
        }
    }

    if let Some(path) = &trace_path {
        let mut w = BufWriter::new(create_file(path)?);
        rec.write_ndjson(&mut w)?;
        w.flush()?;
        writeln!(out, "wrote trace events to {path}")?;
    }
    if let Some(path) = &metrics_path {
        let mut w = BufWriter::new(create_file(path)?);
        rec.write_metrics_json(&mut w)?;
        w.flush()?;
        writeln!(out, "wrote metrics to {path}")?;
    }

    if let Some(eps) = dpi {
        let before = network.edge_count();
        network = dpi_prune(&network, eps);
        writeln!(
            out,
            "DPI(ε={eps}): {before} → {} edges",
            network.edge_count()
        )?;
    }

    graph_io::write_edge_list(&network, BufWriter::new(create_file(&output)?))
        .map_err(|e| CliError(format!("cannot write {output}: {e}")))?;
    writeln!(out, "wrote {} edges to {output}", network.edge_count())?;
    Ok(())
}

/// `gnet update` — apply an incremental append to a saved state bundle.
///
/// Options: `--state DIR` (bundle written by `gnet infer --save-state`),
/// `--append FILE` (TSV holding the appended genes or samples),
/// `--output FILE` (updated edge list), `--mode genes|samples`
/// (auto-detected from the append's shape when unambiguous),
/// `--checkpoint-every N` (durable progress every N evaluated pairs,
/// default 64), `--resume` (continue an interrupted update from its
/// progress file), and `--fault-plan PLAN` (deterministic fault
/// injection, e.g. `update-crash(boundary=B)`).
///
/// The updated bundle and edge list are byte-identical to a from-scratch
/// `gnet infer --save-state` over the concatenated dataset — the
/// batch-equivalence contract pinned by conformance family 6 — but a
/// gene append scans only the `g·(N−g) + g·(g−1)/2` new-pair frontier.
pub fn cmd_update(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let state_dir = args.require("state")?.to_string();
    let append_path = args.require("append")?.to_string();
    let output = args.require("output")?.to_string();
    let mode = match args.get("mode") {
        None => None,
        Some("genes") => Some(UpdateMode::Genes),
        Some("samples") => Some(UpdateMode::Samples),
        Some(other) => return fail(format!("unknown --mode {other:?} (genes|samples)")),
    };
    let checkpoint_every = args.get_or("checkpoint-every", 64usize)?;
    if checkpoint_every == 0 {
        return fail("--checkpoint-every must be at least 1 pair");
    }
    let resume = args.flag("resume");
    let fault_plan = match args.get("fault-plan") {
        Some(raw) => Some(
            gnet_fault::FaultPlan::parse(raw)
                .map_err(|e| CliError(format!("bad --fault-plan: {e}")))?,
        ),
        None => None,
    };
    args.reject_unknown()?;

    let append = load_matrix(&append_path)?;
    writeln!(
        out,
        "loaded {} genes × {} samples to append from {append_path}",
        append.genes(),
        append.samples()
    )?;

    let rec = Recorder::disabled();
    let injector = match &fault_plan {
        Some(plan) => gnet_fault::FaultInjector::from_plan_traced(plan, &rec),
        None => gnet_fault::FaultInjector::none(),
    };
    let store = StateStore::with_faults(&state_dir, injector, &rec);
    let t0 = std::time::Instant::now();
    let (state, stats) = update_durable(&store, &append, mode, checkpoint_every, resume, &rec)
        .map_err(|e| match e {
            StateError::Interrupted { pairs_done } => CliError(format!(
                "update interrupted after {pairs_done} pair(s); progress saved in {state_dir} — rerun with --resume to continue"
            )),
            other => CliError(other.to_string()),
        })?;
    let resumed_note = if stats.pairs_resumed > 0 {
        format!(" ({} resumed from progress)", stats.pairs_resumed)
    } else {
        String::new()
    };
    writeln!(
        out,
        "appended {} {}: scanned {} pairs{resumed_note} in {:?}, state now {} genes × {} samples, I* = {:.4}",
        stats.appended,
        match stats.mode {
            UpdateMode::Genes => "gene(s)",
            UpdateMode::Samples => "sample(s)",
        },
        stats.pairs_scanned,
        t0.elapsed(),
        state.gene_count(),
        state.samples,
        stats.threshold
    )?;

    let network = state.network();
    graph_io::write_edge_list(&network, BufWriter::new(create_file(&output)?))
        .map_err(|e| CliError(format!("cannot write {output}: {e}")))?;
    writeln!(out, "wrote {} edges to {output}", network.edge_count())?;
    Ok(())
}

/// `gnet worker` — join a multi-process distributed run as one rank.
///
/// Options: `--connect ADDR` (the `IP:PORT` printed by
/// `gnet infer --listen`) and `--trace-dir DIR` to override the
/// coordinator-announced trace directory on this machine. Everything
/// else — rank, matrix, config, fault plan — arrives from the
/// coordinator over the wire.
pub fn cmd_worker(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let addr_raw = args.require("connect")?.to_string();
    let trace_dir = args.get("trace-dir").map(str::to_string);
    args.reject_unknown()?;
    let addr: std::net::SocketAddr = addr_raw
        .parse()
        .map_err(|_| CliError(format!("bad --connect address {addr_raw:?} (need IP:PORT)")))?;
    let report = run_worker(addr, trace_dir.as_deref().map(std::path::Path::new))
        .map_err(|e| CliError(e.to_string()))?;
    if report.crashed {
        writeln!(
            out,
            "rank {} of {}: killed by the fault plan (simulated crash)",
            report.rank, report.ranks
        )?;
    } else {
        writeln!(out, "rank {} of {} done", report.rank, report.ranks)?;
    }
    Ok(())
}

/// Plain HTTP/1.0 GET against the status listener: one request, read to
/// EOF, no keep-alive — exactly what `StatusServer` serves.
fn http_get(addr: &str, path: &str) -> Result<String, CliError> {
    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| CliError(format!("cannot arm the read timeout: {e}")))?;
    write!(
        stream,
        "GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| CliError(format!("cannot send the request to {addr}: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| CliError(format!("cannot read the response from {addr}: {e}")))?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return fail(format!("malformed HTTP response from {addr}"));
    };
    let status_line = head.lines().next().unwrap_or_default();
    if !status_line.contains(" 200 ") {
        return fail(format!("{addr}{path} answered: {status_line}"));
    }
    Ok(body.to_string())
}

fn render_status_summary(s: &gnet_obs::StatusSummary, out: &mut dyn Write) -> Result<(), CliError> {
    #[allow(clippy::cast_precision_loss)] // cast-ok: display percentage only
    let pct = if s.pairs_total > 0 {
        s.pairs_done as f64 / s.pairs_total as f64 * 100.0
    } else {
        0.0
    };
    let eta = match s.eta_us {
        Some(us) => format!("{:.0?}", std::time::Duration::from_micros(us)),
        None => "?".to_string(),
    };
    writeln!(
        out,
        "gnet-status/1: {} — {} ranks, round {}, elapsed {:.0?}",
        s.state,
        s.ranks,
        s.round_max,
        std::time::Duration::from_micros(s.elapsed_us),
    )?;
    writeln!(
        out,
        "pairs {}/{} ({pct:.1}%) at {:.0} pairs/s, ETA {eta}",
        s.pairs_done, s.pairs_total, s.pairs_per_s,
    )?;
    if !s.stragglers.is_empty() || !s.stragglers_seen.is_empty() {
        writeln!(
            out,
            "stragglers now {:?}, ever {:?}",
            s.stragglers, s.stragglers_seen
        )?;
    }
    writeln!(
        out,
        "{:>5} {:>9} {:>6} {:>10} {:>10} {:>10} {:>6} {:>6}",
        "rank", "state", "round", "pairs", "pairs/s", "beat_age", "beats", "queue"
    )?;
    for r in &s.per_rank {
        let state = if r.dead {
            "dead"
        } else if r.done {
            "done"
        } else if r.straggler {
            "straggler"
        } else if r.suspect {
            "suspect"
        } else {
            "running"
        };
        let age = match r.beat_age_us {
            Some(us) => format!("{:.0?}", std::time::Duration::from_micros(us)),
            None => "-".to_string(),
        };
        writeln!(
            out,
            "{:>5} {:>9} {:>6} {:>10} {:>10.0} {:>10} {:>6} {:>6}",
            r.rank, state, r.round, r.pairs, r.pairs_per_s, age, r.beats, r.queue_depth,
        )?;
    }
    Ok(())
}

/// `gnet status` — render a running (or finished) inference's live
/// telemetry as a one-screen summary.
///
/// The target is either the `IP:PORT` a coordinator announced with
/// `status listening on …` (scraped over HTTP) or the path of a
/// `--status-file` JSON document. Options: `--metrics` fetches the
/// Prometheus exposition instead of the status document (listener
/// targets only), `--json` prints the raw `gnet-status/1` document.
/// Every fetched document is validated against the pinned closed-world
/// schema first, so a drifted producer fails loudly here and in CI.
pub fn cmd_status(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let target = args.require("target")?.to_string();
    let metrics = args.flag("metrics");
    let json = args.flag("json");
    args.reject_unknown()?;
    if metrics && json {
        return fail("--metrics is the Prometheus text form; drop --json");
    }
    let is_addr = target.parse::<std::net::SocketAddr>().is_ok();
    if metrics && !is_addr {
        return fail(
            "--metrics scrapes the HTTP listener; a --status-file holds only the JSON document",
        );
    }
    if metrics {
        let body = http_get(&target, "/metrics")?;
        let samples = gnet_obs::validate_prometheus(&body).map_err(|e| CliError(e.to_string()))?;
        write!(out, "{body}")?;
        writeln!(out, "# {samples} samples, schema ok")?;
        return Ok(());
    }
    let body = if is_addr {
        http_get(&target, "/status")?
    } else {
        std::fs::read_to_string(&target)
            .map_err(|e| CliError(format!("cannot read {target}: {e}")))?
    };
    let summary = gnet_obs::validate_status_json(&body).map_err(|e| CliError(e.to_string()))?;
    if json {
        writeln!(out, "{body}")?;
    } else {
        render_status_summary(&summary, out)?;
    }
    Ok(())
}

fn load_edges(path: &str, genes: usize, names: Vec<String>) -> Result<GeneNetwork, CliError> {
    let file = File::open(path).map_err(|e| CliError(format!("cannot open {path}: {e}")))?;
    graph_io::read_edge_list(file, genes, names)
        .map_err(|e| CliError(format!("cannot read {path}: {e}")))
}

/// `gnet score` — precision/recall of an inferred edge list against a
/// ground-truth edge list.
///
/// Options: `--edges FILE` `--truth FILE` `--matrix FILE` (for gene names
/// and count).
pub fn cmd_score(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let edges_path = args.require("edges")?.to_string();
    let truth_path = args.require("truth")?.to_string();
    let matrix_path = args.require("matrix")?.to_string();
    args.reject_unknown()?;

    let matrix = load_matrix(&matrix_path)?;
    let names = matrix.gene_names().to_vec();
    let inferred = load_edges(&edges_path, matrix.genes(), names.clone())?;
    let truth_net = load_edges(&truth_path, matrix.genes(), names)?;
    let truth: Vec<(u32, u32)> = truth_net.edges().iter().map(|e| e.key()).collect();

    let score = recovery_score(&inferred, &truth);
    writeln!(out, "edges      {}", inferred.edge_count())?;
    writeln!(out, "truth      {}", truth.len())?;
    writeln!(out, "precision  {:.4}", score.precision())?;
    writeln!(out, "recall     {:.4}", score.recall())?;
    writeln!(out, "F1         {:.4}", score.f1())?;
    Ok(())
}

/// `gnet stats` — summary of an expression matrix.
pub fn cmd_stats(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.require("input")?.to_string();
    args.reject_unknown()?;
    let matrix = load_matrix(&input)?;
    writeln!(out, "genes    {}", matrix.genes())?;
    writeln!(out, "samples  {}", matrix.samples())?;
    writeln!(out, "bytes    {}", matrix.heap_bytes())?;
    let mut grand = gnet_expr::stats::summarize(matrix.gene(0));
    for g in 1..matrix.genes() {
        let s = gnet_expr::stats::summarize(matrix.gene(g));
        grand.min = grand.min.min(s.min);
        grand.max = grand.max.max(s.max);
    }
    writeln!(out, "range    [{:.4}, {:.4}]", grand.min, grand.max)?;
    let low_var = gnet_expr::stats::low_variance_genes(&matrix, 1e-9).len();
    writeln!(out, "constant genes (var < 1e-9): {low_var}")?;
    Ok(())
}

/// `gnet topology` — topology report of an inferred network.
///
/// Options: `--edges FILE` `--matrix FILE` (for gene names/count)
/// `[--hubs N]`.
pub fn cmd_topology(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    use gnet_graph::{analysis, connected_components};
    let edges_path = args.require("edges")?.to_string();
    let matrix_path = args.require("matrix")?.to_string();
    let hub_count = args.get_or("hubs", 10usize)?;
    args.reject_unknown()?;

    let matrix = load_matrix(&matrix_path)?;
    let net = load_edges(&edges_path, matrix.genes(), matrix.gene_names().to_vec())?;

    writeln!(out, "genes            {}", net.genes())?;
    writeln!(out, "edges            {}", net.edge_count())?;
    writeln!(out, "density          {:.6}", net.density())?;
    let comps = connected_components(&net);
    writeln!(
        out,
        "components       {} (largest: {})",
        comps.len(),
        comps[0].len()
    )?;
    match analysis::degree_assortativity(&net) {
        Some(r) => writeln!(out, "assortativity    {r:.4}")?,
        None => writeln!(out, "assortativity    undefined")?,
    }
    let core = analysis::core_numbers(&net);
    let max_core = core.iter().copied().max().unwrap_or(0);
    let in_max_core = core.iter().filter(|&&c| c == max_core).count();
    writeln!(out, "max k-core       {max_core} ({in_max_core} genes)")?;

    writeln!(out, "\ntop hubs:")?;
    for (g, d) in analysis::top_hubs(&net, hub_count) {
        writeln!(out, "  {:24} degree {d}", net.gene_names()[g as usize])?;
    }
    Ok(())
}

/// The lint names making up the unsafe-audit family, for
/// `gnet analyze --unsafe-audit` scoping.
const UNSAFE_AUDIT_LINTS: [&str; 3] = ["unsafe-justified", "send-sync-audit", "atomic-ordering"];

/// `gnet analyze` — workspace static analysis, the scheduler race
/// checker, and the ring-protocol model checker.
///
/// Options: `--root DIR` (workspace root, default `.`),
/// `--allowlist FILE` (vetted exceptions), `--json` (versioned
/// machine-readable document, schema `gnet-analyze/2`), `--deny` (exit
/// non-zero on any lint violation), `--deny-stale` (exit non-zero on
/// stale allowlist entries), `--unsafe-audit` (restrict lint findings
/// to the unsafe-audit family), `--concurrency` (deterministic
/// interleaving checker) with `--runs N` (default 25), `--protocol`
/// (explore the unmutated ring protocol), `--self-check` (prove the
/// checker catches three injected protocol mutations), `--full`
/// (nightly-depth protocol bounds instead of the quick PR bounds),
/// `--max-ranks N` (drop ring sizes above N from the bounds),
/// `--replay SPEC` (re-execute one schedule string and exit).
pub fn cmd_analyze(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    use gnet_analysis::report::{AnalyzeDocument, ConcurrencySection};
    use gnet_analysis::{check_determinism, protocol, run_lints, Allowlist, InterleaveConfig};

    let root = std::path::PathBuf::from(args.get("root").unwrap_or("."));
    let allowlist = match args.get("allowlist") {
        Some(path) => Allowlist::load(std::path::Path::new(path)).map_err(CliError)?,
        None => Allowlist::default(),
    };
    let json = args.flag("json");
    let deny = args.flag("deny");
    let deny_stale = args.flag("deny-stale");
    let unsafe_audit = args.flag("unsafe-audit");
    let concurrency = args.flag("concurrency");
    let runs = args.get_or("runs", 25usize)?;
    let do_protocol = args.flag("protocol");
    let do_self_check = args.flag("self-check");
    let full = args.flag("full");
    let max_ranks = args.get("max-ranks").map(str::to_string);
    let replay_spec = args.get("replay").map(str::to_string);
    if concurrency && runs == 0 {
        return fail("--runs must be at least 1: zero runs would verify nothing");
    }
    args.reject_unknown()?;

    // Replay is a standalone mode: parse the spec, re-execute it
    // deterministically, report what it exhibits.
    if let Some(spec) = replay_spec {
        let schedule = protocol::Schedule::parse(&spec).map_err(CliError)?;
        match protocol::replay(&schedule).map_err(CliError)? {
            Some(v) => writeln!(out, "replay: reproduced {} — {}", v.kind(), v.render())?,
            None => writeln!(out, "replay: schedule ran clean (no violation)")?,
        }
        return Ok(());
    }

    let mut report = run_lints(&root, &allowlist)
        .map_err(|e| CliError(format!("cannot scan {}: {e}", root.display())))?;
    if report.files_scanned == 0 {
        return fail(format!(
            "no sources under {} — is --root the workspace?",
            root.display()
        ));
    }
    if unsafe_audit {
        report
            .diagnostics
            .retain(|d| UNSAFE_AUDIT_LINTS.contains(&d.lint.as_str()));
        report
            .stale
            .retain(|d| d.lint == "*" || UNSAFE_AUDIT_LINTS.contains(&d.lint.as_str()));
    }

    let interleave = if concurrency {
        let cfg = InterleaveConfig {
            runs,
            ..InterleaveConfig::default()
        };
        Some(check_determinism(&cfg).map(|ok| (ok, cfg)))
    } else {
        None
    };

    let mut bounds = if full {
        protocol::Bounds::full()
    } else {
        protocol::Bounds::quick()
    };
    if let Some(cap) = max_ranks {
        let cap: usize = cap
            .parse()
            .map_err(|_| CliError(format!("bad --max-ranks {cap:?}")))?;
        bounds.ranks.retain(|&r| r <= cap);
        if bounds.ranks.is_empty() {
            return fail(format!("--max-ranks {cap} leaves no ring sizes to explore"));
        }
    }
    let protocol_report = do_protocol.then(|| protocol::check_protocol(&bounds));
    let self_check_report = do_self_check.then(|| protocol::self_check(&bounds));

    if json {
        let document = AnalyzeDocument {
            lints: report.clone(),
            concurrency: interleave.as_ref().map(|r| match r {
                Ok((o, _)) => ConcurrencySection::Passed {
                    runs: o.runs,
                    checks: o.checks,
                    pairs: o.pairs,
                },
                Err(e) => ConcurrencySection::Failed {
                    error: e.to_string(),
                },
            }),
            protocol: protocol_report.clone(),
            self_check: self_check_report.clone(),
        };
        writeln!(out, "{}", document.render_json())?;
    } else {
        write!(out, "{}", report.render_text())?;
        match &interleave {
            None => {}
            Some(Ok((o, cfg))) => writeln!(
                out,
                "concurrency: {} scheduler executions ({} runs × 4 policies × {:?} threads), \
                 {} pairs each, all bitwise identical to the single-threaded reference",
                o.checks, o.runs, cfg.threads, o.pairs
            )?,
            Some(Err(e)) => writeln!(out, "concurrency: FAILED — {e}")?,
        }
        if let Some(p) = &protocol_report {
            for e in &p.explorations {
                let tail = match &e.violation {
                    None if e.capped => {
                        format!(", capped ({} random walks clean)", e.walks_run)
                    }
                    None => String::new(),
                    Some(v) => format!(
                        "\n  VIOLATION ({}): {}\n  replay spec: {}",
                        v.violation.kind(),
                        v.violation.render(),
                        v.schedule.render()
                    ),
                };
                writeln!(
                    out,
                    "protocol: ranks={} — {} states, {} clean terminals{tail}",
                    e.ranks, e.states, e.terminals
                )?;
            }
            writeln!(
                out,
                "protocol: {}",
                if p.ok { "ok" } else { "VIOLATION FOUND" }
            )?;
        }
        if let Some(s) = &self_check_report {
            write!(out, "{}", protocol::self_check::render_text(s))?;
        }
    }

    if let Some(Err(e)) = interleave {
        return fail(e.to_string());
    }
    if let Some(p) = &protocol_report {
        if !p.ok {
            return fail("protocol model checker found a violation (replay spec above)");
        }
    }
    if let Some(s) = &self_check_report {
        if !s.ok {
            return fail("protocol self-check failed: a known mutation went undetected");
        }
    }
    if deny_stale && !report.stale.is_empty() {
        return fail(format!(
            "{} stale allowlist entr{} (--deny-stale)",
            report.stale.len(),
            if report.stale.len() == 1 { "y" } else { "ies" }
        ));
    }
    if deny && !report.is_clean() {
        return fail(format!(
            "{} static-analysis violation(s)",
            report.diagnostics.len()
        ));
    }
    Ok(())
}

/// `gnet conformance` — differential & metamorphic conformance harness.
///
/// Options: `--level quick|full` `--seed S` `--json` `--report FILE`
/// `--self-check` `--replay SPEC`.
///
/// Exit is nonzero whenever the report's overall `pass` verdict is
/// false, so CI can gate on the command directly; `--report` always
/// writes the JSON document first, pass or fail.
pub fn cmd_conformance(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    use gnet_conformance::{
        run_conformance, run_replay, run_self_check, ConformanceOptions, DatasetSpec, Level,
    };

    let opts = ConformanceOptions {
        seed: args.get_or("seed", ConformanceOptions::default().seed)?,
        level: match args.get("level") {
            None => Level::Quick,
            Some(s) => Level::from_slug(s)
                .ok_or_else(|| CliError(format!("unknown --level {s:?} (quick|full)")))?,
        },
        ..ConformanceOptions::default()
    };
    let json = args.flag("json");
    let self_check = args.flag("self-check");
    let replay = args.get("replay").map(str::to_owned);
    let report_path = args.get("report").map(str::to_owned);
    args.reject_unknown()?;
    if self_check && replay.is_some() {
        return fail("--self-check and --replay are mutually exclusive");
    }

    let report = match replay {
        Some(spec_text) => {
            let spec = DatasetSpec::parse(&spec_text)
                .map_err(|e| CliError(format!("bad --replay: {e}")))?;
            run_replay(&opts, spec)
        }
        None if self_check => run_self_check(&opts),
        None => run_conformance(&opts),
    };

    if let Some(path) = report_path {
        std::fs::write(&path, report.render_json())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    if json {
        writeln!(out, "{}", report.render_json())?;
    } else {
        write!(out, "{}", report.render_text())?;
    }
    if !report.pass {
        return fail("conformance violations found (see report)");
    }
    Ok(())
}

/// `gnet predict` — modeled platform runtimes for a problem size.
///
/// Options: `--genes` `--samples` `--q`.
pub fn cmd_predict(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let genes = args.get_or("genes", 15_575usize)?;
    let samples = args.get_or("samples", 3_137usize)?;
    let q = args.get_or("q", 30usize)?;
    args.reject_unknown()?;

    let workload = gnet_phi::WorkloadModel {
        genes,
        samples,
        q,
        ..gnet_phi::WorkloadModel::arabidopsis_headline()
    };
    writeln!(out, "workload: {genes} genes × {samples} samples, q = {q}")?;
    for machine in [
        gnet_phi::MachineModel::xeon_phi_5110p(),
        gnet_phi::MachineModel::xeon_e5_2670_2s(),
        gnet_phi::MachineModel::bluegene_l_1024(),
    ] {
        let rep = scenarios::simulate_scenario(
            &machine,
            &workload,
            scenarios::tile_size_for(genes, machine.max_threads()),
            machine.max_threads(),
            SchedulerPolicy::DynamicCounter,
        );
        writeln!(
            out,
            "{:55} {:9.2} min",
            machine.name,
            rep.wall_seconds / 60.0
        )?;
    }
    let offload = gnet_phi::OffloadModel::paper_system();
    let tiles = gnet_parallel::TileSpace::new(genes, scenarios::tile_size_for(genes, 244));
    let (share, wall) = offload.optimal_split(tiles.tiles(), &workload, 20);
    writeln!(
        out,
        "{:55} {:9.2} min  (device share {:.0}%)",
        "host + coprocessor offload (optimal split)",
        wall / 60.0,
        share * 100.0
    )?;
    Ok(())
}

/// `gnet trace-report` — offline analysis of recorded trace streams.
///
/// Options: exactly one of `--trace FILE` (single-process NDJSON
/// stream) or `--trace-dir DIR` (per-rank streams + manifest from a
/// distributed `gnet infer --ranks P --trace-dir DIR` run); `--chrome
/// FILE` additionally writes Chrome trace-event JSON (load in Perfetto
/// or `chrome://tracing`); `--flame FILE` writes folded flamegraph
/// stacks (`flamegraph.pl` / speedscope); `--no-calibrate` skips the
/// short live kernel measurement that fills the percent-of-modeled-peak
/// column.
pub fn cmd_trace_report(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    use gnet_obs::model::RunModel;
    use gnet_obs::report;

    let trace = args.get("trace").map(str::to_string);
    let dir = args.get("trace-dir").map(str::to_string);
    let chrome_path = args.get("chrome").map(str::to_string);
    let flame_path = args.get("flame").map(str::to_string);
    let no_calibrate = args.flag("no-calibrate");
    args.reject_unknown()?;

    let model = match (&trace, &dir) {
        (Some(f), None) => RunModel::from_file(std::path::Path::new(f)),
        (None, Some(d)) => RunModel::from_dir(std::path::Path::new(d)),
        _ => return fail("pass exactly one of --trace FILE or --trace-dir DIR"),
    }
    .map_err(|e| CliError(e.to_string()))?;

    let config = report::RunConfig::from_model(&model);
    let kernel_model = if no_calibrate {
        None
    } else {
        config.as_ref().map(report::calibrate_model)
    };
    let rep = report::analyze(&model, kernel_model);
    write!(out, "{}", rep.render_text())?;

    if let Some(path) = chrome_path {
        std::fs::write(&path, gnet_obs::chrome::to_chrome_json(&model))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote Chrome trace-event JSON to {path}")?;
    }
    if let Some(path) = flame_path {
        std::fs::write(&path, gnet_obs::flame::to_folded(&model))
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        writeln!(out, "wrote folded flamegraph stacks to {path}")?;
    }
    Ok(())
}

/// `gnet bench` — the seeded fixed-shape benchmark suite and its
/// regression gate.
///
/// Options: `--quick` (smaller shapes, 3 reps — the PR-CI mode),
/// `--reps K` (override repetitions), `--out FILE` (artifact path,
/// default `BENCH_7.json`), `--baseline FILE` (compare against a
/// committed artifact and exit nonzero on statistically significant
/// regressions), `--update-baseline` (with `--baseline`: overwrite the
/// baseline file with this run instead of gating against it — the
/// re-baselining path after a real speedup), `--inject-slowdown F`
/// (artificially slow the vector kernel by F× — the gate's self-test
/// hook).
///
/// When a candidate minimum undercuts the baseline by more than the
/// stale gate (`min < base × 0.5`), the command prints a warning: the
/// committed numbers no longer anchor the regression gate and should be
/// refreshed with `--update-baseline`.
pub fn cmd_bench(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    use gnet_obs::bench;

    let quick = args.flag("quick");
    let reps: Option<usize> = match args.get("reps") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError(format!("bad --reps {raw:?}")))?,
        ),
        None => None,
    };
    let out_path = args.get("out").unwrap_or("BENCH_7.json").to_string();
    let baseline_path = args.get("baseline").map(str::to_string);
    let update_baseline = args.flag("update-baseline");
    let slowdown = args.get_or("inject-slowdown", 1.0f64)?;
    if !(1.0..=64.0).contains(&slowdown) {
        return fail("--inject-slowdown must be in [1, 64]");
    }
    if update_baseline && baseline_path.is_none() {
        return fail("--update-baseline needs --baseline FILE (the artifact to refresh)");
    }
    args.reject_unknown()?;

    let opts = bench::BenchOptions {
        quick,
        reps,
        slowdown,
    };
    writeln!(
        out,
        "gnet bench: {} mode, min of {} reps{}",
        if quick { "quick" } else { "full" },
        opts.effective_reps(),
        if slowdown > 1.0 {
            format!(", injected {slowdown}x vector-kernel slowdown")
        } else {
            String::new()
        }
    )?;
    let suite = bench::run_suite(&opts);
    for e in &suite.entries {
        writeln!(
            out,
            "  {:<24} min {:>12.1} {u}   median {:>12.1} {u}   mad {:>10.1} {u}",
            e.id,
            e.min_us,
            e.median_us,
            e.mad_us,
            u = e.unit
        )?;
    }
    std::fs::write(&out_path, bench::to_json(&suite))
        .map_err(|e| CliError(format!("cannot write {out_path}: {e}")))?;
    writeln!(out, "wrote {out_path}")?;

    if let Some(bp) = baseline_path {
        let text = std::fs::read_to_string(&bp)
            .map_err(|e| CliError(format!("cannot read baseline {bp}: {e}")))?;
        let base = bench::parse_suite(&text).map_err(|e| CliError(format!("{bp}: {e}")))?;
        if base.quick != suite.quick {
            // Quick and full shapes share ids but not workloads; a
            // quick candidate would "pass" against a full baseline by
            // construction.
            return fail(format!(
                "baseline {bp} is a {} suite but this run is {} — modes must match",
                if base.quick { "quick" } else { "full" },
                if suite.quick { "quick" } else { "full" },
            ));
        }
        for w in bench::improvements(&base, &suite) {
            writeln!(
                out,
                "WARNING {:<20} {:.1} us -> {:.1} us ({:.2}x faster): baseline is stale \
                 — refresh it with --update-baseline",
                w.id, w.base_min_us, w.cand_min_us, w.speedup
            )?;
        }
        if update_baseline {
            // Re-baselining: this run *becomes* the committed numbers, so
            // gating it against the numbers it replaces would be circular.
            std::fs::write(&bp, bench::to_json(&suite))
                .map_err(|e| CliError(format!("cannot update baseline {bp}: {e}")))?;
            writeln!(out, "updated baseline {bp} from this run")?;
            return Ok(());
        }
        let regressions = bench::compare(&base, &suite);
        if regressions.is_empty() {
            writeln!(out, "no significant regressions vs {bp}")?;
        } else {
            for r in &regressions {
                writeln!(
                    out,
                    "REGRESSION {:<20} {:.1} us -> {:.1} us ({:.2}x, gate {:.1} us)",
                    r.id, r.base_min_us, r.cand_min_us, r.ratio, r.threshold_us
                )?;
            }
            return fail(format!(
                "{} benchmark regression(s) vs {bp}",
                regressions.len()
            ));
        }
    }
    Ok(())
}

/// `gnet simd` — report which SIMD backend the kernel dispatcher picked.
///
/// Prints the detected-best backend, the active backend, every backend
/// this host supports, and — when `GNET_SIMD_FORCE` was set — whether
/// the request was honored.
///
/// Options: `--verify` — exit nonzero unless the dispatch is healthy:
/// an env force must have been honored, and without one the active
/// backend must be the detected best (a host that claims AVX-512 but
/// dispatches a fallback is exactly the silent inversion this command
/// exists to catch).
pub fn cmd_simd(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let verify = args.flag("verify");
    args.reject_unknown()?;

    let report = gnet_simd::dispatch_report();
    writeln!(out, "detected  {}", report.detected)?;
    writeln!(out, "active    {}", report.active)?;
    let supported = report
        .supported
        .iter()
        .map(|b| b.name())
        .collect::<Vec<_>>()
        .join(" ");
    writeln!(out, "supported {supported}")?;
    match &report.env_request {
        Some(req) => writeln!(
            out,
            "forced    GNET_SIMD_FORCE={req} ({})",
            if report.env_honored {
                "honored"
            } else {
                "NOT honored"
            }
        )?,
        None => writeln!(out, "forced    (GNET_SIMD_FORCE unset)")?,
    }

    if verify {
        if !report.env_honored {
            return fail(format!(
                "GNET_SIMD_FORCE={} was not honored — active backend is {}",
                report.env_request.as_deref().unwrap_or("?"),
                report.active
            ));
        }
        if report.env_request.is_none() && report.active != report.detected {
            return fail(format!(
                "dispatch selected {} but this host supports {} — the fast backend was \
                 silently skipped",
                report.active, report.detected
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ArgMap;

    fn argmap(tokens: &[&str]) -> ArgMap {
        ArgMap::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gnet_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generate_infer_score_roundtrip() {
        let dir = tmpdir("roundtrip");
        let matrix = dir.join("m.tsv");
        let truth = dir.join("t.tsv");
        let edges = dir.join("e.tsv");
        let mut sink = Vec::new();

        cmd_generate(
            &argmap(&[
                "--genes",
                "40",
                "--samples",
                "250",
                "--seed",
                "9",
                "--out",
                matrix.to_str().unwrap(),
                "--truth",
                truth.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        assert!(matrix.exists() && truth.exists());

        cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                edges.to_str().unwrap(),
                "--q",
                "10",
                "--threads",
                "2",
                "--dpi",
                "0.05",
            ]),
            &mut sink,
        )
        .unwrap();
        assert!(edges.exists());

        let mut score_out = Vec::new();
        cmd_score(
            &argmap(&[
                "--edges",
                edges.to_str().unwrap(),
                "--truth",
                truth.to_str().unwrap(),
                "--matrix",
                matrix.to_str().unwrap(),
            ]),
            &mut score_out,
        )
        .unwrap();
        let text = String::from_utf8(score_out).unwrap();
        assert!(text.contains("precision"), "{text}");
        let recall_line = text.lines().find(|l| l.starts_with("recall")).unwrap();
        let recall: f64 = recall_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(recall > 0.2, "recall {recall} suspiciously low\n{text}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn infer_distributed_ranks() {
        let dir = tmpdir("ranks");
        let matrix = dir.join("m.tsv");
        let edges = dir.join("e.tsv");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "18",
                "--samples",
                "120",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                edges.to_str().unwrap(),
                "--q",
                "8",
                "--ranks",
                "3",
            ]),
            &mut sink,
        )
        .unwrap();
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("3 ranks"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_reports_topology() {
        let dir = tmpdir("analyze");
        let matrix = dir.join("m.tsv");
        let edges = dir.join("e.tsv");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "30",
                "--samples",
                "200",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                edges.to_str().unwrap(),
                "--q",
                "10",
            ]),
            &mut sink,
        )
        .unwrap();
        let mut report = Vec::new();
        cmd_topology(
            &argmap(&[
                "--edges",
                edges.to_str().unwrap(),
                "--matrix",
                matrix.to_str().unwrap(),
                "--hubs",
                "3",
            ]),
            &mut report,
        )
        .unwrap();
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("components"), "{text}");
        assert!(text.contains("top hubs"), "{text}");
        assert!(text.contains("max k-core"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Workspace root relative to this crate, for `cmd_analyze` tests.
    fn workspace_root() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap()
    }

    #[test]
    fn analyze_scans_the_workspace() {
        let mut out = Vec::new();
        cmd_analyze(
            &argmap(&["--root", workspace_root().to_str().unwrap(), "--deny"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("file(s) scanned"), "{text}");
        assert!(text.contains("0 violation(s)"), "{text}");
    }

    #[test]
    fn analyze_json_is_machine_readable_and_schema_pinned() {
        let mut out = Vec::new();
        cmd_analyze(
            &argmap(&["--root", workspace_root().to_str().unwrap(), "--json"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let expect = format!("{{\"schema\":\"{}\"", gnet_analysis::report::SCHEMA);
        assert!(text.starts_with(&expect), "{text}");
        assert!(text.contains("\"files_scanned\""), "{text}");
        assert!(text.contains("\"concurrency\":null"), "{text}");
        gnet_analysis::report::validate_json(text.trim()).expect("document validates");
    }

    #[test]
    fn analyze_unsafe_audit_and_deny_stale_run_clean_on_the_workspace() {
        let mut out = Vec::new();
        cmd_analyze(
            &argmap(&[
                "--root",
                workspace_root().to_str().unwrap(),
                "--unsafe-audit",
                "--deny",
                "--deny-stale",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("0 violation(s)"), "{text}");
        assert!(text.contains("0 stale entries"), "{text}");
    }

    #[test]
    fn analyze_protocol_explores_a_small_ring_clean() {
        let mut out = Vec::new();
        cmd_analyze(
            &argmap(&[
                "--root",
                workspace_root().to_str().unwrap(),
                "--protocol",
                "--max-ranks",
                "3",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("protocol: ranks=2"), "{text}");
        assert!(text.contains("protocol: ranks=3"), "{text}");
        assert!(text.contains("protocol: ok"), "{text}");
    }

    #[test]
    fn analyze_protocol_json_emits_the_protocol_section() {
        let mut out = Vec::new();
        cmd_analyze(
            &argmap(&[
                "--root",
                workspace_root().to_str().unwrap(),
                "--protocol",
                "--max-ranks",
                "2",
                "--json",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"protocol\":{\"ok\":true"), "{text}");
        gnet_analysis::report::validate_json(text.trim()).expect("document validates");
    }

    #[test]
    fn analyze_replay_rejects_malformed_and_impossible_specs() {
        let mut out = Vec::new();
        let err = cmd_analyze(&argmap(&["--replay", "not-a-spec"]), &mut out).unwrap_err();
        assert!(err.0.contains("key=value"), "{}", err.0);
        // Well-formed but impossible: rank 1 cannot deliver before
        // anything was sent.
        let spec = "ranks=2;crashes=0;timeouts=0;drops=0;dups=0;mutation=none;trace=d1";
        let err = cmd_analyze(&argmap(&["--replay", spec]), &mut out).unwrap_err();
        assert!(err.0.contains("not enabled"), "{}", err.0);
    }

    #[test]
    fn analyze_max_ranks_cannot_empty_the_bounds() {
        let mut out = Vec::new();
        let err = cmd_analyze(
            &argmap(&[
                "--root",
                workspace_root().to_str().unwrap(),
                "--protocol",
                "--max-ranks",
                "1",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(err.0.contains("no ring sizes"), "{}", err.0);
    }

    #[test]
    fn analyze_rejects_a_rootless_directory() {
        let dir = tmpdir("analyze_empty");
        let mut out = Vec::new();
        let err = cmd_analyze(&argmap(&["--root", dir.to_str().unwrap()]), &mut out).unwrap_err();
        assert!(
            err.0.contains("cannot scan") || err.0.contains("no sources"),
            "{}",
            err.0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preprocessing_flags_run_end_to_end() {
        let dir = tmpdir("preproc");
        let matrix = dir.join("m.tsv");
        let edges = dir.join("e.tsv");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "24",
                "--samples",
                "120",
                "--batches",
                "4",
                "--batch-sd",
                "1.5",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                edges.to_str().unwrap(),
                "--q",
                "8",
                "--quantile-normalize",
                "--center-batches",
                "4",
            ]),
            &mut sink,
        )
        .unwrap();
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("quantile-normalized"), "{text}");
        assert!(text.contains("centered 4"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_reports_shape() {
        let dir = tmpdir("stats");
        let matrix = dir.join("m.tsv");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "12",
                "--samples",
                "30",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        let mut out = Vec::new();
        cmd_stats(&argmap(&["--input", matrix.to_str().unwrap()]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("genes    12"), "{text}");
        assert!(text.contains("samples  30"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn predict_prints_every_platform() {
        let mut out = Vec::new();
        cmd_predict(
            &argmap(&["--genes", "2048", "--samples", "1024", "--q", "10"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Phi"), "{text}");
        assert!(text.contains("Blue Gene"), "{text}");
        assert!(text.contains("offload"), "{text}");
    }

    #[test]
    fn unknown_option_is_an_error() {
        let mut out = Vec::new();
        let err = cmd_predict(&argmap(&["--bogus", "7"]), &mut out).unwrap_err();
        assert!(err.0.contains("--bogus"));
    }

    #[test]
    fn simd_reports_dispatch_and_verifies_clean() {
        // No GNET_SIMD_FORCE in the test environment, so active must be
        // the detected best and --verify must pass.
        let mut out = Vec::new();
        cmd_simd(&argmap(&["--verify"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("detected"), "{text}");
        assert!(text.contains("active"), "{text}");
        assert!(text.contains("supported"), "{text}");
        // Every host supports at least the emulated backend.
        assert!(text.contains("emulated"), "{text}");
    }

    #[test]
    fn bench_update_baseline_needs_a_baseline() {
        let mut out = Vec::new();
        let err = cmd_bench(&argmap(&["--update-baseline", "--quick"]), &mut out).unwrap_err();
        assert!(err.0.contains("--baseline"), "{}", err.0);
    }

    #[test]
    fn bad_kernel_name_rejected() {
        let args = argmap(&["--input", "x", "--output", "y", "--kernel", "gpu"]);
        let mut out = Vec::new();
        let err = cmd_infer(&args, &mut out).unwrap_err();
        assert!(err.0.contains("gpu"));
    }

    #[test]
    fn infer_writes_trace_and_metrics_files() {
        let dir = tmpdir("trace");
        let matrix = dir.join("m.tsv");
        let edges = dir.join("e.tsv");
        let trace = dir.join("run.ndjson");
        let metrics = dir.join("run.metrics.json");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "20",
                "--samples",
                "150",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                edges.to_str().unwrap(),
                "--q",
                "8",
                "--threads",
                "2",
                "--tile",
                "5",
                "--trace",
                trace.to_str().unwrap(),
                "--metrics",
                metrics.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("wrote trace events"), "{text}");
        assert!(text.contains("wrote metrics"), "{text}");

        let ndjson = std::fs::read_to_string(&trace).unwrap();
        assert!(ndjson.lines().count() > 4, "{ndjson}");
        assert!(ndjson.contains("\"type\":\"meta\""));
        assert!(ndjson.contains("\"name\":\"stage.mi\""));
        assert!(ndjson.contains("\"name\":\"scheduler.tile_us\""));
        assert!(ndjson.contains("\"name\":\"mi.pairs\""));

        let summary = std::fs::read_to_string(&metrics).unwrap();
        assert!(summary.contains("\"format\":\"gnet-trace-metrics\""));
        assert!(summary.contains("\"mi.pairs\":190"), "{summary}"); // C(20,2)
        assert!(summary.contains("\"version\":1"), "{summary}");
        assert!(summary.trim_end().ends_with('}'), "{summary}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_flags_rejected_with_ranks() {
        let args = argmap(&[
            "--input",
            "x",
            "--output",
            "y",
            "--ranks",
            "2",
            "--progress",
        ]);
        let mut out = Vec::new();
        let err = cmd_infer(&args, &mut out).unwrap_err();
        assert!(err.0.contains("--ranks"), "{}", err.0);
    }

    #[test]
    fn checkpoint_crash_then_resume_roundtrip() {
        let dir = tmpdir("ckpt");
        let matrix = dir.join("m.tsv");
        let edges = dir.join("e.tsv");
        let ckpt = dir.join("ckpt");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "24",
                "--samples",
                "120",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        // StaticCyclic + 1 thread: deterministic merge order, so the
        // resumed run must reproduce the uninterrupted one exactly.
        let common = [
            "--input",
            matrix.to_str().unwrap(),
            "--output",
            edges.to_str().unwrap(),
            "--q",
            "8",
            "--threads",
            "1",
            "--scheduler",
            "static-cyclic",
            "--tile",
            "5",
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "2",
        ];
        let mut crash_args: Vec<&str> = common.to_vec();
        crash_args.extend(["--fault-plan", "seed=1;chunk-crash(boundary=2)"]);
        let err = cmd_infer(&argmap(&crash_args), &mut sink).unwrap_err();
        assert!(err.0.contains("--resume"), "{}", err.0);
        assert!(ckpt.join("gnet.ckpt").exists(), "checkpoint must survive");

        let mut resume_args: Vec<&str> = common.to_vec();
        resume_args.push("--resume");
        let mut out = Vec::new();
        cmd_infer(&argmap(&resume_args), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("checkpointed every 2 tiles"), "{text}");
        assert!(edges.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_flags_need_a_directory() {
        let args = argmap(&["--input", "x", "--output", "y", "--resume"]);
        let mut out = Vec::new();
        let err = cmd_infer(&args, &mut out).unwrap_err();
        assert!(err.0.contains("--checkpoint-dir"), "{}", err.0);
    }

    #[test]
    fn checkpoints_rejected_with_ranks() {
        let args = argmap(&[
            "--input",
            "x",
            "--output",
            "y",
            "--ranks",
            "2",
            "--checkpoint-dir",
            "d",
        ]);
        let mut out = Vec::new();
        let err = cmd_infer(&args, &mut out).unwrap_err();
        assert!(err.0.contains("--ranks"), "{}", err.0);
    }

    #[test]
    fn bad_fault_plan_is_a_typed_cli_error() {
        let args = argmap(&["--input", "x", "--output", "y", "--fault-plan", "nonsense"]);
        let mut out = Vec::new();
        let err = cmd_infer(&args, &mut out).unwrap_err();
        assert!(err.0.contains("--fault-plan"), "{}", err.0);
    }

    #[test]
    fn distributed_rank_crash_recovers_end_to_end() {
        let dir = tmpdir("rank_crash");
        let matrix = dir.join("m.tsv");
        let edges = dir.join("e.tsv");
        let edges_ok = dir.join("e_ok.tsv");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "16",
                "--samples",
                "120",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                edges_ok.to_str().unwrap(),
                "--q",
                "8",
                "--ranks",
                "4",
            ]),
            &mut sink,
        )
        .unwrap();
        let mut out = Vec::new();
        cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                edges.to_str().unwrap(),
                "--q",
                "8",
                "--ranks",
                "4",
                "--fault-plan",
                "seed=1;crash(rank=2,round=1)",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("recovered from 1 lost rank"), "{text}");
        let a = std::fs::read_to_string(&edges).unwrap();
        let b = std::fs::read_to_string(&edges_ok).unwrap();
        assert_eq!(a, b, "recovered run must emit the same edge list");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coordinator_crash_plan_is_a_clean_error() {
        let dir = tmpdir("rank0_crash");
        let matrix = dir.join("m.tsv");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "12",
                "--samples",
                "100",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        let err = cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                dir.join("e.tsv").to_str().unwrap(),
                "--q",
                "8",
                "--ranks",
                "3",
                "--fault-plan",
                "seed=1;crash(rank=0,round=1)",
            ]),
            &mut sink,
        )
        .unwrap_err();
        assert!(err.0.contains("rank 0"), "{}", err.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_dir_requires_ranks() {
        let args = argmap(&["--input", "x", "--output", "y", "--trace-dir", "d"]);
        let mut out = Vec::new();
        let err = cmd_infer(&args, &mut out).unwrap_err();
        assert!(err.0.contains("--ranks"), "{}", err.0);
    }

    #[test]
    fn distributed_trace_dir_feeds_trace_report() {
        let dir = tmpdir("trace_report");
        let matrix = dir.join("m.tsv");
        let edges = dir.join("e.tsv");
        let traces = dir.join("traces");
        let chrome = dir.join("run.chrome.json");
        let flame = dir.join("run.folded");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "16",
                "--samples",
                "120",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                edges.to_str().unwrap(),
                "--q",
                "8",
                "--ranks",
                "4",
                "--trace-dir",
                traces.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("per-rank trace streams"), "{text}");
        assert!(traces.join("manifest.json").exists());
        assert!(traces.join("rank-3.ndjson").exists());

        let mut report = Vec::new();
        cmd_trace_report(
            &argmap(&[
                "--trace-dir",
                traces.to_str().unwrap(),
                "--chrome",
                chrome.to_str().unwrap(),
                "--flame",
                flame.to_str().unwrap(),
                "--no-calibrate",
            ]),
            &mut report,
        )
        .unwrap();
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("per-rank load"), "{text}");
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("perf attribution"), "{text}");
        assert!(chrome.exists() && flame.exists());
        let chrome_text = std::fs::read_to_string(&chrome).unwrap();
        assert!(
            chrome_text.starts_with("{\"traceEvents\":["),
            "{chrome_text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_report_reads_single_process_streams_too() {
        let dir = tmpdir("trace_report_single");
        let matrix = dir.join("m.tsv");
        let edges = dir.join("e.tsv");
        let trace = dir.join("run.ndjson");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "14",
                "--samples",
                "100",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        cmd_infer(
            &argmap(&[
                "--input",
                matrix.to_str().unwrap(),
                "--output",
                edges.to_str().unwrap(),
                "--q",
                "6",
                "--trace",
                trace.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        let mut report = Vec::new();
        cmd_trace_report(
            &argmap(&["--trace", trace.to_str().unwrap(), "--no-calibrate"]),
            &mut report,
        )
        .unwrap();
        let text = String::from_utf8(report).unwrap();
        assert!(text.contains("stage.mi"), "{text}");
        assert!(text.contains("run:"), "run.config line must render: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_report_needs_exactly_one_source() {
        let mut out = Vec::new();
        let err = cmd_trace_report(&argmap(&[]), &mut out).unwrap_err();
        assert!(err.0.contains("exactly one"), "{}", err.0);
        let err =
            cmd_trace_report(&argmap(&["--trace", "a", "--trace-dir", "b"]), &mut out).unwrap_err();
        assert!(err.0.contains("exactly one"), "{}", err.0);
    }

    #[test]
    fn bench_writes_artifact_and_gates_on_baseline() {
        let dir = tmpdir("bench");
        let artifact = dir.join("BENCH_7.json");
        let candidate = dir.join("BENCH_7.cand.json");
        let mut out = Vec::new();
        cmd_bench(
            &argmap(&[
                "--quick",
                "--reps",
                "2",
                "--out",
                artifact.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("kernel.vector"), "{text}");
        assert!(text.contains("ring.4"), "{text}");
        assert!(artifact.exists());

        // Unchanged tree vs its own baseline: the gate passes.
        let mut out = Vec::new();
        cmd_bench(
            &argmap(&[
                "--quick",
                "--reps",
                "2",
                "--out",
                candidate.to_str().unwrap(),
                "--baseline",
                artifact.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("no significant regressions"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_gate_trips_on_injected_vector_slowdown() {
        let dir = tmpdir("bench_slow");
        let artifact = dir.join("BENCH_7.json");
        let candidate = dir.join("BENCH_7.cand.json");
        let mut out = Vec::new();
        cmd_bench(
            &argmap(&[
                "--quick",
                "--reps",
                "1",
                "--out",
                artifact.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap();
        let mut out = Vec::new();
        let err = cmd_bench(
            &argmap(&[
                "--quick",
                "--reps",
                "1",
                "--out",
                candidate.to_str().unwrap(),
                "--baseline",
                artifact.to_str().unwrap(),
                "--inject-slowdown",
                "3",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(err.0.contains("regression"), "{}", err.0);
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("REGRESSION") && text.contains("kernel.vector"),
            "the vector kernel must be the flagged series: {text}"
        );
        assert!(
            !text.contains("REGRESSION kernel.scalar"),
            "the scalar kernel is untouched by the injection: {text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_rejects_mode_mismatched_baseline() {
        let dir = tmpdir("bench_mode");
        let baseline = dir.join("full.json");
        // A minimal *full* baseline; the candidate runs --quick.
        std::fs::write(
            &baseline,
            "{\n  \"format\": \"gnet-bench\",\n  \"version\": 1,\n  \"issue\": 5,\n  \
             \"quick\": false,\n  \"entries\": []\n}",
        )
        .unwrap();
        let mut out = Vec::new();
        let err = cmd_bench(
            &argmap(&[
                "--quick",
                "--reps",
                "1",
                "--out",
                dir.join("cand.json").to_str().unwrap(),
                "--baseline",
                baseline.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(err.0.contains("modes must match"), "{}", err.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_rejects_bad_slowdown() {
        let mut out = Vec::new();
        let err = cmd_bench(&argmap(&["--inject-slowdown", "0.5"]), &mut out).unwrap_err();
        assert!(err.0.contains("inject-slowdown"), "{}", err.0);
    }

    #[test]
    fn early_exit_flag_switches_strategy() {
        let args = argmap(&["--early-exit", "--q", "5"]);
        let cfg = config_from_args(&args).unwrap();
        assert_eq!(cfg.null_strategy, NullStrategy::EarlyExit);
        assert_eq!(cfg.permutations, 5);
    }

    /// Write `matrix` as a TSV the commands can reload.
    fn write_matrix(matrix: &ExpressionMatrix, path: &std::path::Path) {
        let f = std::fs::File::create(path).unwrap();
        expr_io::write_tsv(matrix, BufWriter::new(f)).unwrap();
    }

    /// Split a synthetic dataset three ways: the full TSV, a gene-prefix
    /// TSV, and the appended-genes TSV.
    fn update_fixture(dir: &std::path::Path) -> (std::path::PathBuf, std::path::PathBuf) {
        let (full, _) =
            gnet_expr::synth::coupled_pairs(3, 60, gnet_expr::synth::Coupling::Linear(0.9), 5);
        let old = full.select_genes(&[0, 1, 2, 3]);
        let append = full.select_genes(&[4, 5]);
        write_matrix(&full, &dir.join("full.tsv"));
        write_matrix(&old, &dir.join("old.tsv"));
        write_matrix(&append, &dir.join("append.tsv"));
        (dir.join("old.tsv"), dir.join("append.tsv"))
    }

    #[test]
    fn update_reproduces_the_batch_edge_list_byte_for_byte() {
        let dir = tmpdir("update_equiv");
        let (old_tsv, append_tsv) = update_fixture(&dir);
        let state_dir = dir.join("state");
        let mut sink = Vec::new();

        let base = ["--q", "8", "--threads", "1", "--seed", "7"];
        let old_edges = dir.join("old_edges.tsv");
        let mut infer_args = vec![
            "--input",
            old_tsv.to_str().unwrap(),
            "--output",
            old_edges.to_str().unwrap(),
            "--save-state",
            state_dir.to_str().unwrap(),
        ];
        infer_args.extend_from_slice(&base);
        cmd_infer(&argmap(&infer_args), &mut sink).unwrap();

        cmd_update(
            &argmap(&[
                "--state",
                state_dir.to_str().unwrap(),
                "--append",
                append_tsv.to_str().unwrap(),
                "--output",
                dir.join("updated_edges.tsv").to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();

        // Batch over the concatenated dataset, through the same save-state
        // path, must yield byte-identical edges.
        let full_tsv = dir.join("full.tsv");
        let batch_edges = dir.join("batch_edges.tsv");
        let batch_state = dir.join("batch_state");
        let mut batch_args = vec![
            "--input",
            full_tsv.to_str().unwrap(),
            "--output",
            batch_edges.to_str().unwrap(),
            "--save-state",
            batch_state.to_str().unwrap(),
        ];
        batch_args.extend_from_slice(&base);
        cmd_infer(&argmap(&batch_args), &mut sink).unwrap();

        let updated = std::fs::read(dir.join("updated_edges.tsv")).unwrap();
        let batch = std::fs::read(dir.join("batch_edges.tsv")).unwrap();
        assert!(!updated.is_empty());
        assert_eq!(updated, batch, "incremental and batch edge lists differ");

        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("appended 2 gene(s)"), "{text}");
        assert!(text.contains("scanned 9 pairs"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_boundary_kill_resumes_to_the_same_bytes() {
        let dir = tmpdir("update_kill");
        let (old_tsv, append_tsv) = update_fixture(&dir);
        let state_dir = dir.join("state");
        let mut sink = Vec::new();

        cmd_infer(
            &argmap(&[
                "--input",
                old_tsv.to_str().unwrap(),
                "--output",
                dir.join("old_edges.tsv").to_str().unwrap(),
                "--save-state",
                state_dir.to_str().unwrap(),
                "--q",
                "8",
                "--threads",
                "1",
            ]),
            &mut sink,
        )
        .unwrap();
        let bundle = state_dir.join(gnet_core::state::STATE_FILE);
        let before = std::fs::read(&bundle).unwrap();

        let err = cmd_update(
            &argmap(&[
                "--state",
                state_dir.to_str().unwrap(),
                "--append",
                append_tsv.to_str().unwrap(),
                "--output",
                dir.join("updated_edges.tsv").to_str().unwrap(),
                "--checkpoint-every",
                "2",
                "--fault-plan",
                "seed=1;update-crash(boundary=2)",
            ]),
            &mut sink,
        )
        .unwrap_err();
        assert!(err.0.contains("--resume"), "{}", err.0);
        // The kill left the bundle untouched and the progress durable.
        assert_eq!(std::fs::read(&bundle).unwrap(), before);
        assert!(state_dir.join(gnet_core::state::PROGRESS_FILE).exists());

        cmd_update(
            &argmap(&[
                "--state",
                state_dir.to_str().unwrap(),
                "--append",
                append_tsv.to_str().unwrap(),
                "--output",
                dir.join("resumed_edges.tsv").to_str().unwrap(),
                "--checkpoint-every",
                "2",
                "--resume",
            ]),
            &mut sink,
        )
        .unwrap();

        // A clean, uninterrupted update in a copied state dir must produce
        // the same bundle and edges.
        let clean_dir = dir.join("clean_state");
        std::fs::create_dir_all(&clean_dir).unwrap();
        std::fs::write(clean_dir.join(gnet_core::state::STATE_FILE), &before).unwrap();
        cmd_update(
            &argmap(&[
                "--state",
                clean_dir.to_str().unwrap(),
                "--append",
                append_tsv.to_str().unwrap(),
                "--output",
                dir.join("clean_edges.tsv").to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        assert_eq!(
            std::fs::read(dir.join("resumed_edges.tsv")).unwrap(),
            std::fs::read(dir.join("clean_edges.tsv")).unwrap()
        );
        assert_eq!(
            std::fs::read(&bundle).unwrap(),
            std::fs::read(clean_dir.join(gnet_core::state::STATE_FILE)).unwrap(),
            "resumed and clean bundles must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_state_rejects_incompatible_modes() {
        let dir = tmpdir("save_state_reject");
        let (old_tsv, _) = update_fixture(&dir);
        let mut sink = Vec::new();
        let out_tsv = dir.join("e.tsv");
        let s_dir = dir.join("s");
        for extra in [&["--early-exit"][..], &["--ranks", "2"][..]] {
            let mut args = vec![
                "--input",
                old_tsv.to_str().unwrap(),
                "--output",
                out_tsv.to_str().unwrap(),
                "--save-state",
                s_dir.to_str().unwrap(),
            ];
            args.extend_from_slice(extra);
            let err = cmd_infer(&argmap(&args), &mut sink).unwrap_err();
            assert!(err.0.contains("--save-state"), "{}", err.0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_rejects_bad_mode_and_shape() {
        let dir = tmpdir("update_reject");
        let (old_tsv, append_tsv) = update_fixture(&dir);
        let state_dir = dir.join("state");
        let mut sink = Vec::new();
        cmd_infer(
            &argmap(&[
                "--input",
                old_tsv.to_str().unwrap(),
                "--output",
                dir.join("e.tsv").to_str().unwrap(),
                "--save-state",
                state_dir.to_str().unwrap(),
                "--q",
                "6",
            ]),
            &mut sink,
        )
        .unwrap();

        let err = cmd_update(
            &argmap(&[
                "--state",
                state_dir.to_str().unwrap(),
                "--append",
                append_tsv.to_str().unwrap(),
                "--output",
                dir.join("u.tsv").to_str().unwrap(),
                "--mode",
                "sideways",
            ]),
            &mut sink,
        )
        .unwrap_err();
        assert!(err.0.contains("genes|samples"), "{}", err.0);

        // A gene-shaped append forced into sample mode is a shape error.
        let err = cmd_update(
            &argmap(&[
                "--state",
                state_dir.to_str().unwrap(),
                "--append",
                append_tsv.to_str().unwrap(),
                "--output",
                dir.join("u.tsv").to_str().unwrap(),
                "--mode",
                "samples",
            ]),
            &mut sink,
        )
        .unwrap_err();
        assert!(err.0.contains("genes"), "{}", err.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_flags_need_the_distributed_path() {
        let mut sink = Vec::new();
        let err = cmd_infer(
            &argmap(&[
                "--input",
                "m.tsv",
                "--output",
                "e.tsv",
                "--status-addr",
                "127.0.0.1:0",
            ]),
            &mut sink,
        )
        .unwrap_err();
        assert!(err.0.contains("--ranks"), "{}", err.0);

        let err = cmd_infer(
            &argmap(&[
                "--input",
                "m.tsv",
                "--output",
                "e.tsv",
                "--status-interval-ms",
                "50",
            ]),
            &mut sink,
        )
        .unwrap_err();
        assert!(err.0.contains("--status-addr"), "{}", err.0);
    }

    /// End-to-end live telemetry through the CLI: a 2-rank in-process
    /// run maintaining a --status-file, `gnet status` on the final
    /// snapshot, and the byte-identity invariant vs a telemetry-off run.
    #[test]
    fn live_status_file_flows_into_gnet_status() {
        let dir = tmpdir("live_status");
        let matrix = dir.join("m.tsv");
        let edges_live = dir.join("live.tsv");
        let edges_off = dir.join("off.tsv");
        let status = dir.join("status.json");
        let mut sink = Vec::new();
        cmd_generate(
            &argmap(&[
                "--genes",
                "24",
                "--samples",
                "120",
                "--seed",
                "3",
                "--out",
                matrix.to_str().unwrap(),
            ]),
            &mut sink,
        )
        .unwrap();
        for (out_path, telem) in [(&edges_live, true), (&edges_off, false)] {
            let mut tokens = vec![
                "--input".to_string(),
                matrix.to_str().unwrap().to_string(),
                "--output".to_string(),
                out_path.to_str().unwrap().to_string(),
                "--q".to_string(),
                "8".to_string(),
                "--ranks".to_string(),
                "2".to_string(),
            ];
            if telem {
                tokens.extend([
                    "--status-file".to_string(),
                    status.to_str().unwrap().to_string(),
                    "--status-interval-ms".to_string(),
                    "5".to_string(),
                ]);
            }
            cmd_infer(&ArgMap::parse(tokens).unwrap(), &mut sink).unwrap();
        }
        assert_eq!(
            std::fs::read(&edges_live).unwrap(),
            std::fs::read(&edges_off).unwrap(),
            "telemetry must never perturb the edge set"
        );

        let mut status_out = Vec::new();
        cmd_status(
            &argmap(&["--target", status.to_str().unwrap()]),
            &mut status_out,
        )
        .unwrap();
        let text = String::from_utf8(status_out).unwrap();
        assert!(text.contains("gnet-status/1: done"), "{text}");
        assert!(text.lines().count() >= 5, "per-rank table present: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
