//! `gnet` — construct and analyse whole-genome MI networks.
//!
//! ```text
//! gnet generate --genes 500 --samples 400 --out m.tsv --truth t.tsv
//! gnet infer    --input m.tsv --output edges.tsv --q 30 [--dpi 0.05] [--ranks 4]
//! gnet score    --edges edges.tsv --truth t.tsv --matrix m.tsv
//! gnet stats    --input m.tsv
//! gnet predict  --genes 15575 --samples 3137 --q 30
//! ```

use gnet_cli::{
    cmd_analyze, cmd_bench, cmd_conformance, cmd_generate, cmd_infer, cmd_predict, cmd_score,
    cmd_simd, cmd_stats, cmd_status, cmd_topology, cmd_trace_report, cmd_update, cmd_worker,
    ArgMap,
};

const USAGE: &str = "\
gnet — whole-genome mutual-information network construction

subcommands:
  generate  synthesize a ground-truth GRN expression matrix
            --genes N --samples M [--seed S] [--avg-degree D]
            [--topology scale-free|erdos-renyi] [--batches N --batch-sd S]
            --out FILE [--truth FILE]
  infer     infer a network from a TSV matrix
            --input FILE --output FILE [--q N] [--alpha A] [--bins B]
            [--order K] [--threshold T] [--threads T] [--tile T]
            [--kernel vector|scalar] [--scheduler dynamic|static-block|
            static-cyclic|rayon] [--early-exit] [--dpi EPS] [--ranks P]
            [--quantile-normalize] [--center-batches N]
            [--trace FILE] [--metrics FILE] [--progress]
            [--trace-dir DIR (with --ranks: per-rank streams + manifest)]
            [--checkpoint-dir DIR [--checkpoint-every N] [--resume]]
            [--fault-plan PLAN] [--save-state DIR (updatable bundle for
            gnet update; excludes --ranks/--checkpoint-dir/--early-exit)]
            [--listen ADDR (with --ranks P: TCP coordinator, waits for
            P-1 workers; prints \"listening on IP:PORT\")]
            [--status-addr ADDR (live /status + /metrics HTTP listener;
            prints \"status listening on IP:PORT\")]
            [--status-file FILE (atomically rewritten gnet-status/1
            JSON)] [--status-interval-ms N (heartbeat cadence, 250)]
  update    incrementally append genes or samples to a saved state
            --state DIR --append FILE --output FILE
            [--mode genes|samples] [--checkpoint-every N] [--resume]
            [--fault-plan PLAN]
  worker    join a multi-process run started by infer --listen
            --connect ADDR [--trace-dir DIR]
  status    one-screen live summary of a running inference
            <IP:PORT | FILE> (or --target ...) [--metrics] [--json]
  trace-report  offline analysis of recorded traces
            (--trace FILE | --trace-dir DIR) [--chrome FILE]
            [--flame FILE] [--no-calibrate]
  bench     seeded benchmark suite + regression gate
            [--quick] [--reps K] [--out FILE] [--baseline FILE]
            [--update-baseline] [--inject-slowdown F]
  simd      report the SIMD backend the kernel dispatcher picked
            [--verify (exit nonzero on an unhealthy dispatch)]
  score     score an edge list against a ground truth
            --edges FILE --truth FILE --matrix FILE
  topology  topology report of an edge list
            --edges FILE --matrix FILE [--hubs N]
  analyze   workspace static analysis, scheduler race checker,
            and ring-protocol model checker
            [--root DIR] [--allowlist FILE] [--json] [--deny]
            [--deny-stale] [--unsafe-audit] [--concurrency] [--runs N]
            [--protocol] [--self-check] [--full] [--max-ranks N]
            [--replay SPEC]
  conformance  differential & metamorphic conformance harness
            [--level quick|full] [--seed S] [--json] [--report FILE]
            [--self-check] [--replay SPEC]
  stats     summarize a TSV matrix            --input FILE
  predict   modeled platform runtimes         [--genes N] [--samples M] [--q N]
";

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(sub) = argv.next() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let mut tokens: Vec<String> = argv.collect();
    // `gnet status 127.0.0.1:8080` / `gnet status run/status.json`:
    // a leading bare token is sugar for --target.
    if sub == "status" && tokens.first().is_some_and(|t| !t.starts_with("--")) {
        tokens.insert(0, "--target".to_string());
    }
    let args = match ArgMap::parse(tokens) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    let result = match sub.as_str() {
        "generate" => cmd_generate(&args, &mut stdout),
        "infer" => cmd_infer(&args, &mut stdout),
        "update" => cmd_update(&args, &mut stdout),
        "worker" => cmd_worker(&args, &mut stdout),
        "status" => cmd_status(&args, &mut stdout),
        "score" => cmd_score(&args, &mut stdout),
        "topology" => cmd_topology(&args, &mut stdout),
        "trace-report" => cmd_trace_report(&args, &mut stdout),
        "bench" => cmd_bench(&args, &mut stdout),
        "simd" => cmd_simd(&args, &mut stdout),
        "analyze" => cmd_analyze(&args, &mut stdout),
        "conformance" => cmd_conformance(&args, &mut stdout),
        "stats" => cmd_stats(&args, &mut stdout),
        "predict" => cmd_predict(&args, &mut stdout),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return;
        }
        other => {
            eprintln!("error: unknown subcommand {other:?}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
