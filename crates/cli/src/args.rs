//! Minimal `--key value` / `--flag` argument parsing (no external deps).

use std::collections::BTreeMap;
use std::fmt;

/// Parsed arguments: `--key value` pairs plus bare `--flag`s.
#[derive(Clone, Debug, Default)]
pub struct ArgMap {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Argument-parsing error with the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl ArgMap {
    /// Parse a token stream. A token `--name` followed by a non-`--`
    /// token is a key/value pair; a `--name` followed by another option
    /// (or the end) is a flag. Bare tokens are rejected.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected bare argument {tok:?}")));
            };
            if name.is_empty() {
                return Err(ArgError("empty option name".into()));
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    if values.insert(name.to_string(), value).is_some() {
                        return Err(ArgError(format!("duplicate option --{name}")));
                    }
                }
                _ => flags.push(name.to_string()),
            }
        }
        Ok(Self {
            values,
            flags,
            consumed: Default::default(),
        })
    }

    /// Value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(key.to_string());
        self.values.get(key).map(String::as_str)
    }

    /// Parsed value of `--key`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("cannot parse --{key} value {raw:?}"))),
        }
    }

    /// Required value of `--key`.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// Was bare `--flag` given?
    pub fn flag(&self, name: &str) -> bool {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.iter().any(|f| f == name)
    }

    /// Error if any provided option was never consumed — catches typos.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for key in self.values.keys().chain(self.flags.iter()) {
            if !consumed.iter().any(|c| c == key) {
                return Err(ArgError(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ArgMap, ArgError> {
        ArgMap::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn pairs_and_flags() {
        let a = parse(&["--genes", "100", "--quick", "--out", "x.tsv"]).unwrap();
        assert_eq!(a.get("genes"), Some("100"));
        assert_eq!(a.get("out"), Some("x.tsv"));
        assert!(a.flag("quick"));
        assert!(!a.flag("verbose"));
        a.reject_unknown().unwrap();
    }

    #[test]
    fn typed_defaults() {
        let a = parse(&["--genes", "64"]).unwrap();
        assert_eq!(a.get_or("genes", 10usize).unwrap(), 64);
        assert_eq!(a.get_or("samples", 200usize).unwrap(), 200);
        assert!(a.get_or::<usize>("genes", 0).is_ok());
        let b = parse(&["--genes", "xyz"]).unwrap();
        assert!(b.get_or::<usize>("genes", 0).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]).unwrap();
        let err = a.require("input").unwrap_err();
        assert!(err.0.contains("--input"));
    }

    #[test]
    fn bare_and_duplicate_rejected() {
        assert!(parse(&["oops"]).is_err());
        assert!(parse(&["--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn unknown_options_detected() {
        let a = parse(&["--tyop", "7"]).unwrap();
        let _ = a.get("typo");
        assert!(a.reject_unknown().is_err());
    }

    #[test]
    fn trailing_option_is_a_flag() {
        let a = parse(&["--dpi"]).unwrap();
        assert!(a.flag("dpi"));
    }
}
