//! End-to-end multi-process runs of the real `gnet` binary: one
//! coordinator (`gnet infer --listen`) plus three worker processes
//! (`gnet worker --connect`) over loopback TCP, byte-compared against
//! the in-process `--ranks 4` run of the same matrix.
//!
//! Three escalating scenarios: a clean mesh, the replayable acceptance
//! plan (one simulated rank crash + one mid-frame cut), and a real
//! `SIGKILL` of a worker process mid-round.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

fn gnet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gnet"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gnet-process-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn generate_matrix(dir: &Path) -> PathBuf {
    let out = dir.join("matrix.tsv");
    let status = gnet()
        .args([
            "generate",
            "--genes",
            "24",
            "--samples",
            "80",
            "--seed",
            "9",
            "--out",
        ])
        .arg(&out)
        .stdout(Stdio::null())
        .status()
        .expect("run gnet generate");
    assert!(status.success(), "gnet generate failed");
    out
}

/// The in-process distributed reference: the byte string every
/// multi-process run below must reproduce exactly.
fn reference_edges(dir: &Path, matrix: &Path) -> Vec<u8> {
    let out = dir.join("reference.tsv");
    let status = gnet()
        .args([
            "infer",
            "--ranks",
            "4",
            "--q",
            "8",
            "--threads",
            "1",
            "--tile",
            "4",
        ])
        .arg("--input")
        .arg(matrix)
        .arg("--output")
        .arg(&out)
        .stdout(Stdio::null())
        .status()
        .expect("run in-process gnet infer --ranks 4");
    assert!(status.success(), "reference infer failed");
    std::fs::read(&out).expect("reference edge file readable")
}

/// Spawn the coordinator and block until it announces its address. The
/// returned reader continues the coordinator's stdout stream.
fn spawn_coordinator(
    matrix: &Path,
    out: &Path,
    extra: &[&str],
) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = gnet()
        .args([
            "infer",
            "--ranks",
            "4",
            "--q",
            "8",
            "--threads",
            "1",
            "--tile",
            "4",
        ])
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .arg("--input")
        .arg(matrix)
        .arg("--output")
        .arg(out)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn coordinator");
    let mut reader = BufReader::new(child.stdout.take().expect("coordinator stdout piped"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .expect("read coordinator stdout");
        assert!(n > 0, "coordinator exited before announcing its address");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    (child, reader, addr)
}

fn spawn_worker(addr: &str) -> Child {
    gnet()
        .args(["worker", "--connect", addr])
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn worker")
}

/// Drain the coordinator's remaining stdout and wait for a clean exit.
fn finish_coordinator(mut child: Child, mut reader: BufReader<ChildStdout>) -> String {
    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("drain coordinator stdout");
    let status = child.wait().expect("wait for coordinator");
    assert!(status.success(), "coordinator failed; output:\n{rest}");
    rest
}

#[test]
fn clean_multi_process_run_is_byte_identical_to_in_process() {
    let dir = tmpdir("clean");
    let matrix = generate_matrix(&dir);
    let reference = reference_edges(&dir, &matrix);

    let out = dir.join("tcp.tsv");
    let (child, reader, addr) = spawn_coordinator(&matrix, &out, &[]);
    let workers: Vec<Child> = (0..3).map(|_| spawn_worker(&addr)).collect();
    for mut w in workers {
        let status = w.wait().expect("wait for worker");
        assert!(status.success(), "worker failed");
    }
    let summary = finish_coordinator(child, reader);
    assert!(summary.contains("4 ranks"), "{summary}");

    let tcp = std::fs::read(&out).expect("tcp edge file readable");
    assert_eq!(
        tcp, reference,
        "multi-process edges diverged from in-process"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn acceptance_plan_crash_plus_cut_recovers_byte_identically() {
    let dir = tmpdir("plan");
    let matrix = generate_matrix(&dir);
    let reference = reference_edges(&dir, &matrix);

    // The PR's acceptance plan: rank 2's worker process dies at ring
    // round 1, and the first frame on the 3→0 edge after that is cut
    // mid-frame (truncated on the wire, connection severed).
    let out = dir.join("chaos.tsv");
    let (child, reader, addr) = spawn_coordinator(
        &matrix,
        &out,
        &[
            "--fault-plan",
            "seed=7;crash(rank=2,round=1);cut(from=3,to=0,nth=1)",
        ],
    );
    let workers: Vec<Child> = (0..3).map(|_| spawn_worker(&addr)).collect();
    for mut w in workers {
        // The crashed rank's worker exits 0 too — a *simulated* crash is
        // reported, not an error.
        let status = w.wait().expect("wait for worker");
        assert!(status.success(), "worker failed");
    }
    let summary = finish_coordinator(child, reader);
    assert!(
        summary.contains("recovered from"),
        "coordinator must report the recovery: {summary}"
    );

    let chaos = std::fs::read(&out).expect("chaos edge file readable");
    assert_eq!(chaos, reference, "chaos run edges diverged from in-process");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killing_a_worker_process_mid_round_recovers_byte_identically() {
    let dir = tmpdir("kill");
    let matrix = generate_matrix(&dir);
    let reference = reference_edges(&dir, &matrix);

    // Stall the round-2 ring frame on every ring edge so no rank can
    // finish its last round (and bank its RESULTS with the coordinator)
    // before the kill lands: whichever rank the victim drew, it dies
    // with work the survivors must recover.
    let out = dir.join("killed.tsv");
    let plan = "seed=7;stall(from=0,to=1,nth=1,us=800000);\
                stall(from=1,to=2,nth=1,us=800000);\
                stall(from=2,to=3,nth=1,us=800000);stall(from=3,to=0,nth=1,us=800000)";
    let (child, reader, addr) = spawn_coordinator(&matrix, &out, &["--fault-plan", plan]);
    let mut workers: Vec<Child> = (0..3).map(|_| spawn_worker(&addr)).collect();

    // Let the bootstrap finish (single-digit ms on loopback) and the
    // ring reach its stalled round, then kill one worker outright: the
    // OS closes its sockets mid-protocol, which is the real process
    // death the survivors must absorb.
    std::thread::sleep(Duration::from_millis(300));
    let mut victim = workers.remove(0);
    victim.kill().expect("kill worker process");
    victim.wait().expect("reap killed worker");

    for mut w in workers {
        let status = w.wait().expect("wait for surviving worker");
        assert!(status.success(), "surviving worker failed");
    }
    let summary = finish_coordinator(child, reader);
    assert!(
        summary.contains("recovered from"),
        "coordinator must report the recovery: {summary}"
    );

    let killed = std::fs::read(&out).expect("killed-run edge file readable");
    assert_eq!(killed, reference, "kill run edges diverged from in-process");
    std::fs::remove_dir_all(&dir).ok();
}
