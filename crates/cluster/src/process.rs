//! Multi-process cluster launch: a coordinator plus `P−1` worker
//! processes over real TCP.
//!
//! The in-process drivers ([`crate::distributed`]) share one address
//! space, so the matrix, config, and fault plan are simply borrowed by
//! every rank thread. Across processes everything must travel over the
//! wire; this module is the bootstrap that gets `P` processes from
//! "worker knows the coordinator's address" to "every rank holds a
//! [`TcpTransport`] mesh and runs the unchanged protocol loop":
//!
//! 1. **HELLO** — a worker binds an ephemeral listener, dials the
//!    coordinator (bounded retries with backoff, so workers may start
//!    first), and reports its listen port. Ranks are assigned in
//!    arrival order: the first HELLO becomes rank 1.
//! 2. **WELCOME** — the coordinator answers each worker with its rank,
//!    the cluster size, the peer timeout, the fault-plan string, the
//!    inference config (hand-rolled little-endian codec; `f64` fields
//!    travel as `to_le_bytes`, so the worker's arithmetic inputs are
//!    bit-exact), the listen-address table of every worker, and the
//!    `GNEX` snapshot of the expression matrix. Each process rebuilds
//!    its own [`FaultInjector`] from the same plan string — correct
//!    because every consultation (message faults, wire faults, connect
//!    refusals, rank crashes) happens on the sending/dialing/crashing
//!    side.
//! 3. **Mesh** — the control connection doubles as the worker↔rank-0
//!    data link (control blobs and transport frames share the same
//!    `u32 LE length ‖ payload` framing, so the stream transitions
//!    seamlessly); worker `r` dials workers `1..r` with the mesh
//!    preamble from [`crate::tcp`] and accepts workers `r+1..P`.
//!    Every listener exists before any WELCOME is sent, so mesh dials
//!    can at worst land in a listen backlog.
//! 4. **Protocol** — every process runs the same [`crate::distributed`]
//!    rank loop over its transport. A worker process dying mid-round is
//!    exactly a rank death: the OS closes its sockets, survivors see
//!    `Disconnected`, and the census/heal/redistribute machinery
//!    recovers the byte-identical edge set.
//! 5. **STATS** — after the protocol (and after writing its trace
//!    stream, so the file is durable before it is announced) each
//!    surviving worker sends a `TAG_STATS` frame; it only ever follows
//!    the worker's protocol frames (per-edge FIFO plus the send happens
//!    after the rank loop returns), so the coordinator's protocol
//!    receives never see it. Workers that report nothing — killed
//!    processes and simulated crashes alike — get synthesized crashed
//!    stats. The coordinator then writes the manifest listing every
//!    rank stream that actually exists on its filesystem.
//!
//! The scheduler policy is deliberately absent from the wire config:
//! each distributed rank is single-threaded by construction, so the
//! policy is never consulted on the worker side and shipping it would
//! cost this crate a dependency edge on the parallel runtime.

use crate::distributed::{
    frame, parse_frame, rank_main, validate_run, write_manifest, write_one_rank_trace,
    ClusterError, DistributedResult, RankStats, TAG_STATS,
};
use crate::live::{LiveDuty, TelemetryPlane};
use crate::tcp::{accept_peer, dial, RetryPolicy, TcpCounters, TcpTransport};
use crate::transport::Transport;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gnet_core::config::NullStrategy;
use gnet_core::InferenceConfig;
use gnet_expr::ExpressionMatrix;
use gnet_fault::{FaultInjector, FaultPlan, SplitMix64};
use gnet_mi::MiKernel;
use gnet_telemetry::MetricsRegistry;
use gnet_trace::MetricsSink;
use gnet_trace::Recorder;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Magic opening a HELLO blob (`"GNWK"` LE).
const HELLO_MAGIC: u32 = 0x474E_574B;
/// Magic opening a WELCOME blob (`"GNWC"` LE).
const WELCOME_MAGIC: u32 = 0x474E_5743;
/// Bootstrap wire-format version. v2 added `telem_interval_us` to the
/// WELCOME header (0 = live telemetry off); the codec is closed-world,
/// so a v1 peer is rejected rather than mis-parsed.
const BOOTSTRAP_VERSION: u8 = 2;
/// Upper bound on a control blob. The dominant term is the matrix
/// snapshot; whole-genome matrices are hundreds of MiB at most.
const MAX_BLOB: usize = 1024 * 1024 * 1024;
/// How long a worker waits for its WELCOME (the coordinator may still
/// be collecting other workers' HELLOs).
const WELCOME_TIMEOUT: Duration = Duration::from_secs(60);
/// How long the coordinator waits for each worker's HELLO blob once
/// its connection is accepted.
const HELLO_TIMEOUT: Duration = Duration::from_secs(60);
/// How long the coordinator waits for a worker's post-protocol STATS
/// before presuming the worker crashed.
const STATS_TIMEOUT: Duration = Duration::from_secs(60);
/// Per-attempt timeout for the worker's control dial.
const CONTROL_DIAL_TIMEOUT: Duration = Duration::from_secs(2);

fn transport_err(message: impl std::fmt::Display) -> ClusterError {
    ClusterError::Transport {
        message: message.to_string(),
    }
}

/// Write one length-prefixed control blob.
fn write_blob(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Read one length-prefixed control blob, bounded by `deadline`. The
/// read timeout is cleared afterwards (the stream goes on to live as a
/// mesh link, whose reader must block indefinitely).
fn read_blob(stream: &mut TcpStream, deadline: Duration) -> std::io::Result<Bytes> {
    stream.set_read_timeout(Some(deadline))?;
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_BLOB {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "control blob length exceeds sanity bound",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    stream.set_read_timeout(None)?;
    Ok(Bytes::from(payload))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(bytes: &mut Bytes) -> Result<String, ClusterError> {
    if bytes.remaining() < 4 {
        return Err(transport_err("truncated string length"));
    }
    let len = bytes.get_u32_le() as usize;
    if bytes.remaining() < len {
        return Err(transport_err("truncated string payload"));
    }
    let raw = bytes.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| transport_err("control string is not UTF-8"))
}

fn put_opt_usize(buf: &mut BytesMut, v: Option<usize>) {
    buf.put_u8(u8::from(v.is_some()));
    buf.put_u64_le(v.unwrap_or(0) as u64);
}

fn get_opt_usize(bytes: &mut Bytes) -> Option<usize> {
    let flag = bytes.get_u8();
    let v = bytes.get_u64_le() as usize;
    (flag == 1).then_some(v)
}

/// Encode the config fields the distributed rank loop consults. `f64`
/// fields travel as raw `to_le_bytes`, so the worker computes on
/// bit-exact inputs — the property the byte-identity acceptance tests
/// rest on.
fn encode_config(config: &InferenceConfig) -> Bytes {
    let mut buf = BytesMut::with_capacity(96);
    buf.put_u64_le(config.bins as u64);
    buf.put_u64_le(config.spline_order as u64);
    buf.put_u64_le(config.permutations as u64);
    buf.put_slice(&config.alpha.to_le_bytes());
    buf.put_u8(u8::from(config.mi_threshold.is_some()));
    buf.put_slice(&config.mi_threshold.unwrap_or(0.0).to_le_bytes());
    buf.put_u64_le(config.seed);
    buf.put_u8(match config.kernel {
        MiKernel::ScalarSparse => 0,
        MiKernel::VectorDense => 1,
    });
    put_opt_usize(&mut buf, config.tile_size);
    put_opt_usize(&mut buf, config.threads);
    buf.put_u8(match config.null_strategy {
        NullStrategy::ExactFull => 0,
        NullStrategy::EarlyExit => 1,
    });
    buf.put_u64_le(config.null_sample_pairs as u64);
    buf.freeze()
}

fn decode_config(bytes: &mut Bytes) -> Result<InferenceConfig, ClusterError> {
    // bins + order + perms, alpha, threshold flag+value, seed, kernel,
    // two optional usizes, null strategy, sample pairs.
    const CONFIG_WIRE_LEN: usize = 3 * 8 + 8 + 1 + 8 + 8 + 1 + 2 * 9 + 1 + 8;
    if bytes.remaining() < CONFIG_WIRE_LEN {
        return Err(transport_err("truncated config blob"));
    }
    let mut f64_bytes = [0u8; 8];
    let bins = bytes.get_u64_le() as usize;
    let spline_order = bytes.get_u64_le() as usize;
    let permutations = bytes.get_u64_le() as usize;
    bytes.copy_to_slice(&mut f64_bytes);
    let alpha = f64::from_le_bytes(f64_bytes);
    let has_threshold = bytes.get_u8() == 1;
    bytes.copy_to_slice(&mut f64_bytes);
    let mi_threshold = has_threshold.then_some(f64::from_le_bytes(f64_bytes));
    let seed = bytes.get_u64_le();
    let kernel = match bytes.get_u8() {
        0 => MiKernel::ScalarSparse,
        1 => MiKernel::VectorDense,
        _ => return Err(transport_err("unknown kernel code in config blob")),
    };
    let tile_size = get_opt_usize(bytes);
    let threads = get_opt_usize(bytes);
    let null_strategy = match bytes.get_u8() {
        0 => NullStrategy::ExactFull,
        1 => NullStrategy::EarlyExit,
        _ => return Err(transport_err("unknown null strategy in config blob")),
    };
    let null_sample_pairs = bytes.get_u64_le() as usize;
    Ok(InferenceConfig {
        bins,
        spline_order,
        permutations,
        alpha,
        mi_threshold,
        seed,
        kernel,
        tile_size,
        threads,
        null_strategy,
        null_sample_pairs,
        // The scheduler policy is never consulted by the distributed
        // rank loop (each rank is single-threaded); the default keeps
        // the struct total without a wire field.
        ..InferenceConfig::default()
    })
}

fn encode_stats(stats: &RankStats) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u32_le(stats.rank as u32);
    buf.put_u8(u8::from(stats.crashed));
    buf.put_u64_le(stats.pairs);
    buf.put_u64_le(stats.block_pairs as u64);
    buf.put_u64_le(stats.messages);
    buf.put_u64_le(stats.bytes_sent);
    buf.put_u64_le(stats.busy.as_micros() as u64);
    buf.put_u64_le(stats.reassigned_block_pairs as u64);
    buf.put_slice(&stats.clock_offset_us.to_le_bytes());
    buf.freeze()
}

fn decode_stats(mut bytes: Bytes) -> Result<RankStats, ClusterError> {
    if bytes.remaining() < 4 + 1 + 6 * 8 + 8 {
        return Err(transport_err("truncated stats frame"));
    }
    let rank = bytes.get_u32_le() as usize;
    let crashed = bytes.get_u8() == 1;
    let pairs = bytes.get_u64_le();
    let block_pairs = bytes.get_u64_le() as usize;
    let messages = bytes.get_u64_le();
    let bytes_sent = bytes.get_u64_le();
    let busy = Duration::from_micros(bytes.get_u64_le());
    let reassigned_block_pairs = bytes.get_u64_le() as usize;
    let mut offset_bytes = [0u8; 8];
    bytes.copy_to_slice(&mut offset_bytes);
    Ok(RankStats {
        rank,
        crashed,
        pairs,
        block_pairs,
        messages,
        bytes_sent,
        busy,
        reassigned_block_pairs,
        clock_offset_us: i64::from_le_bytes(offset_bytes),
    })
}

/// Everything a worker process learns from its WELCOME.
struct Welcome {
    rank: usize,
    size: usize,
    peer_timeout: Duration,
    /// Heartbeat cadence for the live telemetry plane; zero disables it.
    telem_interval_us: u64,
    traced: bool,
    trace_dir: String,
    plan: String,
    config: InferenceConfig,
    /// Listen addresses of workers `1..size` (index 0 is rank 1).
    peers: Vec<SocketAddr>,
    matrix: ExpressionMatrix,
}

#[allow(clippy::too_many_arguments)]
fn encode_welcome(
    rank: usize,
    size: usize,
    peer_timeout: Duration,
    telem_interval_us: u64,
    traced: bool,
    trace_dir: &str,
    plan: &str,
    config: &InferenceConfig,
    peers: &[SocketAddr],
    snapshot: &Bytes,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(128 + snapshot.len());
    buf.put_u32_le(WELCOME_MAGIC);
    buf.put_u8(BOOTSTRAP_VERSION);
    buf.put_u32_le(rank as u32);
    buf.put_u32_le(size as u32);
    buf.put_u64_le(peer_timeout.as_micros() as u64);
    buf.put_u64_le(telem_interval_us);
    buf.put_u8(u8::from(traced));
    put_str(&mut buf, trace_dir);
    put_str(&mut buf, plan);
    let config_blob = encode_config(config);
    buf.put_u32_le(config_blob.len() as u32);
    buf.put_slice(&config_blob);
    buf.put_u32_le(peers.len() as u32);
    for addr in peers {
        put_str(&mut buf, &addr.to_string());
    }
    buf.put_u64_le(snapshot.len() as u64);
    buf.put_slice(snapshot);
    buf.freeze()
}

fn decode_welcome(mut bytes: Bytes) -> Result<Welcome, ClusterError> {
    if bytes.remaining() < 4 + 1 + 4 + 4 + 8 + 8 + 1 {
        return Err(transport_err("truncated WELCOME header"));
    }
    if bytes.get_u32_le() != WELCOME_MAGIC {
        return Err(transport_err("WELCOME magic mismatch"));
    }
    if bytes.get_u8() != BOOTSTRAP_VERSION {
        return Err(transport_err("unsupported bootstrap version"));
    }
    let rank = bytes.get_u32_le() as usize;
    let size = bytes.get_u32_le() as usize;
    let peer_timeout = Duration::from_micros(bytes.get_u64_le());
    let telem_interval_us = bytes.get_u64_le();
    let traced = bytes.get_u8() == 1;
    let trace_dir = get_str(&mut bytes)?;
    let plan = get_str(&mut bytes)?;
    if bytes.remaining() < 4 {
        return Err(transport_err("truncated config length"));
    }
    let config_len = bytes.get_u32_le() as usize;
    if bytes.remaining() < config_len {
        return Err(transport_err("truncated config blob"));
    }
    let mut config_blob = bytes.split_to(config_len);
    let config = decode_config(&mut config_blob)?;
    if bytes.remaining() < 4 {
        return Err(transport_err("truncated peer table"));
    }
    let peer_count = bytes.get_u32_le() as usize;
    if peer_count + 1 != size || rank == 0 || rank >= size {
        return Err(transport_err(
            "WELCOME rank/size bookkeeping is inconsistent",
        ));
    }
    let mut peers = Vec::with_capacity(peer_count);
    for _ in 0..peer_count {
        let addr = get_str(&mut bytes)?;
        peers.push(
            addr.parse()
                .map_err(|_| transport_err("unparseable peer address"))?,
        );
    }
    if bytes.remaining() < 8 {
        return Err(transport_err("truncated snapshot length"));
    }
    let snap_len = bytes.get_u64_le() as usize;
    if bytes.remaining() != snap_len {
        return Err(transport_err("snapshot length disagrees with payload"));
    }
    let matrix = gnet_expr::io::from_snapshot(bytes)
        .map_err(|e| transport_err(format!("bad matrix snapshot: {e:?}")))?;
    Ok(Welcome {
        rank,
        size,
        peer_timeout,
        telem_interval_us,
        traced,
        trace_dir,
        plan,
        config,
        peers,
        matrix,
    })
}

fn injector_from_plan(plan: &str, rec: &Recorder) -> Result<FaultInjector, ClusterError> {
    if plan.is_empty() {
        return Ok(FaultInjector::none());
    }
    let parsed = FaultPlan::parse(plan)
        .map_err(|e| transport_err(format!("bad fault plan in WELCOME: {e}")))?;
    Ok(FaultInjector::from_plan_traced(&parsed, rec))
}

/// Dial the coordinator's control port with bounded retries (workers may
/// start before the coordinator is listening). No mesh preamble — the
/// first bytes on this stream are the HELLO blob.
fn dial_control(addr: SocketAddr, policy: &RetryPolicy) -> std::io::Result<TcpStream> {
    let mut rng = SplitMix64::new(policy.seed);
    let mut last = std::io::Error::new(std::io::ErrorKind::TimedOut, "control dial never ran");
    for attempt in 1..=policy.attempts.max(1) {
        if attempt > 1 {
            std::thread::sleep(policy.backoff(attempt - 1, &mut rng));
        }
        match TcpStream::connect_timeout(&addr, CONTROL_DIAL_TIMEOUT) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Serve one distributed inference as the coordinator (rank 0) of a
/// multi-process cluster: accept `ranks − 1` worker HELLOs on
/// `listener`, ship each worker everything it needs (WELCOME), run
/// rank 0's protocol loop over the control connections, collect worker
/// STATS reports, and — when `trace_dir` is set — write rank 0's trace
/// stream plus a manifest listing every rank stream present on this
/// filesystem (workers write their own streams; on a shared filesystem
/// the manifest covers all of them).
///
/// Workers that die mid-run (process kill included) surface as crashed
/// ranks with synthesized stats; the run still completes with the
/// byte-identical edge set, exactly like the in-process drivers.
///
/// # Errors
/// [`ClusterError::CoordinatorCrash`] for plans that kill rank 0,
/// [`ClusterError::Transport`] for bootstrap failures, and
/// [`ClusterError::TraceIo`] when a trace file cannot be written.
///
/// # Panics
/// Panics if `ranks < 2`, plus the same validation panics as
/// [`crate::distributed::infer_network_distributed`].
///
/// When `live` is set the WELCOME advertises its heartbeat cadence, so
/// every worker streams TELEM frames back over its control connection
/// and the plane's view covers the whole process cluster.
#[allow(clippy::too_many_arguments)]
pub fn serve_coordinator(
    listener: &TcpListener,
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    plan: Option<&FaultPlan>,
    rec: &Recorder,
    peer_timeout: Duration,
    trace_dir: Option<&std::path::Path>,
    live: Option<&TelemetryPlane>,
) -> Result<DistributedResult, ClusterError> {
    assert!(ranks >= 2, "a multi-process run needs at least one worker");
    let plan_string = plan.map(ToString::to_string).unwrap_or_default();
    let traced = trace_dir.is_some();
    let mut rank_rec = if traced {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let telem_interval_us = live.map_or(0, |p| p.interval().as_micros() as u64);
    let duty = live.map(|p| LiveDuty {
        registry: Arc::new(MetricsRegistry::new()),
        interval: p.interval(),
        view: Some(p.view()),
    });
    if let Some(d) = &duty {
        rank_rec = rank_rec.with_metrics(Arc::clone(&d.registry) as Arc<dyn MetricsSink>);
    }
    let faults = injector_from_plan(&plan_string, &rank_rec)?;
    validate_run(matrix, config, ranks, &faults)?;

    // Phase 1: HELLO — ranks assigned in arrival order.
    let mut controls: Vec<TcpStream> = Vec::with_capacity(ranks - 1);
    let mut peers: Vec<SocketAddr> = Vec::with_capacity(ranks - 1);
    for _ in 1..ranks {
        let (mut stream, peer_addr) = listener.accept().map_err(transport_err)?;
        let mut hello = read_blob(&mut stream, HELLO_TIMEOUT).map_err(transport_err)?;
        if hello.remaining() < 6 || hello.get_u32_le() != HELLO_MAGIC {
            return Err(transport_err("worker HELLO magic mismatch"));
        }
        let listen_port = hello.get_u16_le();
        peers.push(SocketAddr::new(peer_addr.ip(), listen_port));
        controls.push(stream);
    }

    // Phase 2: WELCOME. Every worker listener exists by now, so the
    // worker mesh cannot race its dials past an unbound port.
    let snapshot = gnet_expr::io::to_snapshot(matrix);
    let trace_dir_string = trace_dir
        .map(|d| d.display().to_string())
        .unwrap_or_default();
    for (idx, stream) in controls.iter_mut().enumerate() {
        let welcome = encode_welcome(
            idx + 1,
            ranks,
            peer_timeout,
            telem_interval_us,
            traced,
            &trace_dir_string,
            &plan_string,
            config,
            &peers,
            &snapshot,
        );
        write_blob(stream, &welcome).map_err(transport_err)?;
    }

    // Phases 3–4: rank 0's protocol loop over the control connections.
    let counters = Arc::new(TcpCounters::for_peers(ranks));
    let mut streams: Vec<Option<TcpStream>> = vec![None];
    streams.extend(controls.into_iter().map(Some));
    let tp = TcpTransport::from_streams(0, ranks, streams, faults, Arc::clone(&counters))
        .map_err(transport_err)?;
    let out = rank_main(
        &tp,
        matrix,
        config,
        matrix.genes(),
        rec,
        &rank_rec,
        peer_timeout,
        duty.as_ref(),
    );

    // Phase 5: collect worker STATS, synthesizing crashed stats for
    // workers that never report (killed processes, severed links, and
    // simulated crashes — crashed workers do not send STATS, their FIN
    // resolves the wait immediately).
    let mut rank_stats = vec![RankStats::default(); ranks];
    rank_stats[0] = out.stats.clone();
    for (r, slot) in rank_stats.iter_mut().enumerate().skip(1) {
        *slot = collect_stats(&tp, r);
    }
    tp.shutdown();
    counters.publish(&rank_rec);

    let result = DistributedResult {
        network: out
            .network
            .expect("coordinator rank always produces the network"),
        threshold: out.threshold,
        rank_stats,
        crashed_ranks: out.dead,
    };
    if let Some(dir) = trace_dir {
        write_one_rank_trace(dir, 0, ranks, 0, &rank_rec)?;
        let files: Vec<String> = (0..ranks)
            .map(|r| format!("rank-{r}.ndjson"))
            .filter(|name| dir.join(name).exists())
            .collect();
        write_manifest(dir, ranks, &result.crashed_ranks, &files)?;
    }
    Ok(result)
}

/// Skim frames from worker `r` until its STATS report, discarding
/// anything else (a healthy worker's STATS is the last frame it ever
/// sends, so nothing legitimate follows the protocol's leftovers). A
/// worker that disconnects or stays silent past [`STATS_TIMEOUT`] gets
/// synthesized crashed stats.
fn collect_stats(tp: &TcpTransport, r: usize) -> RankStats {
    let crashed = RankStats {
        rank: r,
        crashed: true,
        ..RankStats::default()
    };
    loop {
        match tp.recv_timeout(r, STATS_TIMEOUT) {
            Ok(raw) => match parse_frame(raw) {
                Some((TAG_STATS, _, payload)) => {
                    return decode_stats(payload).unwrap_or(crashed);
                }
                _ => continue,
            },
            Err(_) => return crashed,
        }
    }
}

/// What a worker process reports after its run.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// The rank this process was assigned.
    pub rank: usize,
    /// Cluster size.
    pub ranks: usize,
    /// True when an injected fault killed this rank mid-run (the
    /// process survives to report locally; a *process-level* kill
    /// reports nothing and is detected by the survivors instead).
    pub crashed: bool,
}

/// Run one distributed inference as a worker process: dial the
/// coordinator at `connect`, bootstrap (HELLO/WELCOME), build the TCP
/// mesh with the other workers, run this rank's protocol loop, write
/// the rank trace stream (when the run is traced), and report STATS
/// back — in that order, so the trace file is durable before the
/// coordinator can learn the rank finished.
///
/// `trace_dir_override` replaces the coordinator-announced trace
/// directory (useful when the worker's filesystem view differs).
///
/// # Errors
/// [`ClusterError::Transport`] for bootstrap or mesh failures, and
/// [`ClusterError::TraceIo`] when the trace file cannot be written.
pub fn run_worker(
    connect: SocketAddr,
    trace_dir_override: Option<&std::path::Path>,
) -> Result<WorkerReport, ClusterError> {
    // The listen port travels in HELLO, so the listener must exist
    // before the dial.
    let listener = TcpListener::bind((Ipv4Addr::UNSPECIFIED, 0)).map_err(transport_err)?;
    let listen_port = listener.local_addr().map_err(transport_err)?.port();

    let policy = RetryPolicy::default();
    let mut control = dial_control(connect, &policy).map_err(transport_err)?;
    control.set_nodelay(true).map_err(transport_err)?;
    let mut hello = BytesMut::with_capacity(6);
    hello.put_u32_le(HELLO_MAGIC);
    hello.put_u16_le(listen_port);
    write_blob(&mut control, &hello).map_err(transport_err)?;
    let welcome_blob = read_blob(&mut control, WELCOME_TIMEOUT).map_err(transport_err)?;
    let Welcome {
        rank,
        size,
        peer_timeout,
        telem_interval_us,
        traced,
        trace_dir,
        plan,
        config,
        peers,
        matrix,
    } = decode_welcome(welcome_blob)?;
    config.validate();

    let mut rank_rec = if traced {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    // Workers never hold the cluster view: beats go to rank 0 in-band.
    let duty = (telem_interval_us > 0).then(|| LiveDuty {
        registry: Arc::new(MetricsRegistry::new()),
        interval: Duration::from_micros(telem_interval_us),
        view: None,
    });
    if let Some(d) = &duty {
        rank_rec = rank_rec.with_metrics(Arc::clone(&d.registry) as Arc<dyn MetricsSink>);
    }
    // Each process rebuilds the injector from the shared plan string;
    // all consultations are local to the faulting side, so the plans
    // compose across processes exactly as they do in one process.
    let faults = injector_from_plan(&plan, &rank_rec)?;

    // Mesh: the control stream is the rank↔0 link; dial lower workers,
    // accept higher ones.
    let counters = Arc::new(TcpCounters::for_peers(size));
    let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
    streams[0] = Some(control);
    for to in 1..rank {
        let stream =
            dial(peers[to - 1], rank, to, &policy, &faults, &counters).map_err(transport_err)?;
        streams[to] = Some(stream);
    }
    for _ in rank + 1..size {
        let (from, stream) = accept_peer(&listener).map_err(transport_err)?;
        if from <= rank || from >= size || streams[from].is_some() {
            return Err(transport_err(format!(
                "mesh preamble announced an impossible peer rank {from}"
            )));
        }
        streams[from] = Some(stream);
    }
    drop(listener);
    let tp = TcpTransport::from_streams(rank, size, streams, faults, Arc::clone(&counters))
        .map_err(transport_err)?;

    // Protocol. There is no shared recorder across processes, so
    // recovery events land in this rank's own stream.
    let out = rank_main(
        &tp,
        &matrix,
        &config,
        matrix.genes(),
        &rank_rec,
        &rank_rec,
        peer_timeout,
        duty.as_ref(),
    );

    // Trace before STATS: by the time the coordinator can observe this
    // rank finished, the stream file is already durable.
    counters.publish(&rank_rec);
    if traced {
        let dir = trace_dir_override
            .map(std::path::Path::to_path_buf)
            .or_else(|| (!trace_dir.is_empty()).then(|| std::path::PathBuf::from(&trace_dir)));
        if let Some(dir) = &dir {
            write_one_rank_trace(dir, rank, size, out.stats.clock_offset_us, &rank_rec)?;
        }
    }
    // A simulated-crash rank is dead to the cluster: it must not speak
    // again (and mid-protocol STATS could be consumed by the
    // coordinator's census). Its FIN below is the death signal; the
    // coordinator synthesizes its stats.
    if !out.stats.crashed {
        tp.send(0, frame(TAG_STATS, 0, &encode_stats(&out.stats)));
    }
    tp.shutdown();
    Ok(WorkerReport {
        rank,
        ranks: size,
        crashed: out.stats.crashed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_expr::synth::{coupled_pairs, Coupling};

    fn test_config() -> InferenceConfig {
        InferenceConfig {
            permutations: 8,
            threads: Some(1),
            tile_size: Some(4),
            mi_threshold: Some(0.25),
            ..InferenceConfig::default()
        }
    }

    #[test]
    fn config_round_trips_bit_exactly() {
        for config in [
            InferenceConfig::default(),
            test_config(),
            InferenceConfig {
                kernel: MiKernel::ScalarSparse,
                alpha: 0.003_141_592_653_589_793,
                mi_threshold: Some(f64::MIN_POSITIVE),
                tile_size: None,
                threads: None,
                ..InferenceConfig::default()
            },
        ] {
            let mut wire = encode_config(&config);
            let back = decode_config(&mut wire).expect("encoded config decodes");
            assert_eq!(back.bins, config.bins);
            assert_eq!(back.spline_order, config.spline_order);
            assert_eq!(back.permutations, config.permutations);
            assert_eq!(back.alpha.to_bits(), config.alpha.to_bits());
            assert_eq!(
                back.mi_threshold.map(f64::to_bits),
                config.mi_threshold.map(f64::to_bits)
            );
            assert_eq!(back.seed, config.seed);
            assert_eq!(back.kernel, config.kernel);
            assert_eq!(back.tile_size, config.tile_size);
            assert_eq!(back.threads, config.threads);
            assert_eq!(back.null_strategy, config.null_strategy);
            assert_eq!(back.null_sample_pairs, config.null_sample_pairs);
        }
    }

    #[test]
    fn stats_round_trip() {
        let stats = RankStats {
            rank: 3,
            pairs: 12_345,
            block_pairs: 7,
            messages: 42,
            bytes_sent: 98_765,
            busy: Duration::from_micros(1_234_567),
            crashed: true,
            reassigned_block_pairs: 2,
            clock_offset_us: -987,
        };
        let back = decode_stats(encode_stats(&stats)).expect("encoded stats decode");
        assert_eq!(back, stats);
    }

    #[test]
    fn welcome_round_trips_the_whole_bootstrap() {
        let (matrix, _) = coupled_pairs(4, 40, Coupling::Linear(0.8), 5);
        let peers: Vec<SocketAddr> = vec![
            "127.0.0.1:5001".parse().expect("literal addr"),
            "127.0.0.1:5002".parse().expect("literal addr"),
            "10.0.0.7:6000".parse().expect("literal addr"),
        ];
        let snapshot = gnet_expr::io::to_snapshot(&matrix);
        let plan = "seed=7;crash(rank=2,round=1);cut(from=3,to=0,nth=1)";
        let wire = encode_welcome(
            2,
            4,
            Duration::from_millis(750),
            250_000,
            true,
            "/tmp/traces",
            plan,
            &test_config(),
            &peers,
            &snapshot,
        );
        let w = decode_welcome(wire).expect("encoded WELCOME decodes");
        assert_eq!((w.rank, w.size), (2, 4));
        assert_eq!(w.peer_timeout, Duration::from_millis(750));
        assert_eq!(w.telem_interval_us, 250_000);
        assert!(w.traced);
        assert_eq!(w.trace_dir, "/tmp/traces");
        assert_eq!(w.plan, plan);
        assert_eq!(w.peers, peers);
        assert_eq!(w.config.permutations, 8);
        assert_eq!(w.matrix.genes(), matrix.genes());
        assert_eq!(w.matrix.samples(), matrix.samples());
        assert_eq!(w.matrix.as_flat(), matrix.as_flat());
        assert_eq!(w.matrix.gene_names(), matrix.gene_names());
    }

    #[test]
    fn corrupt_welcome_is_rejected_not_panicked() {
        for bad in [
            Bytes::new(),
            Bytes::from_static(b"too short"),
            Bytes::from(vec![0u8; 64]),
        ] {
            assert!(decode_welcome(bad).is_err(), "corrupt WELCOME must error");
        }
    }

    /// Full in-machine multi-process bootstrap, minus the process
    /// boundary: the coordinator serves on one thread while worker
    /// entry points run on others, all over real loopback sockets.
    #[test]
    fn coordinator_and_workers_bootstrap_over_loopback() {
        let (matrix, _) = coupled_pairs(8, 60, Coupling::Linear(0.9), 11);
        let config = test_config();
        let reference = crate::distributed::infer_network_distributed(&matrix, &config, 3);
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).expect("loopback bind succeeds");
        let addr = listener.local_addr().expect("bound listener has an addr");
        let result = std::thread::scope(|s| {
            let workers: Vec<_> = (0..2)
                .map(|_| s.spawn(move || run_worker(addr, None)))
                .collect();
            let served = serve_coordinator(
                &listener,
                &matrix,
                &config,
                3,
                None,
                &Recorder::disabled(),
                crate::distributed::DEFAULT_PEER_TIMEOUT,
                None,
                None,
            )
            .expect("coordinator run succeeds");
            for w in workers {
                let report = w
                    .join()
                    .expect("worker thread completes")
                    .expect("worker run succeeds");
                assert_eq!(report.ranks, 3);
                assert!(!report.crashed);
            }
            served
        });
        assert_eq!(result.crashed_ranks, Vec::<usize>::new());
        assert_eq!(result.threshold.to_bits(), reference.threshold.to_bits());
        assert_eq!(
            result.network.edges().len(),
            reference.network.edges().len()
        );
        for (x, y) in result.network.edges().iter().zip(reference.network.edges()) {
            assert_eq!((x.a, x.b), (y.a, y.b));
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
        assert!(result.rank_stats.iter().all(|s| !s.crashed));
        assert!(result.rank_stats[1].pairs > 0, "worker stats were reported");
    }
}
