//! Distributed TINGe-style network construction over the simulated
//! cluster.
//!
//! Genes are block-distributed over `P` ranks. Every rank prepares its
//! own block (rank transform + B-spline weights) and computes the pairs
//! *within* it; the cross-block pairs are covered by rotating blocks
//! around a ring for `⌊P/2⌋` rounds — after round `d` rank `r` holds
//! block `(r − d) mod P`, and each unordered block pair has exactly one
//! *owner* (the rank that meets the partner block in the earlier round,
//! ties to the lower rank), so every gene pair is computed exactly once
//! across the cluster. Pooled-null moments and candidate edges are then
//! gathered to rank 0, which applies the global threshold — the same
//! statistics, in the same arithmetic, as the shared-memory pipeline.
//!
//! This is the structure of the original TINGe MPI implementation (the
//! cluster baseline the paper compares against), realized over the
//! in-process fabric of [`crate::comm`].

use crate::codec::{decode_block, encode_block, GeneBlock};
use crate::comm::{run_ranks, Endpoint};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gnet_bspline::BsplineBasis;
use gnet_core::config::NullStrategy;
use gnet_core::InferenceConfig;
use gnet_expr::ExpressionMatrix;
use gnet_graph::{Edge, GeneNetwork};
use gnet_mi::{mi_with_nulls, prepare_gene, MiKernel, MiScratch};
use gnet_permute::{PermutationSet, PooledNull};
use std::time::{Duration, Instant};

/// Per-rank execution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Rank id.
    pub rank: usize,
    /// Gene pairs this rank evaluated.
    pub pairs: u64,
    /// Block pairs (incl. its diagonal block) this rank owned.
    pub block_pairs: usize,
    /// Messages this rank sent.
    pub messages: u64,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Wall time this rank spent computing (excludes waiting).
    pub busy: Duration,
}

/// Output of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedResult {
    /// The inferred network (identical in structure to the shared-memory
    /// pipeline's output).
    pub network: GeneNetwork,
    /// Global threshold applied.
    pub threshold: f64,
    /// Per-rank statistics, in rank order.
    pub rank_stats: Vec<RankStats>,
}

/// Contiguous block bounds of rank `r` among `p` ranks over `n` genes.
fn block_range(n: usize, p: usize, r: usize) -> (usize, usize) {
    let base = n / p;
    let extra = n % p;
    let start = r * base + r.min(extra);
    let len = base + usize::from(r < extra);
    (start, start + len)
}

/// Owner of the unordered block pair `{a, b}` among `p` ranks: the rank
/// that meets the partner block in the earlier ring round (ties to the
/// smaller rank). For `a == b` the owner is `a`.
fn block_pair_owner(a: usize, b: usize, p: usize) -> usize {
    if a == b {
        return a;
    }
    let delta_b = (b + p - a) % p; // round at which b holds block a
    let delta_a = (a + p - b) % p; // round at which a holds block b
    match delta_b.cmp(&delta_a) {
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Equal => a.min(b),
    }
}

/// Run the full inference distributed over `ranks` simulated cluster
/// ranks.
///
/// # Panics
/// Panics if `ranks` is zero or exceeds the gene count, or if the config
/// requests the early-exit strategy (the distributed path implements the
/// paper-faithful exact test only).
pub fn infer_network_distributed(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
) -> DistributedResult {
    config.validate();
    assert!(ranks >= 1, "need at least one rank");
    assert!(ranks <= matrix.genes(), "more ranks than genes");
    assert_eq!(
        config.null_strategy,
        NullStrategy::ExactFull,
        "distributed path implements the exact strategy only"
    );

    let n = matrix.genes();
    let outputs = run_ranks(ranks, |ep| rank_main(ep, matrix, config, n));

    let mut network = None;
    let mut threshold = 0.0;
    let mut rank_stats = Vec::with_capacity(ranks);
    for (net, thr, stats) in outputs {
        if let Some(net) = net {
            network = Some(net);
            threshold = thr;
        }
        rank_stats.push(stats);
    }
    DistributedResult {
        network: network.expect("rank 0 produces the network"),
        threshold,
        rank_stats,
    }
}

type RankOutput = (Option<GeneNetwork>, f64, RankStats);

fn rank_main(
    ep: Endpoint,
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    n: usize,
) -> RankOutput {
    let p = ep.size();
    let r = ep.rank();
    let (start, end) = block_range(n, p, r);
    let basis = BsplineBasis::new(config.spline_order, config.bins);
    let perms = PermutationSet::generate(matrix.samples(), config.permutations, config.seed);
    let mut scratch = MiScratch::for_basis(&basis);
    let mut stats = RankStats {
        rank: r,
        ..Default::default()
    };
    let mut busy = Duration::ZERO;

    // Prepare the local block.
    let t0 = Instant::now();
    let own = GeneBlock {
        indices: (start as u32..end as u32).collect(),
        genes: (start..end)
            .map(|g| prepare_gene(matrix.gene(g), &basis))
            .collect(),
    };
    busy += t0.elapsed();

    let mut pooled = PooledNull::new();
    let mut candidates: Vec<(u32, u32, f64)> = Vec::new();

    // Diagonal block: pairs within the local gene range.
    let t1 = Instant::now();
    compute_block_pair(
        &own,
        None,
        config.kernel,
        &perms,
        &mut scratch,
        &mut pooled,
        &mut candidates,
        &mut stats.pairs,
    );
    stats.block_pairs += 1;
    busy += t1.elapsed();

    // Ring rotation: ⌊P/2⌋ rounds cover every cross-block pair once.
    let rounds = p / 2;
    let mut travelling = encode_block(&own);
    for d in 1..=rounds {
        travelling = ep.ring_shift(travelling);
        let held = (r + p - d) % p;
        // Even-P tie round: both ranks of a pair hold each other's block;
        // only the owner computes.
        if block_pair_owner(r, held, p) != r {
            continue;
        }
        let t = Instant::now();
        let foreign = decode_block(travelling.clone());
        // Canonical orientation: the block with the lower global indices
        // is always the x (row) side, exactly as in the shared-memory
        // tiles. MI is symmetric, but the permutation null I(x, π(y)) is
        // a *different draw* under role swap, so orientation must match
        // for bit-identical candidate decisions.
        let (lo, hi) = if foreign.indices[0] < own.indices[0] {
            (&foreign, &own)
        } else {
            (&own, &foreign)
        };
        compute_block_pair(
            lo,
            Some(hi),
            config.kernel,
            &perms,
            &mut scratch,
            &mut pooled,
            &mut candidates,
            &mut stats.pairs,
        );
        stats.block_pairs += 1;
        busy += t.elapsed();
    }

    // Reduce pooled-null moments and candidates to rank 0.
    let payload = encode_rank_results(&pooled, &candidates);
    let gathered = ep.gather(0, payload);

    stats.messages = ep.stats().messages();
    stats.bytes_sent = ep.stats().bytes();
    stats.busy = busy;

    if let Some(parts) = gathered {
        let mut merged = PooledNull::new();
        let mut all_candidates: Vec<(u32, u32, f64)> = Vec::new();
        for part in parts {
            let (pp, cc) = decode_rank_results(part);
            merged.merge(&pp);
            all_candidates.extend(cc);
        }
        let total_pairs = (n as u64) * (n as u64 - 1) / 2;
        let threshold = match config.mi_threshold {
            Some(t) => t,
            None => merged.global_threshold(config.alpha, total_pairs.max(1)),
        };
        all_candidates.sort_by_key(|c| (c.0, c.1));
        let network = GeneNetwork::from_edges(
            n,
            matrix.gene_names().to_vec(),
            all_candidates
                .into_iter()
                .filter(|&(_, _, v)| v > threshold)
                .map(|(i, j, v)| Edge::new(i, j, v as f32)),
        );
        (Some(network), threshold, stats)
    } else {
        (None, 0.0, stats)
    }
}

/// Evaluate all pairs between `x_block` and `y_block` (or within
/// `x_block` when `y_block` is `None`), accumulating nulls and
/// candidates. Dense expansions of the column side are built once per
/// block — the cluster-side analogue of tile reuse.
#[allow(clippy::too_many_arguments)]
fn compute_block_pair(
    x_block: &GeneBlock,
    y_block: Option<&GeneBlock>,
    kernel: MiKernel,
    perms: &PermutationSet,
    scratch: &mut MiScratch,
    pooled: &mut PooledNull,
    candidates: &mut Vec<(u32, u32, f64)>,
    pair_counter: &mut u64,
) {
    let y = y_block.unwrap_or(x_block);
    let dense: Vec<_> = match kernel {
        MiKernel::VectorDense => y.genes.iter().map(|g| Some(g.to_dense())).collect(),
        MiKernel::ScalarSparse => y.genes.iter().map(|_| None).collect(),
    };
    for (xi, xg) in x_block.genes.iter().enumerate() {
        let y_start = if y_block.is_none() { xi + 1 } else { 0 };
        for (yi, dy) in dense.iter().enumerate().skip(y_start) {
            let res = mi_with_nulls(
                kernel,
                xg,
                &y.genes[yi],
                dy.as_ref(),
                perms.as_vecs(),
                scratch,
            );
            pooled.extend(&res.null);
            *pair_counter += 1;
            if res.exceed_count() == 0 {
                let gi = x_block.indices[xi];
                let gj = y.indices[yi];
                let (a, b) = if gi < gj { (gi, gj) } else { (gj, gi) };
                candidates.push((a, b, res.observed));
            }
        }
    }
}

fn encode_rank_results(pooled: &PooledNull, candidates: &[(u32, u32, f64)]) -> Bytes {
    let (count, mean, m2, max) = pooled.raw_parts();
    let mut buf = BytesMut::with_capacity(32 + 4 + candidates.len() * 16);
    buf.put_u64_le(count);
    buf.put_f64_le(mean);
    buf.put_f64_le(m2);
    buf.put_f64_le(max);
    buf.put_u32_le(candidates.len() as u32);
    for &(i, j, v) in candidates {
        buf.put_u32_le(i);
        buf.put_u32_le(j);
        buf.put_f64_le(v);
    }
    buf.freeze()
}

fn decode_rank_results(mut bytes: Bytes) -> (PooledNull, Vec<(u32, u32, f64)>) {
    let count = bytes.get_u64_le();
    let mean = bytes.get_f64_le();
    let m2 = bytes.get_f64_le();
    let max = bytes.get_f64_le();
    let pooled = PooledNull::from_raw_parts(count, mean, m2, max);
    let c = bytes.get_u32_le() as usize;
    let mut candidates = Vec::with_capacity(c);
    for _ in 0..c {
        let i = bytes.get_u32_le();
        let j = bytes.get_u32_le();
        let v = bytes.get_f64_le();
        candidates.push((i, j, v));
    }
    assert!(!bytes.has_remaining(), "trailing bytes in rank results");
    (pooled, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_core::infer_network;
    use gnet_expr::synth::{coupled_pairs, Coupling};
    use gnet_grnsim::{GrnConfig, SyntheticDataset};

    fn cfg() -> InferenceConfig {
        InferenceConfig {
            permutations: 12,
            threads: Some(1),
            tile_size: Some(8),
            ..InferenceConfig::default()
        }
    }

    #[test]
    fn block_ranges_partition_the_genes() {
        for (n, p) in [(10usize, 3usize), (7, 7), (100, 8), (5, 5), (16, 4)] {
            let mut covered = 0;
            let mut prev_end = 0;
            for r in 0..p {
                let (s, e) = block_range(n, p, r);
                assert_eq!(s, prev_end, "blocks must be contiguous");
                assert!(e > s, "every rank needs at least one gene (n={n}, p={p})");
                covered += e - s;
                prev_end = e;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn every_block_pair_has_exactly_one_owner() {
        for p in 1..=9 {
            for a in 0..p {
                for b in 0..p {
                    let owner = block_pair_owner(a, b, p);
                    assert!(owner == a || owner == b, "owner must be a member");
                    assert_eq!(
                        owner,
                        block_pair_owner(b, a, p),
                        "ownership must be order-independent"
                    );
                    if a != b {
                        // The owner must actually meet the partner block
                        // within ⌊P/2⌋ ring rounds.
                        let partner = if owner == a { b } else { a };
                        let round = (owner + p - partner) % p;
                        assert!(
                            round >= 1 && round <= p / 2,
                            "p={p} pair ({a},{b}): owner {owner} meets partner at round {round}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn owner_load_is_balanced() {
        let p = 8;
        let mut owned = vec![0usize; p];
        for a in 0..p {
            for b in a..p {
                owned[block_pair_owner(a, b, p)] += 1;
            }
        }
        let max = *owned.iter().max().unwrap();
        let min = *owned.iter().min().unwrap();
        assert!(max - min <= 1, "block-pair ownership skewed: {owned:?}");
    }

    #[test]
    fn distributed_matches_shared_memory_pipeline() {
        let (matrix, _) = coupled_pairs(6, 260, Coupling::Linear(0.85), 77);
        let shared = infer_network(&matrix, &cfg());
        for ranks in [1usize, 2, 3, 4, 6] {
            let dist = infer_network_distributed(&matrix, &cfg(), ranks);
            assert_eq!(
                dist.network.edge_count(),
                shared.network.edge_count(),
                "{ranks} ranks changed the edge count"
            );
            for (a, b) in dist.network.edges().iter().zip(shared.network.edges()) {
                assert_eq!(a.key(), b.key(), "{ranks} ranks changed the edges");
                assert!((a.weight - b.weight).abs() < 1e-5);
            }
            let total_pairs: u64 = dist.rank_stats.iter().map(|s| s.pairs).sum();
            assert_eq!(
                total_pairs, shared.stats.pairs,
                "{ranks} ranks: pair coverage"
            );
        }
    }

    #[test]
    fn knife_edge_pairs_do_not_flip_across_rank_counts() {
        // Weak couplings put many pairs near the threshold; any role-swap
        // in the permutation null (a bug this test exists to catch) flips
        // some of them between rank counts.
        let (matrix, _) = coupled_pairs(12, 180, Coupling::Linear(0.35), 321);
        let shared = infer_network(&matrix, &cfg());
        for ranks in [2usize, 3, 5, 8] {
            let dist = infer_network_distributed(&matrix, &cfg(), ranks);
            let a: Vec<_> = dist.network.edges().iter().map(|e| e.key()).collect();
            let b: Vec<_> = shared.network.edges().iter().map(|e| e.key()).collect();
            assert_eq!(a, b, "{ranks} ranks flipped a knife-edge pair");
            for (x, y) in dist.network.edges().iter().zip(shared.network.edges()) {
                assert_eq!(
                    x.weight, y.weight,
                    "{ranks} ranks: weights must be bit-identical under canonical orientation"
                );
            }
        }
    }

    #[test]
    fn distributed_works_on_grn_data_with_odd_ranks() {
        let ds = SyntheticDataset::generate(
            GrnConfig {
                genes: 21,
                samples: 150,
                ..GrnConfig::small()
            },
            5,
        );
        let shared = infer_network(&ds.matrix, &cfg());
        let dist = infer_network_distributed(&ds.matrix, &cfg(), 5);
        let a: Vec<_> = dist.network.edges().iter().map(|e| e.key()).collect();
        let b: Vec<_> = shared.network.edges().iter().map(|e| e.key()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn communication_volume_scales_with_rounds_not_pairs() {
        let (matrix, _) = coupled_pairs(8, 100, Coupling::Linear(0.8), 3);
        let dist = infer_network_distributed(&matrix, &cfg(), 4);
        for s in &dist.rank_stats {
            // Each rank ships its travelling block ⌊P/2⌋ times plus the
            // gather/barrier traffic — single-digit message counts.
            assert!(
                s.messages <= 8,
                "rank {} sent {} messages",
                s.rank,
                s.messages
            );
            assert!(s.bytes_sent > 0);
        }
    }

    #[test]
    fn scalar_kernel_path_matches_too() {
        let (matrix, _) = coupled_pairs(4, 120, Coupling::Linear(0.9), 9);
        let scalar_cfg = InferenceConfig {
            kernel: MiKernel::ScalarSparse,
            ..cfg()
        };
        let shared = infer_network(&matrix, &scalar_cfg);
        let dist = infer_network_distributed(&matrix, &scalar_cfg, 3);
        let a: Vec<_> = dist.network.edges().iter().map(|e| e.key()).collect();
        let b: Vec<_> = shared.network.edges().iter().map(|e| e.key()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "more ranks than genes")]
    fn too_many_ranks_rejected() {
        let (matrix, _) = coupled_pairs(2, 50, Coupling::Linear(0.5), 1);
        let _ = infer_network_distributed(&matrix, &cfg(), 10);
    }
}
