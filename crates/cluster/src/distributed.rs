//! Distributed TINGe-style network construction over the simulated
//! cluster.
//!
//! Genes are block-distributed over `P` ranks. Every rank prepares its
//! own block (rank transform + B-spline weights) and computes the pairs
//! *within* it; the cross-block pairs are covered by rotating blocks
//! around a ring for `⌊P/2⌋` rounds — after round `d` rank `r` holds
//! block `(r − d) mod P`, and each unordered block pair has exactly one
//! *owner* (the rank that meets the partner block in the earlier round,
//! ties to the lower rank), so every gene pair is computed exactly once
//! across the cluster. Pooled-null moments and candidate edges are then
//! collected on rank 0, which applies the global threshold — the same
//! statistics, in the same arithmetic, as the shared-memory pipeline.
//!
//! This is the structure of the original TINGe MPI implementation (the
//! cluster baseline the paper compares against), realized over the
//! in-process fabric of [`crate::comm`].
//!
//! ## Failure awareness
//!
//! The driver survives the loss of any non-coordinator rank, with the
//! same edge set as the fault-free run (degraded wall time only):
//!
//! * **Self-healing ring.** Every frame carries a tag and round number,
//!   and every ring receive is bounded by a timeout. When a rank's
//!   predecessor dies (or a frame is dropped/late), the rank
//!   *reconstructs* the block it expected — block `(r − d) mod P` —
//!   directly from the shared expression matrix and forwards it as its
//!   own travelling block, so only the immediate successor pays the
//!   detection latency and the ring stays whole downstream.
//! * **Census + redistribution.** Rank 0 collects per-rank results with
//!   bounded receives; ranks that never report are presumed dead. All
//!   block pairs owned by dead ranks are redistributed round-robin over
//!   the survivors (rank 0 included), recomputed from scratch in the
//!   same canonical orientation, and merged as *supplements*. A rank
//!   falsely presumed dead (its results frame was dropped) receives an
//!   empty assignment and terminates; a survivor whose supplement never
//!   arrives has its share recomputed by rank 0 — the ultimate backstop.
//! * **Coordinator loss is job loss.** A fault plan that kills rank 0 is
//!   rejected up front with [`ClusterError::CoordinatorCrash`] (MPI
//!   semantics: the job cannot outlive its root).
//!
//! In a fault-free run the recovery protocol is pure bookkeeping: every
//! assignment is empty, merging empty supplements is an exact no-op, and
//! results merge in rank order — so the output is bit-identical to the
//! historical gather-based implementation.

use crate::codec::{decode_block, encode_block, GeneBlock};
use crate::comm::{run_ranks_on, Fabric, RecvTimeoutError};
use crate::live::{live_mark_dead, live_tick, BeatState, LiveDuty, TelemetryPlane};
use crate::protocol::{
    block_range, Effect, Event as ProtoEvent, Frame as ProtoFrame, Mutation, Phase, RankMachine,
    Wait,
};
use crate::transport::Transport;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gnet_bspline::BsplineBasis;
use gnet_core::config::NullStrategy;
use gnet_core::InferenceConfig;
use gnet_expr::ExpressionMatrix;
use gnet_fault::{names, Fault, FaultInjector};
use gnet_graph::{Edge, GeneNetwork};
use gnet_mi::{mi_with_nulls, prepare_gene, MiKernel, MiScratch};
use gnet_permute::{PermutationSet, PooledNull};
use gnet_trace::{MetricsSink, Recorder, Span, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a rank waits on a peer before presuming it dead. Generous
/// relative to any real round time; a crashed rank's dropped endpoint is
/// detected near-instantly anyway (channel disconnect), so this bound
/// matters only for dropped or delayed frames.
pub const DEFAULT_PEER_TIMEOUT: Duration = Duration::from_secs(5);

/// Frame tags: every message on the fabric is `tag (1B) ‖ round (u32 LE)
/// ‖ payload`. The round field is meaningful for `BLOCK` frames only
/// (zero elsewhere) and lets a receiver discard a stale, delayed block
/// instead of mistaking it for the current round's.
const TAG_BLOCK: u8 = 1;
const TAG_RESULTS: u8 = 3;
const TAG_ASSIGN: u8 = 4;
const TAG_SUPPLEMENT: u8 = 5;
/// Clock-sync stamp, circulated 0 → 1 → … → P−1 before compute when
/// per-rank tracing is armed. Payload: estimated rank-0 time (µs since
/// rank 0's trace epoch) at send, as `i64` LE.
const TAG_CLOCK: u8 = 6;
/// Post-protocol stats report from a worker process to the coordinator
/// (multi-process runs only; see [`crate::process`]). Per-edge FIFO
/// guarantees it never overtakes the worker's protocol frames.
pub(crate) const TAG_STATS: u8 = 7;

pub(crate) const FRAME_HEADER: usize = 5;

/// A distributed run that cannot proceed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// The fault plan kills rank 0. The coordinator owns the census, the
    /// redistribution, and the final merge — its loss is job loss, and
    /// the driver refuses up front rather than hanging every survivor.
    CoordinatorCrash {
        /// Ring round at which the plan would kill rank 0.
        round: usize,
    },
    /// Writing a per-rank trace file or the manifest failed. The network
    /// was still inferred; only the observability output is missing.
    TraceIo {
        /// Path being written when the error hit.
        path: String,
        /// OS error rendering.
        message: String,
    },
    /// The transport could not be established (socket bind/dial/accept
    /// failure) — the run never started.
    Transport {
        /// OS error rendering.
        message: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CoordinatorCrash { round } => write!(
                f,
                "fault plan kills rank 0 at round {round}: coordinator loss is job loss \
                 (no recovery path); rerun without the rank-0 crash"
            ),
            Self::TraceIo { path, message } => {
                write!(f, "cannot write rank trace {path}: {message}")
            }
            Self::Transport { message } => {
                write!(f, "cannot establish cluster transport: {message}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Per-rank execution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Rank id.
    pub rank: usize,
    /// Gene pairs this rank evaluated.
    pub pairs: u64,
    /// Block pairs (incl. its diagonal block) this rank owned.
    pub block_pairs: usize,
    /// Messages this rank sent.
    pub messages: u64,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Wall time this rank spent computing (excludes waiting).
    pub busy: Duration,
    /// True when an injected fault killed this rank mid-run.
    pub crashed: bool,
    /// Block pairs recomputed by this rank on behalf of dead ranks.
    pub reassigned_block_pairs: usize,
    /// This rank's trace-clock offset relative to rank 0 (µs): subtract
    /// it from a local trace timestamp to land on rank 0's timebase.
    /// Zero unless the run was traced (clock exchange only happens when
    /// per-rank recording is armed).
    pub clock_offset_us: i64,
}

/// Output of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedResult {
    /// The inferred network (identical in structure to the shared-memory
    /// pipeline's output).
    pub network: GeneNetwork,
    /// Global threshold applied.
    pub threshold: f64,
    /// Per-rank statistics, in rank order.
    pub rank_stats: Vec<RankStats>,
    /// Ranks rank 0 presumed dead during the census (crashed, or their
    /// results frame was lost). Empty on a fault-free run.
    pub crashed_ranks: Vec<usize>,
}

/// Run the full inference distributed over `ranks` simulated cluster
/// ranks (fault-free fabric).
///
/// # Panics
/// Panics if `ranks` is zero or exceeds the gene count, or if the config
/// requests the early-exit strategy (the distributed path implements the
/// paper-faithful exact test only).
pub fn infer_network_distributed(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
) -> DistributedResult {
    infer_network_distributed_faulty(
        matrix,
        config,
        ranks,
        &FaultInjector::none(),
        &Recorder::disabled(),
        DEFAULT_PEER_TIMEOUT,
    )
    .expect("fault-free distributed run cannot fail")
}

/// Run the distributed inference on a fabric armed with `faults`,
/// recording recovery events on `rec`. With `FaultInjector::none()` this
/// is exactly [`infer_network_distributed`], bit for bit.
///
/// Any non-coordinator rank may crash, and messages may be dropped or
/// delayed; the run still completes with the same edge set as the
/// fault-free run (wall time degrades, never the result). Plans that
/// kill rank 0 are rejected with [`ClusterError::CoordinatorCrash`].
///
/// # Panics
/// Same validation panics as [`infer_network_distributed`].
pub fn infer_network_distributed_faulty(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    faults: &FaultInjector,
    rec: &Recorder,
    peer_timeout: Duration,
) -> Result<DistributedResult, ClusterError> {
    run_distributed(matrix, config, ranks, faults, rec, peer_timeout, None, None)
}

/// [`infer_network_distributed_faulty`] with per-rank trace capture:
/// every rank records its own spans/counters/events into a private
/// [`Recorder`] whose stream is written to `trace_dir/rank-<r>.ndjson`
/// after the run, and the driver (standing in for the coordinator's
/// filesystem) writes `trace_dir/manifest.json` listing them.
///
/// Before the first ring round the ranks run a clock exchange — a
/// [`TAG_CLOCK`] stamp circulated 0 → 1 → … → P−1 on the existing ring
/// channels — so each rank learns its trace-epoch offset from rank 0
/// ([`RankStats::clock_offset_us`], also stamped into its NDJSON meta
/// line as `clock_offset_us`). Offline tooling subtracts the offset to
/// align all streams on rank 0's timebase. A lost clock frame degrades
/// the offset to zero for that rank (recorded as `clock.sync` with
/// `ok:false`), never the run.
///
/// # Errors
/// [`ClusterError::CoordinatorCrash`] for rank-0 crash plans, and
/// [`ClusterError::TraceIo`] when a trace file cannot be written.
///
/// # Panics
/// Same validation panics as [`infer_network_distributed`].
pub fn infer_network_distributed_traced(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    faults: &FaultInjector,
    rec: &Recorder,
    peer_timeout: Duration,
    trace_dir: &std::path::Path,
) -> Result<DistributedResult, ClusterError> {
    run_distributed(
        matrix,
        config,
        ranks,
        faults,
        rec,
        peer_timeout,
        Some(trace_dir),
        None,
    )
}

/// [`infer_network_distributed_faulty`] with the live telemetry plane
/// attached: every rank carries a metrics registry (installed as its
/// recorder's [`MetricsSink`]) and beats rank 0 on the plane's cadence;
/// rank 0 folds the beats — its own included — into `plane`'s cluster
/// view. The edge set is byte-identical to the same run without the
/// plane (pinned by the `live` test suite).
///
/// # Errors
/// As [`infer_network_distributed_faulty`].
///
/// # Panics
/// Same validation panics as [`infer_network_distributed`].
#[allow(clippy::too_many_arguments)]
pub fn infer_network_distributed_live(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    faults: &FaultInjector,
    rec: &Recorder,
    peer_timeout: Duration,
    plane: &TelemetryPlane,
) -> Result<DistributedResult, ClusterError> {
    run_distributed(
        matrix,
        config,
        ranks,
        faults,
        rec,
        peer_timeout,
        None,
        Some(plane),
    )
}

/// Shared up-front validation of every distributed entry point.
pub(crate) fn validate_run(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    faults: &FaultInjector,
) -> Result<(), ClusterError> {
    config.validate();
    assert!(ranks >= 1, "need at least one rank");
    assert!(ranks <= matrix.genes(), "more ranks than genes");
    assert_eq!(
        config.null_strategy,
        NullStrategy::ExactFull,
        "distributed path implements the exact strategy only"
    );
    if let Some(plan) = faults.plan() {
        for f in &plan.faults {
            if let Fault::CrashRank { rank: 0, round } = *f {
                return Err(ClusterError::CoordinatorCrash { round });
            }
        }
    }
    Ok(())
}

/// Fold the per-rank outputs into the run result and (on traced runs)
/// write the per-rank streams plus manifest.
fn assemble_result(
    outputs: Vec<RankOutput>,
    trace_dir: Option<&std::path::Path>,
    rank_recs: Option<Vec<Recorder>>,
) -> Result<DistributedResult, ClusterError> {
    let mut network = None;
    let mut threshold = 0.0;
    let mut crashed_ranks = Vec::new();
    let mut rank_stats = Vec::with_capacity(outputs.len());
    for out in outputs {
        if let Some(net) = out.network {
            network = Some(net);
            threshold = out.threshold;
            crashed_ranks = out.dead;
        }
        rank_stats.push(out.stats);
    }
    let result = DistributedResult {
        network: network.expect("rank 0 produces the network"),
        threshold,
        rank_stats,
        crashed_ranks,
    };
    if let (Some(dir), Some(recs)) = (trace_dir, rank_recs) {
        write_rank_traces(dir, &recs, &result)?;
    }
    Ok(result)
}

#[allow(clippy::too_many_arguments)]
fn run_distributed(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    faults: &FaultInjector,
    rec: &Recorder,
    peer_timeout: Duration,
    trace_dir: Option<&std::path::Path>,
    live: Option<&TelemetryPlane>,
) -> Result<DistributedResult, ClusterError> {
    validate_run(matrix, config, ranks, faults)?;
    let n = matrix.genes();
    let fabric = Fabric::with_faults(ranks, faults.clone());
    let rank_recs: Option<Vec<Recorder>> =
        trace_dir.map(|_| (0..ranks).map(|_| Recorder::enabled()).collect());
    let duties: Option<Vec<LiveDuty>> = live.map(|p| LiveDuty::for_ranks(p, ranks));
    let outputs = run_ranks_on(fabric, |ep| {
        let duty = duties.as_ref().map(|d| &d[ep.rank()]);
        let mut rank_rec = rank_recs
            .as_ref()
            .map_or_else(Recorder::disabled, |recs| recs[ep.rank()].clone());
        if let Some(d) = duty {
            rank_rec = rank_rec.with_metrics(Arc::clone(&d.registry) as Arc<dyn MetricsSink>);
        }
        // `ep` stays owned by this closure frame: returning drops it,
        // which closes this rank's channels — the death signal the
        // survivors' bounded receives detect.
        rank_main(&ep, matrix, config, n, rec, &rank_rec, peer_timeout, duty)
    });
    assemble_result(outputs, trace_dir, rank_recs)
}

/// Run the full inference distributed over `ranks` ranks talking TCP
/// over loopback (fault-free). The result is byte-identical to
/// [`infer_network_distributed`] — the conformance suite pins this.
///
/// # Errors
/// [`ClusterError::Transport`] when the loopback mesh cannot be bound.
///
/// # Panics
/// Same validation panics as [`infer_network_distributed`].
pub fn infer_network_distributed_tcp(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
) -> Result<DistributedResult, ClusterError> {
    infer_network_distributed_tcp_faulty(
        matrix,
        config,
        ranks,
        &FaultInjector::none(),
        &Recorder::disabled(),
        DEFAULT_PEER_TIMEOUT,
    )
}

/// [`infer_network_distributed_tcp`] over a fault-armed mesh: wire
/// faults (`refuse`/`cut`/`stall`/`trunc`) act on the real sockets, and
/// rank crashes surface to survivors as TCP FINs instead of dropped
/// channels — same recovery protocol, same edge set.
///
/// # Errors
/// [`ClusterError::CoordinatorCrash`] for rank-0 crash plans and
/// [`ClusterError::Transport`] for mesh establishment failures.
///
/// # Panics
/// Same validation panics as [`infer_network_distributed`].
pub fn infer_network_distributed_tcp_faulty(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    faults: &FaultInjector,
    rec: &Recorder,
    peer_timeout: Duration,
) -> Result<DistributedResult, ClusterError> {
    run_distributed_tcp(matrix, config, ranks, faults, rec, peer_timeout, None, None)
}

/// [`infer_network_distributed_tcp_faulty`] with per-rank trace capture
/// (same layout as [`infer_network_distributed_traced`]); each rank's
/// stream additionally carries its `tcp.*` transport counters, so
/// offline reports can attribute network stalls.
///
/// # Errors
/// As [`infer_network_distributed_tcp_faulty`], plus
/// [`ClusterError::TraceIo`] when a trace file cannot be written.
///
/// # Panics
/// Same validation panics as [`infer_network_distributed`].
pub fn infer_network_distributed_tcp_traced(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    faults: &FaultInjector,
    rec: &Recorder,
    peer_timeout: Duration,
    trace_dir: &std::path::Path,
) -> Result<DistributedResult, ClusterError> {
    run_distributed_tcp(
        matrix,
        config,
        ranks,
        faults,
        rec,
        peer_timeout,
        Some(trace_dir),
        None,
    )
}

/// [`infer_network_distributed_tcp_faulty`] with the live telemetry
/// plane attached — the TCP twin of
/// [`infer_network_distributed_live`]. Heartbeats ride the loopback
/// sockets as `TELEM` frames (diverted from the protocol stream by the
/// reader threads), so wire-fault plans *can* target them; the edge set
/// stays byte-identical to the plane-less run regardless.
///
/// # Errors
/// As [`infer_network_distributed_tcp_faulty`].
///
/// # Panics
/// Same validation panics as [`infer_network_distributed`].
#[allow(clippy::too_many_arguments)]
pub fn infer_network_distributed_tcp_live(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    faults: &FaultInjector,
    rec: &Recorder,
    peer_timeout: Duration,
    plane: &TelemetryPlane,
) -> Result<DistributedResult, ClusterError> {
    run_distributed_tcp(
        matrix,
        config,
        ranks,
        faults,
        rec,
        peer_timeout,
        None,
        Some(plane),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_distributed_tcp(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    ranks: usize,
    faults: &FaultInjector,
    rec: &Recorder,
    peer_timeout: Duration,
    trace_dir: Option<&std::path::Path>,
    live: Option<&TelemetryPlane>,
) -> Result<DistributedResult, ClusterError> {
    validate_run(matrix, config, ranks, faults)?;
    let n = matrix.genes();
    let rank_recs: Option<Vec<Recorder>> =
        trace_dir.map(|_| (0..ranks).map(|_| Recorder::enabled()).collect());
    let duties: Option<Vec<LiveDuty>> = live.map(|p| LiveDuty::for_ranks(p, ranks));
    let outputs = crate::tcp::run_ranks_tcp(ranks, faults, |tp| {
        let duty = duties.as_ref().map(|d| &d[tp.rank()]);
        let mut rank_rec = rank_recs
            .as_ref()
            .map_or_else(Recorder::disabled, |recs| recs[tp.rank()].clone());
        if let Some(d) = duty {
            rank_rec = rank_rec.with_metrics(Arc::clone(&d.registry) as Arc<dyn MetricsSink>);
        }
        let out = rank_main(&tp, matrix, config, n, rec, &rank_rec, peer_timeout, duty);
        // Drain-then-FIN before the counters are read: survivors see
        // this rank's death (crash or completion) exactly when a
        // channel-fabric rank would have dropped its endpoint.
        tp.shutdown();
        tp.counters().publish(&rank_rec);
        out
    })
    .map_err(|e| ClusterError::Transport {
        message: e.to_string(),
    })?;
    assemble_result(outputs, trace_dir, rank_recs)
}

pub(crate) fn trace_io_err(path: &std::path::Path, e: &std::io::Error) -> ClusterError {
    ClusterError::TraceIo {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Write one rank's NDJSON stream into `dir` (created if absent),
/// returning the file name written. Shared between the in-process
/// drivers (all ranks) and the multi-process launcher (each process
/// writes its own rank's stream).
pub(crate) fn write_one_rank_trace(
    dir: &std::path::Path,
    rank: usize,
    ranks: usize,
    clock_offset_us: i64,
    rank_rec: &Recorder,
) -> Result<String, ClusterError> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir).map_err(|e| trace_io_err(dir, &e))?;
    let name = format!("rank-{rank}.ndjson");
    let path = dir.join(&name);
    let file = std::fs::File::create(&path).map_err(|e| trace_io_err(&path, &e))?;
    let mut w = std::io::BufWriter::new(file);
    rank_rec
        .write_ndjson_with_meta(
            &mut w,
            &[
                ("rank", Value::from(rank)),
                ("ranks", Value::from(ranks)),
                ("clock_offset_us", Value::I64(clock_offset_us)),
            ],
        )
        .and_then(|()| w.flush())
        .map_err(|e| trace_io_err(&path, &e))?;
    Ok(name)
}

/// Write the coordinator manifest listing the rank streams in `files`.
pub(crate) fn write_manifest(
    dir: &std::path::Path,
    ranks: usize,
    crashed_ranks: &[usize],
    files: &[String],
) -> Result<(), ClusterError> {
    use gnet_trace::escape_json;
    let mut manifest = String::with_capacity(256);
    manifest.push_str("{\"format\":\"gnet-trace-manifest\",\"version\":1");
    let _ = std::fmt::Write::write_fmt(&mut manifest, format_args!(",\"ranks\":{ranks}"));
    manifest.push_str(",\"crashed_ranks\":[");
    for (i, r) in crashed_ranks.iter().enumerate() {
        if i > 0 {
            manifest.push(',');
        }
        let _ = std::fmt::Write::write_fmt(&mut manifest, format_args!("{r}"));
    }
    manifest.push_str("],\"files\":[");
    for (i, f) in files.iter().enumerate() {
        if i > 0 {
            manifest.push(',');
        }
        escape_json(&mut manifest, f);
    }
    manifest.push_str("]}\n");
    let path = dir.join("manifest.json");
    std::fs::write(&path, manifest).map_err(|e| trace_io_err(&path, &e))
}

/// Write every rank's NDJSON stream plus the coordinator manifest into
/// `dir` (created if absent).
fn write_rank_traces(
    dir: &std::path::Path,
    recs: &[Recorder],
    result: &DistributedResult,
) -> Result<(), ClusterError> {
    let mut files = Vec::with_capacity(recs.len());
    for (r, rank_rec) in recs.iter().enumerate() {
        files.push(write_one_rank_trace(
            dir,
            r,
            recs.len(),
            result.rank_stats[r].clock_offset_us,
            rank_rec,
        )?);
    }
    write_manifest(dir, recs.len(), &result.crashed_ranks, &files)
}

/// One rank's share of reassigned work: pooled nulls plus candidates.
type Share = (PooledNull, Vec<(u32, u32, f64)>);

pub(crate) struct RankOutput {
    pub(crate) network: Option<GeneNetwork>,
    pub(crate) threshold: f64,
    pub(crate) stats: RankStats,
    /// Ranks presumed dead by the census (rank 0 only).
    pub(crate) dead: Vec<usize>,
}

pub(crate) fn frame(tag: u8, round: u32, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_HEADER + payload.len());
    buf.put_u8(tag);
    buf.put_u32_le(round);
    buf.put_slice(payload);
    buf.freeze()
}

pub(crate) fn parse_frame(mut bytes: Bytes) -> Option<(u8, u32, Bytes)> {
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let tag = bytes.get_u8();
    let round = bytes.get_u32_le();
    Some((tag, round, bytes))
}

/// Identity of the block carried by a round-`rd` `TAG_BLOCK` frame from
/// rank `from`: the sender's travelling block after round `rd − 1`. The
/// wire format does not repeat the identity in the payload — the round
/// stamp determines it, and healing preserves the invariant (a healer
/// forwards exactly the block the arithmetic says it holds).
fn block_identity(from: usize, rd: u32, p: usize) -> usize {
    let back = (rd as usize).saturating_sub(1) % p;
    (from + p - back) % p
}

/// Receive one frame from `from` and translate it into a protocol
/// event. Delayed clock stamps are consumed here (harmless at any
/// protocol point); everything else — including stale ring blocks,
/// which the [`RankMachine`] discards by round stamp — is surfaced to
/// the machine. Failures (timeout, disconnect, unparseable frame)
/// become [`ProtoEvent::Timeout`] with `fail_reason` set for the
/// recovery trace events.
fn recv_event(
    tp: &dyn Transport,
    from: usize,
    timeout: Duration,
    in_ring: bool,
    block_payload: &mut Option<Bytes>,
    pending_payload: &mut Option<Bytes>,
    fail_reason: &mut &'static str,
) -> ProtoEvent {
    let unexpected = if in_ring {
        "unexpected frame on ring channel"
    } else {
        "unexpected frame"
    };
    loop {
        return match tp.recv_timeout(from, timeout) {
            Ok(raw) => match parse_frame(raw) {
                Some((TAG_CLOCK, _, _)) => continue, // delayed clock stamp: harmless
                // Defensive only: transports divert TELEM frames before
                // they reach a protocol queue; tolerate a stray one the
                // same way rather than mistaking it for a protocol error.
                Some((crate::live::TAG_TELEM, _, _)) => continue,
                Some((TAG_BLOCK, rd, payload)) => {
                    *block_payload = Some(payload);
                    *fail_reason = unexpected;
                    ProtoEvent::Frame(ProtoFrame::Block {
                        round: rd,
                        block: block_identity(from, rd, tp.size()),
                    })
                }
                Some((TAG_RESULTS, _, payload)) => {
                    *pending_payload = Some(payload);
                    *fail_reason = unexpected;
                    ProtoEvent::Frame(ProtoFrame::Results)
                }
                Some((TAG_ASSIGN, _, payload)) => {
                    *fail_reason = unexpected;
                    ProtoEvent::Frame(ProtoFrame::Assign {
                        pairs: decode_assignment(&payload),
                    })
                }
                Some((TAG_SUPPLEMENT, _, payload)) => {
                    *pending_payload = Some(payload);
                    *fail_reason = unexpected;
                    ProtoEvent::Frame(ProtoFrame::Supplement)
                }
                _ => {
                    *fail_reason = unexpected;
                    ProtoEvent::Timeout
                }
            },
            Err(RecvTimeoutError::Timeout) => {
                *fail_reason = "peer timed out";
                ProtoEvent::Timeout
            }
            Err(RecvTimeoutError::Disconnected) => {
                *fail_reason = "peer disconnected";
                ProtoEvent::Timeout
            }
        };
    }
}

/// Microseconds since `rec`'s trace epoch, as `i64` (saturating — traces
/// never approach 2^63 µs).
fn trace_now_us(rec: &Recorder) -> i64 {
    i64::try_from(rec.elapsed().as_micros()).unwrap_or(i64::MAX)
}

/// Chain clock exchange: rank 0 stamps its trace time and sends it to
/// rank 1; each rank `r ≥ 1` measures `offset = local − stamp` on
/// receipt, then forwards its own *rank-0-timebase* estimate
/// (`local − offset`) to `r + 1`. The chain stops at `P−1` (nothing
/// wraps back to rank 0, so no stray frame outlives the exchange).
///
/// Returns the offset plus any ring-block frame that arrived while
/// waiting (possible only when the clock frame itself was dropped by an
/// injected fault) — the caller must feed that frame back into the ring
/// loop instead of losing it. A lost stamp degrades the offset to 0,
/// recorded as `clock.sync` with `ok:false`.
fn exchange_clock(
    tp: &dyn Transport,
    rank_rec: &Recorder,
    timeout: Duration,
) -> (i64, Option<(u32, Bytes)>) {
    let p = tp.size();
    let r = tp.rank();
    let mut offset = 0i64;
    let mut ok = true;
    let mut leftover = None;
    if r == 0 {
        if p > 1 {
            let stamp = trace_now_us(rank_rec);
            tp.send(1, frame(TAG_CLOCK, 0, &stamp.to_le_bytes()));
        }
    } else {
        ok = false;
        if let Ok(raw) = tp.recv_timeout(r - 1, timeout) {
            match parse_frame(raw) {
                Some((TAG_CLOCK, _, payload)) if payload.len() == 8 => {
                    let mut stamp_bytes = [0u8; 8];
                    stamp_bytes.copy_from_slice(&payload);
                    let stamp = i64::from_le_bytes(stamp_bytes);
                    offset = trace_now_us(rank_rec) - stamp;
                    ok = true;
                }
                Some((TAG_BLOCK, round, payload)) => {
                    // The stamp was dropped and ring traffic overtook
                    // it; hand the block back to the caller.
                    leftover = Some((round, payload));
                }
                _ => {}
            }
        }
        if r + 1 < p {
            let estimate = trace_now_us(rank_rec) - offset;
            tp.send(r + 1, frame(TAG_CLOCK, 0, &estimate.to_le_bytes()));
        }
    }
    rank_rec.event(
        "clock.sync",
        &[
            ("rank", Value::from(r)),
            ("offset_us", Value::I64(offset)),
            ("ok", Value::Bool(ok)),
        ],
    );
    (offset, leftover)
}

/// Prepare block `idx` of the `p`-way partition directly from the shared
/// expression matrix — the reconstruction primitive behind ring healing
/// and redistribution.
fn build_block(
    matrix: &ExpressionMatrix,
    basis: &BsplineBasis,
    n: usize,
    p: usize,
    idx: usize,
) -> GeneBlock {
    let (s, e) = block_range(n, p, idx);
    GeneBlock {
        indices: (s as u32..e as u32).collect(),
        genes: (s..e)
            .map(|g| prepare_gene(matrix.gene(g), basis))
            .collect(),
    }
}

/// One rank's protocol run over any [`Transport`]. The caller owns the
/// transport and must drop (or shut down) it after this returns — that
/// drop is the rank-death signal survivors detect, both for the channel
/// fabric (closed channels) and for TCP (FIN after drain).
#[allow(clippy::too_many_arguments)]
pub(crate) fn rank_main(
    tp: &dyn Transport,
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    n: usize,
    rec: &Recorder,
    rank_rec: &Recorder,
    peer_timeout: Duration,
    live: Option<&LiveDuty>,
) -> RankOutput {
    let p = tp.size();
    let r = tp.rank();
    let faults = tp.faults().clone();
    let (start, end) = block_range(n, p, r);
    let basis = BsplineBasis::new(config.spline_order, config.bins);
    let perms = PermutationSet::generate(matrix.samples(), config.permutations, config.seed);
    let mut scratch = MiScratch::for_basis(&basis);
    let mut stats = RankStats {
        rank: r,
        ..Default::default()
    };
    let mut busy = Duration::ZERO;

    macro_rules! die {
        () => {{
            stats.crashed = true;
            stats.messages = tp.messages_sent();
            stats.bytes_sent = tp.bytes_sent();
            stats.busy = busy;
            rank_rec.event(
                "rank.crashed",
                &[
                    ("rank", Value::from(r)),
                    ("pairs", Value::from(stats.pairs)),
                ],
            );
            // Returning hands the transport back to the caller, which
            // drops it — closed channels / TCP FIN is exactly how the
            // survivors detect the death.
            return RankOutput {
                network: None,
                threshold: 0.0,
                stats,
                dead: Vec::new(),
            };
        }};
    }

    if faults.should_crash_rank(r, 0) {
        die!();
    }

    // Clock exchange (traced runs only): learn this rank's trace-epoch
    // offset from rank 0 before any compute, so every span below can be
    // re-based onto one cluster-wide timebase offline.
    let mut leftover: Option<(u32, Bytes)> = None;
    if rank_rec.is_enabled() {
        let (offset, lo) = exchange_clock(tp, rank_rec, peer_timeout);
        stats.clock_offset_us = offset;
        leftover = lo;
    }
    if r == 0 {
        // Run-shape stamp for offline perf attribution (`gnet
        // trace-report` matches it against a calibrated kernel model).
        // Each rank's compute is single-threaded and block-decomposed,
        // so threads=1 and the local block size stand in for the
        // shared-memory pipeline's pool width and tile size.
        rank_rec.event(
            "run.config",
            &[
                ("genes", Value::from(n)),
                ("samples", Value::from(matrix.samples())),
                ("permutations", Value::from(config.permutations)),
                (
                    "kernel",
                    match config.kernel {
                        MiKernel::ScalarSparse => "scalar",
                        MiKernel::VectorDense => "vector",
                    }
                    .into(),
                ),
                ("threads", Value::from(1u64)),
                ("tile_size", Value::from(end - start)),
                ("scheduler", Value::from("ring")),
            ],
        );
    }

    // Prepare the local block.
    let t0 = Instant::now();
    let own = {
        let _prep_span = rank_rec.span("rank.prep");
        GeneBlock {
            indices: (start as u32..end as u32).collect(),
            genes: (start..end)
                .map(|g| prepare_gene(matrix.gene(g), &basis))
                .collect(),
        }
    };
    busy += t0.elapsed();

    let mut pooled = PooledNull::new();
    let mut candidates: Vec<(u32, u32, f64)> = Vec::new();

    // ---- Protocol interpreter ----
    //
    // Every protocol decision below is made by the RankMachine step
    // function (the same one the gnet-analysis model checker explores);
    // this loop owns the bytes, the kernels, the clocks, and the trace
    // events, and executes whatever effects the machine emits.
    let mut travelling = encode_block(&own);
    let mut own = Some(own);
    let prev = (r + p - 1) % p;
    // Payload of the last-delivered BLOCK frame (adopted on AcceptBlock)
    // and of the last RESULTS/SUPPLEMENT frame (consumed on accept).
    let mut block_payload: Option<Bytes> = None;
    let mut pending_payload: Option<Bytes> = None;
    // Low-level cause of the last receive failure, for recovery events.
    let mut fail_reason: &'static str = "peer timed out";
    // A healed block, decoded once and reused by the compute effect.
    let mut rebuilt: Option<GeneBlock> = None;
    let mut cur_round = 0usize;
    // Live-telemetry beat clock: armed only when a plane is attached.
    // Ticks between effects and receives — cheap (one clock compare
    // when nothing is due) and strictly outside the protocol's own
    // send/receive schedule, so telemetry can never reorder it.
    let mut beat = live.map(|d| BeatState::new(d.interval));
    macro_rules! tick {
        ($done:expr) => {
            if let (Some(duty), Some(b)) = (live, beat.as_mut()) {
                live_tick(duty, b, tp, cur_round as u32, $done, stats.pairs);
            }
        };
    }
    let mut parts: Vec<Option<Bytes>> = vec![None; p];
    let mut supplements: Vec<Option<Share>> = vec![None; p];
    let mut cache: HashMap<usize, GeneBlock> = HashMap::new();
    let mut sup_pooled = PooledNull::new();
    let mut sup_candidates: Vec<(u32, u32, f64)> = Vec::new();
    let mut output: Option<(GeneNetwork, f64, Vec<usize>)> = None;
    let mut ring_span: Option<Span> = None;
    let mut finalize_span: Option<Span> = None;

    let mut machine = RankMachine::new(r, p, Mutation::None);
    let (mut fx, mut wait) = machine.step(ProtoEvent::Start);
    loop {
        for effect in std::mem::take(&mut fx) {
            match effect {
                Effect::ComputeDiag => {
                    let t = Instant::now();
                    {
                        let _diag_span = rank_rec.span("rank.diag");
                        compute_block_pair(
                            own.as_ref().expect("own block is live in the ring"),
                            None,
                            config.kernel,
                            &perms,
                            &mut scratch,
                            &mut pooled,
                            &mut candidates,
                            &mut stats.pairs,
                        );
                    }
                    stats.block_pairs += 1;
                    busy += t.elapsed();
                }
                Effect::Send {
                    to,
                    frame: ProtoFrame::Block { round, .. },
                } => {
                    let d = round as usize;
                    if faults.should_crash_rank(r, d) {
                        die!();
                    }
                    ring_span = Some(rank_rec.span(&format!("rank.round.{d}")));
                    cur_round = d;
                    tp.send(to, frame(TAG_BLOCK, round, &travelling));
                }
                Effect::Send {
                    to,
                    frame: ProtoFrame::Results,
                } => {
                    let results = encode_rank_results(&pooled, &candidates);
                    tp.send(to, frame(TAG_RESULTS, 0, &results));
                }
                Effect::Send {
                    to,
                    frame: ProtoFrame::Assign { pairs },
                } => {
                    tp.send(to, frame(TAG_ASSIGN, 0, &encode_assignment(&pairs)));
                }
                Effect::Send {
                    to,
                    frame: ProtoFrame::Supplement,
                } => {
                    let sup = encode_rank_results(&sup_pooled, &sup_candidates);
                    tp.send(to, frame(TAG_SUPPLEMENT, 0, &sup));
                }
                Effect::AcceptBlock => {
                    travelling = block_payload
                        .take()
                        .expect("accepted BLOCK frame has a payload");
                    rebuilt = None;
                }
                Effect::Heal { block } => {
                    // The expected frame was lost (timeout, disconnect,
                    // or an unexpected frame consumed in its place):
                    // rebuild the block we know we are due and forward
                    // it, so downstream ranks never notice.
                    let t = Instant::now();
                    block_payload = None;
                    rec.counter_add(names::CNT_CRASHES_DETECTED, 1);
                    rec.event(
                        names::EVT_CRASH_DETECTED,
                        &[
                            ("rank", Value::from(r)),
                            ("peer", Value::from(prev)),
                            ("round", Value::from(cur_round)),
                            ("reason", Value::from(fail_reason)),
                        ],
                    );
                    let b = build_block(matrix, &basis, n, p, block);
                    travelling = encode_block(&b);
                    rebuilt = Some(b);
                    let latency = t.elapsed();
                    busy += latency;
                    rec.observe(names::HIST_RECOVERY_LATENCY_US, latency);
                    rec.event(
                        names::EVT_RING_HEALED,
                        &[("rank", Value::from(r)), ("block", Value::from(block))],
                    );
                }
                Effect::ComputeCross { block } => {
                    let t = Instant::now();
                    let own_ref = own.as_ref().expect("own block is live in the ring");
                    let foreign = match rebuilt.take() {
                        Some(b) => b,
                        None => match decode_block(travelling.clone()) {
                            Ok(b) => b,
                            Err(_) => {
                                // Corrupt frame: same cure as a lost one
                                // — rebuild from the source matrix and
                                // forward the good copy.
                                rec.counter_add(names::CNT_CRASHES_DETECTED, 1);
                                let b = build_block(matrix, &basis, n, p, block);
                                travelling = encode_block(&b);
                                rec.event(
                                    names::EVT_RING_HEALED,
                                    &[("rank", Value::from(r)), ("block", Value::from(block))],
                                );
                                b
                            }
                        },
                    };
                    // Canonical orientation: the block with the lower
                    // global indices is always the x (row) side, exactly
                    // as in the shared-memory tiles. MI is symmetric,
                    // but the permutation null I(x, π(y)) is a
                    // *different draw* under role swap, so orientation
                    // must match for bit-identical candidate decisions.
                    let (lo, hi) = if foreign.indices[0] < own_ref.indices[0] {
                        (&foreign, own_ref)
                    } else {
                        (own_ref, &foreign)
                    };
                    compute_block_pair(
                        lo,
                        Some(hi),
                        config.kernel,
                        &perms,
                        &mut scratch,
                        &mut pooled,
                        &mut candidates,
                        &mut stats.pairs,
                    );
                    stats.block_pairs += 1;
                    busy += t.elapsed();
                }
                Effect::AcceptResults { from } => {
                    parts[from] = Some(
                        pending_payload
                            .take()
                            .expect("accepted RESULTS frame has a payload"),
                    );
                }
                Effect::PresumeDead { rank } => {
                    if let Some(duty) = live {
                        live_mark_dead(duty, rank);
                    }
                    rec.counter_add(names::CNT_CRASHES_DETECTED, 1);
                    rec.event(
                        names::EVT_CRASH_DETECTED,
                        &[
                            ("rank", Value::from(0usize)),
                            ("peer", Value::from(rank)),
                            ("reason", Value::from(fail_reason)),
                        ],
                    );
                }
                Effect::Redistributed {
                    dead_ranks,
                    block_pairs,
                    survivors,
                } => {
                    rec.counter_add(names::CNT_PAIRS_REASSIGNED, block_pairs as u64);
                    rec.event(
                        names::EVT_REDISTRIBUTED,
                        &[
                            ("dead_ranks", Value::from(dead_ranks)),
                            ("block_pairs", Value::from(block_pairs)),
                            ("survivors", Value::from(survivors)),
                        ],
                    );
                }
                Effect::ComputeAssigned { pairs } => {
                    let t = Instant::now();
                    if let Some(own_block) = own.take() {
                        cache.insert(r, own_block);
                    }
                    if r == 0 {
                        let mut sp = PooledNull::new();
                        let mut sc = Vec::new();
                        for &(a, b) in &pairs {
                            compute_assigned_pair(
                                a,
                                b,
                                matrix,
                                &basis,
                                n,
                                p,
                                &mut cache,
                                config.kernel,
                                &perms,
                                &mut scratch,
                                &mut sp,
                                &mut sc,
                                &mut stats.pairs,
                            );
                        }
                        supplements[0] = Some((sp, sc));
                    } else {
                        for &(a, b) in &pairs {
                            compute_assigned_pair(
                                a,
                                b,
                                matrix,
                                &basis,
                                n,
                                p,
                                &mut cache,
                                config.kernel,
                                &perms,
                                &mut scratch,
                                &mut sup_pooled,
                                &mut sup_candidates,
                                &mut stats.pairs,
                            );
                        }
                    }
                    stats.reassigned_block_pairs += pairs.len();
                    stats.block_pairs += pairs.len();
                    busy += t.elapsed();
                }
                Effect::AcceptSupplement { from } => {
                    let (sp, sc) = decode_rank_results(
                        pending_payload
                            .take()
                            .expect("accepted SUPPLEMENT frame has a payload"),
                    );
                    supplements[from] = Some((sp, sc));
                }
                Effect::RecomputeShare { from, pairs } => {
                    // Survivor went silent after the census — recompute
                    // its share locally so the result never depends on
                    // it.
                    let t = Instant::now();
                    rec.counter_add(names::CNT_CRASHES_DETECTED, 1);
                    if let Some(own_block) = own.take() {
                        cache.insert(r, own_block);
                    }
                    let mut sp = PooledNull::new();
                    let mut sc = Vec::new();
                    for &(a, b) in &pairs {
                        compute_assigned_pair(
                            a,
                            b,
                            matrix,
                            &basis,
                            n,
                            p,
                            &mut cache,
                            config.kernel,
                            &perms,
                            &mut scratch,
                            &mut sp,
                            &mut sc,
                            &mut stats.pairs,
                        );
                    }
                    supplements[from] = Some((sp, sc));
                    stats.reassigned_block_pairs += pairs.len();
                    stats.block_pairs += pairs.len();
                    busy += t.elapsed();
                }
                Effect::Finalize { dead } => {
                    // Merge: phase-1 results in rank order, then
                    // supplements in rank order. Fault-free, every
                    // supplement is empty and this reduces to the
                    // historical gather-merge bit for bit.
                    parts[0] = Some(encode_rank_results(&pooled, &candidates));
                    let mut merged = PooledNull::new();
                    let mut all_candidates: Vec<(u32, u32, f64)> = Vec::new();
                    for part in std::mem::take(&mut parts).into_iter().flatten() {
                        let (pp, cc) = decode_rank_results(part);
                        merged.merge(&pp);
                        all_candidates.extend(cc);
                    }
                    for (sp, sc) in std::mem::take(&mut supplements).into_iter().flatten() {
                        merged.merge(&sp);
                        all_candidates.extend(sc);
                    }
                    let total_pairs = (n as u64) * (n as u64 - 1) / 2;
                    let threshold = match config.mi_threshold {
                        Some(t) => t,
                        None => merged.global_threshold(config.alpha, total_pairs.max(1)),
                    };
                    all_candidates.sort_by_key(|c| (c.0, c.1));
                    let network = GeneNetwork::from_edges(
                        n,
                        matrix.gene_names().to_vec(),
                        all_candidates
                            .into_iter()
                            .filter(|&(_, _, v)| v > threshold)
                            .map(|(i, j, v)| Edge::new(i, j, v as f32)),
                    );
                    output = Some((network, threshold, dead));
                }
            }
            tick!(false);
        }
        if finalize_span.is_none() && machine.phase() == Phase::Endgame {
            drop(ring_span.take());
            finalize_span = Some(rank_rec.span(if r == 0 {
                "rank.coordinate"
            } else {
                "rank.report"
            }));
        }
        let from = match wait {
            Wait::Done => break,
            Wait::Recv { from } => from,
        };
        let in_ring = machine.phase() == Phase::Ring;
        // A block the clock exchange captured while waiting for its
        // stamp takes precedence (it IS a ring frame, already
        // received); otherwise receive from the fabric.
        let event = match leftover.take() {
            Some((lr, payload)) => {
                block_payload = Some(payload);
                fail_reason = "unexpected frame on ring channel";
                ProtoEvent::Frame(ProtoFrame::Block {
                    round: lr,
                    block: block_identity(prev, lr, p),
                })
            }
            None => recv_event(
                tp,
                from,
                peer_timeout,
                in_ring,
                &mut block_payload,
                &mut pending_payload,
                &mut fail_reason,
            ),
        };
        let stepped = machine.step(event);
        fx = stepped.0;
        wait = stepped.1;
    }

    drop(ring_span.take());
    drop(finalize_span.take());
    stats.messages = tp.messages_sent();
    stats.bytes_sent = tp.bytes_sent();
    stats.busy = busy;
    rank_rec.counter_add("rank.pairs", stats.pairs);
    rank_rec.counter_add("rank.block_pairs", stats.block_pairs as u64);
    rank_rec.event(
        "rank.done",
        &[
            ("rank", Value::from(r)),
            ("pairs", Value::from(stats.pairs)),
            ("block_pairs", Value::from(stats.block_pairs)),
            ("messages", Value::from(stats.messages)),
            ("bytes_sent", Value::from(stats.bytes_sent)),
        ],
    );
    // Final beat, forced: carries `done` and the rank's closing
    // counters (the `rank.pairs` counter_add above reached the registry
    // through the recorder's metrics sink). On rank 0 this also drains
    // any last remote beats into the view.
    tick!(true);

    match output {
        Some((network, threshold, dead)) => RankOutput {
            network: Some(network),
            threshold,
            stats,
            dead,
        },
        None => RankOutput {
            network: None,
            threshold: 0.0,
            stats,
            dead: Vec::new(),
        },
    }
}

/// Recompute one reassigned block pair `{a, b}` from the shared matrix,
/// in the same canonical orientation as the original owner would have
/// used (lower block index on the x side) — so the recomputed null draws
/// and candidate decisions are identical to the lost ones.
#[allow(clippy::too_many_arguments)]
fn compute_assigned_pair(
    a: usize,
    b: usize,
    matrix: &ExpressionMatrix,
    basis: &BsplineBasis,
    n: usize,
    p: usize,
    cache: &mut HashMap<usize, GeneBlock>,
    kernel: MiKernel,
    perms: &PermutationSet,
    scratch: &mut MiScratch,
    pooled: &mut PooledNull,
    candidates: &mut Vec<(u32, u32, f64)>,
    pair_counter: &mut u64,
) {
    let (lo, hi) = (a.min(b), a.max(b));
    for idx in [lo, hi] {
        cache
            .entry(idx)
            .or_insert_with(|| build_block(matrix, basis, n, p, idx));
    }
    let x = cache.get(&lo).expect("block cached just above");
    if lo == hi {
        compute_block_pair(
            x,
            None,
            kernel,
            perms,
            scratch,
            pooled,
            candidates,
            pair_counter,
        );
    } else {
        let y = cache.get(&hi).expect("block cached just above");
        compute_block_pair(
            x,
            Some(y),
            kernel,
            perms,
            scratch,
            pooled,
            candidates,
            pair_counter,
        );
    }
}

/// Evaluate all pairs between `x_block` and `y_block` (or within
/// `x_block` when `y_block` is `None`), accumulating nulls and
/// candidates. Dense expansions of the column side are built once per
/// block — the cluster-side analogue of tile reuse.
#[allow(clippy::too_many_arguments)]
fn compute_block_pair(
    x_block: &GeneBlock,
    y_block: Option<&GeneBlock>,
    kernel: MiKernel,
    perms: &PermutationSet,
    scratch: &mut MiScratch,
    pooled: &mut PooledNull,
    candidates: &mut Vec<(u32, u32, f64)>,
    pair_counter: &mut u64,
) {
    let y = y_block.unwrap_or(x_block);
    let dense: Vec<_> = match kernel {
        MiKernel::VectorDense => y.genes.iter().map(|g| Some(g.to_dense())).collect(),
        MiKernel::ScalarSparse => y.genes.iter().map(|_| None).collect(),
    };
    for (xi, xg) in x_block.genes.iter().enumerate() {
        let y_start = if y_block.is_none() { xi + 1 } else { 0 };
        for (yi, dy) in dense.iter().enumerate().skip(y_start) {
            let res = mi_with_nulls(
                kernel,
                xg,
                &y.genes[yi],
                dy.as_ref(),
                perms.as_vecs(),
                scratch,
            );
            pooled.extend(&res.null);
            *pair_counter += 1;
            if res.exceed_count() == 0 {
                let gi = x_block.indices[xi];
                let gj = y.indices[yi];
                let (a, b) = if gi < gj { (gi, gj) } else { (gj, gi) };
                candidates.push((a, b, res.observed));
            }
        }
    }
}

fn encode_assignment(pairs: &[(usize, usize)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + pairs.len() * 8);
    buf.put_u32_le(pairs.len() as u32);
    for &(a, b) in pairs {
        buf.put_u32_le(a as u32);
        buf.put_u32_le(b as u32);
    }
    buf.freeze()
}

fn decode_assignment(bytes: &Bytes) -> Vec<(usize, usize)> {
    let mut bytes = bytes.clone();
    assert!(bytes.remaining() >= 4, "assignment frame too short");
    let c = bytes.get_u32_le() as usize;
    assert_eq!(bytes.remaining(), c * 8, "assignment frame length mismatch");
    (0..c)
        .map(|_| (bytes.get_u32_le() as usize, bytes.get_u32_le() as usize))
        .collect()
}

fn encode_rank_results(pooled: &PooledNull, candidates: &[(u32, u32, f64)]) -> Bytes {
    let (count, mean, m2, max) = pooled.raw_parts();
    let mut buf = BytesMut::with_capacity(32 + 4 + candidates.len() * 16);
    buf.put_u64_le(count);
    buf.put_f64_le(mean);
    buf.put_f64_le(m2);
    buf.put_f64_le(max);
    buf.put_u32_le(candidates.len() as u32);
    for &(i, j, v) in candidates {
        buf.put_u32_le(i);
        buf.put_u32_le(j);
        buf.put_f64_le(v);
    }
    buf.freeze()
}

fn decode_rank_results(mut bytes: Bytes) -> (PooledNull, Vec<(u32, u32, f64)>) {
    let count = bytes.get_u64_le();
    let mean = bytes.get_f64_le();
    let m2 = bytes.get_f64_le();
    let max = bytes.get_f64_le();
    let pooled = PooledNull::from_raw_parts(count, mean, m2, max);
    let c = bytes.get_u32_le() as usize;
    let mut candidates = Vec::with_capacity(c);
    for _ in 0..c {
        let i = bytes.get_u32_le();
        let j = bytes.get_u32_le();
        let v = bytes.get_f64_le();
        candidates.push((i, j, v));
    }
    assert!(!bytes.has_remaining(), "trailing bytes in rank results");
    (pooled, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::block_pair_owner;
    use gnet_core::infer_network;
    use gnet_expr::synth::{coupled_pairs, Coupling};
    use gnet_fault::FaultPlan;
    use gnet_grnsim::{GrnConfig, SyntheticDataset};

    fn cfg() -> InferenceConfig {
        InferenceConfig {
            permutations: 12,
            threads: Some(1),
            tile_size: Some(8),
            ..InferenceConfig::default()
        }
    }

    #[test]
    fn block_ranges_partition_the_genes() {
        for (n, p) in [(10usize, 3usize), (7, 7), (100, 8), (5, 5), (16, 4)] {
            let mut covered = 0;
            let mut prev_end = 0;
            for r in 0..p {
                let (s, e) = block_range(n, p, r);
                assert_eq!(s, prev_end, "blocks must be contiguous");
                assert!(e > s, "every rank needs at least one gene (n={n}, p={p})");
                covered += e - s;
                prev_end = e;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn every_block_pair_has_exactly_one_owner() {
        for p in 1..=9 {
            for a in 0..p {
                for b in 0..p {
                    let owner = block_pair_owner(a, b, p);
                    assert!(owner == a || owner == b, "owner must be a member");
                    assert_eq!(
                        owner,
                        block_pair_owner(b, a, p),
                        "ownership must be order-independent"
                    );
                    if a != b {
                        // The owner must actually meet the partner block
                        // within ⌊P/2⌋ ring rounds.
                        let partner = if owner == a { b } else { a };
                        let round = (owner + p - partner) % p;
                        assert!(
                            round >= 1 && round <= p / 2,
                            "p={p} pair ({a},{b}): owner {owner} meets partner at round {round}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn owner_load_is_balanced() {
        let p = 8;
        let mut owned = vec![0usize; p];
        for a in 0..p {
            for b in a..p {
                owned[block_pair_owner(a, b, p)] += 1;
            }
        }
        let max = *owned.iter().max().unwrap();
        let min = *owned.iter().min().unwrap();
        assert!(max - min <= 1, "block-pair ownership skewed: {owned:?}");
    }

    #[test]
    fn distributed_matches_shared_memory_pipeline() {
        let (matrix, _) = coupled_pairs(6, 260, Coupling::Linear(0.85), 77);
        let shared = infer_network(&matrix, &cfg());
        for ranks in [1usize, 2, 3, 4, 6] {
            let dist = infer_network_distributed(&matrix, &cfg(), ranks);
            assert_eq!(
                dist.network.edge_count(),
                shared.network.edge_count(),
                "{ranks} ranks changed the edge count"
            );
            for (a, b) in dist.network.edges().iter().zip(shared.network.edges()) {
                assert_eq!(a.key(), b.key(), "{ranks} ranks changed the edges");
                assert!((a.weight - b.weight).abs() < 1e-5);
            }
            let total_pairs: u64 = dist.rank_stats.iter().map(|s| s.pairs).sum();
            assert_eq!(
                total_pairs, shared.stats.pairs,
                "{ranks} ranks: pair coverage"
            );
            assert!(dist.crashed_ranks.is_empty());
        }
    }

    #[test]
    fn knife_edge_pairs_do_not_flip_across_rank_counts() {
        // Weak couplings put many pairs near the threshold; any role-swap
        // in the permutation null (a bug this test exists to catch) flips
        // some of them between rank counts.
        let (matrix, _) = coupled_pairs(12, 180, Coupling::Linear(0.35), 321);
        let shared = infer_network(&matrix, &cfg());
        for ranks in [2usize, 3, 5, 8] {
            let dist = infer_network_distributed(&matrix, &cfg(), ranks);
            let a: Vec<_> = dist.network.edges().iter().map(|e| e.key()).collect();
            let b: Vec<_> = shared.network.edges().iter().map(|e| e.key()).collect();
            assert_eq!(a, b, "{ranks} ranks flipped a knife-edge pair");
            for (x, y) in dist.network.edges().iter().zip(shared.network.edges()) {
                assert_eq!(
                    x.weight, y.weight,
                    "{ranks} ranks: weights must be bit-identical under canonical orientation"
                );
            }
        }
    }

    #[test]
    fn distributed_works_on_grn_data_with_odd_ranks() {
        let ds = SyntheticDataset::generate(
            GrnConfig {
                genes: 21,
                samples: 150,
                ..GrnConfig::small()
            },
            5,
        );
        let shared = infer_network(&ds.matrix, &cfg());
        let dist = infer_network_distributed(&ds.matrix, &cfg(), 5);
        let a: Vec<_> = dist.network.edges().iter().map(|e| e.key()).collect();
        let b: Vec<_> = shared.network.edges().iter().map(|e| e.key()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn communication_volume_scales_with_rounds_not_pairs() {
        let (matrix, _) = coupled_pairs(8, 100, Coupling::Linear(0.8), 3);
        let dist = infer_network_distributed(&matrix, &cfg(), 4);
        for s in &dist.rank_stats {
            // Each rank ships its travelling block ⌊P/2⌋ times plus the
            // census/assignment traffic — single-digit message counts.
            assert!(
                s.messages <= 8,
                "rank {} sent {} messages",
                s.rank,
                s.messages
            );
            assert!(s.bytes_sent > 0);
        }
    }

    #[test]
    fn scalar_kernel_path_matches_too() {
        let (matrix, _) = coupled_pairs(4, 120, Coupling::Linear(0.9), 9);
        let scalar_cfg = InferenceConfig {
            kernel: MiKernel::ScalarSparse,
            ..cfg()
        };
        let shared = infer_network(&matrix, &scalar_cfg);
        let dist = infer_network_distributed(&matrix, &scalar_cfg, 3);
        let a: Vec<_> = dist.network.edges().iter().map(|e| e.key()).collect();
        let b: Vec<_> = shared.network.edges().iter().map(|e| e.key()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "more ranks than genes")]
    fn too_many_ranks_rejected() {
        let (matrix, _) = coupled_pairs(2, 50, Coupling::Linear(0.5), 1);
        let _ = infer_network_distributed(&matrix, &cfg(), 10);
    }

    #[test]
    fn stale_block_frame_is_consumed_not_fatal() {
        // Regression pin for the PR-5 never-looping-receive bug: a
        // stale (earlier-round) TAG_BLOCK frame queued ahead of the
        // real one must be consumed by the receive loop, not mistaken
        // for a protocol failure (which would spuriously heal the ring
        // and abandon the real frame).
        let fabric = Fabric::new(2);
        let outputs = run_ranks_on(fabric, |ep| {
            if ep.rank() == 0 {
                // A delayed round-1 frame arrives ahead of round 2's.
                ep.send(1, frame(TAG_BLOCK, 1, b"stale"));
                ep.send(1, frame(TAG_BLOCK, 2, b"real"));
                return true;
            }
            // Rank 1 of a (virtual) 4-rank ring, already past round 1
            // and waiting on its round-2 block from rank 0.
            let mut machine = RankMachine::new(1, 4, Mutation::None);
            let (_, wait) = machine.step(ProtoEvent::Start);
            assert_eq!(wait, Wait::Recv { from: 0 });
            let (_, wait) =
                machine.step(ProtoEvent::Frame(ProtoFrame::Block { round: 1, block: 0 }));
            assert_eq!(wait, Wait::Recv { from: 0 });

            let mut block_payload = None;
            let mut pending_payload = None;
            let mut reason = "";
            let timeout = Duration::from_secs(5);
            // First receive surfaces the stale frame; the machine must
            // discard it silently and keep waiting on the same channel.
            let ev = recv_event(
                &ep,
                0,
                timeout,
                true,
                &mut block_payload,
                &mut pending_payload,
                &mut reason,
            );
            assert_eq!(
                ev,
                ProtoEvent::Frame(ProtoFrame::Block { round: 1, block: 0 })
            );
            let (fx, wait) = machine.step(ev);
            assert!(fx.is_empty(), "stale frame must have no effects: {fx:?}");
            assert_eq!(wait, Wait::Recv { from: 0 });
            // Second receive is the real round-2 frame — accepted.
            let ev = recv_event(
                &ep,
                0,
                timeout,
                true,
                &mut block_payload,
                &mut pending_payload,
                &mut reason,
            );
            // (Identity derives from the round stamp and the *fabric*
            // size — 2 ranks here — so it is 1, not the virtual ring's
            // 3; the machine only checks the round stamp.)
            assert_eq!(
                ev,
                ProtoEvent::Frame(ProtoFrame::Block { round: 2, block: 1 })
            );
            let (fx, _) = machine.step(ev);
            assert!(
                fx.contains(&Effect::AcceptBlock),
                "real frame must be accepted: {fx:?}"
            );
            assert_eq!(block_payload.as_deref(), Some(&b"real"[..]));
            true
        });
        assert_eq!(outputs, vec![true, true]);
    }

    // ---- failure-aware paths ----

    fn faulty_timeout() -> Duration {
        // Short enough to keep tests fast, long enough that a loaded CI
        // machine never times out a live peer.
        Duration::from_millis(500)
    }

    fn run_with_plan(
        matrix: &ExpressionMatrix,
        config: &InferenceConfig,
        ranks: usize,
        plan: &str,
        rec: &Recorder,
    ) -> Result<DistributedResult, ClusterError> {
        let plan = FaultPlan::parse(plan).expect("test plan parses");
        let injector = FaultInjector::from_plan(&plan);
        infer_network_distributed_faulty(matrix, config, ranks, &injector, rec, faulty_timeout())
    }

    fn edge_keys(net: &GeneNetwork) -> Vec<(u32, u32)> {
        net.edges().iter().map(|e| e.key()).collect()
    }

    #[test]
    fn one_crashed_rank_yields_the_same_edge_set() {
        let (matrix, _) = coupled_pairs(6, 220, Coupling::Linear(0.8), 42);
        let baseline = infer_network_distributed(&matrix, &cfg(), 4);
        let rec = Recorder::enabled();
        // Rank 2 dies at the first ring round, before sending anything.
        let dist = run_with_plan(&matrix, &cfg(), 4, "seed=7;crash(rank=2,round=1)", &rec)
            .expect("non-coordinator crash must be survivable");
        assert_eq!(dist.crashed_ranks, vec![2]);
        assert!(dist.rank_stats[2].crashed);
        assert_eq!(
            edge_keys(&dist.network),
            edge_keys(&baseline.network),
            "recovery changed the inferred network"
        );
        // Coverage is preserved: the survivors' pairs plus the crashed
        // rank's wasted (recomputed) pairs add up to full coverage plus
        // exactly that waste — nothing is skipped, nothing double-counted.
        let n_pairs: u64 = baseline.rank_stats.iter().map(|s| s.pairs).sum();
        let wasted = dist.rank_stats[2].pairs;
        let total: u64 = dist.rank_stats.iter().map(|s| s.pairs).sum();
        assert_eq!(total, n_pairs + wasted, "pair coverage under recovery");
        let reassigned: usize = dist
            .rank_stats
            .iter()
            .map(|s| s.reassigned_block_pairs)
            .sum();
        assert!(reassigned > 0, "dead rank's block pairs must be reassigned");
        assert!(rec.counter(names::CNT_CRASHES_DETECTED).unwrap_or(0) >= 1);
        assert_eq!(rec.event_count(names::EVT_REDISTRIBUTED), 1);
    }

    #[test]
    fn crash_in_a_later_round_is_survivable_too() {
        let (matrix, _) = coupled_pairs(12, 120, Coupling::Linear(0.7), 5);
        let baseline = infer_network_distributed(&matrix, &cfg(), 6);
        let rec = Recorder::enabled();
        // Rank 5 completes round 1, then dies entering round 2: survivors
        // must heal the ring mid-rotation and recover its finished and
        // unfinished work alike.
        let dist = run_with_plan(&matrix, &cfg(), 6, "seed=7;crash(rank=5,round=2)", &rec)
            .expect("late crash must be survivable");
        assert_eq!(dist.crashed_ranks, vec![5]);
        assert_eq!(edge_keys(&dist.network), edge_keys(&baseline.network));
        assert!(rec.event_count(names::EVT_RING_HEALED) >= 1);
    }

    #[test]
    fn two_dead_ranks_still_converge() {
        let (matrix, _) = coupled_pairs(8, 140, Coupling::Linear(0.75), 11);
        let baseline = infer_network_distributed(&matrix, &cfg(), 4);
        let rec = Recorder::enabled();
        let dist = run_with_plan(
            &matrix,
            &cfg(),
            4,
            "seed=7;crash(rank=1,round=1);crash(rank=3,round=2)",
            &rec,
        )
        .expect("two non-coordinator crashes must be survivable");
        assert_eq!(dist.crashed_ranks, vec![1, 3]);
        assert_eq!(edge_keys(&dist.network), edge_keys(&baseline.network));
    }

    #[test]
    fn dropped_results_frame_degrades_to_recomputation_not_corruption() {
        let (matrix, _) = coupled_pairs(6, 160, Coupling::Linear(0.8), 23);
        let baseline = infer_network_distributed(&matrix, &cfg(), 3);
        let rec = Recorder::enabled();
        // Rank 2's ring frame (its 1st message on the 2→0 edge) survives
        // but its RESULTS frame (the 2nd) is dropped — it is presumed
        // dead while alive, and its work is recomputed by the survivors.
        let dist = run_with_plan(&matrix, &cfg(), 3, "seed=7;drop(from=2,to=0,nth=1)", &rec)
            .expect("a lost results frame must be survivable");
        assert_eq!(dist.crashed_ranks, vec![2]);
        assert!(!dist.rank_stats[2].crashed, "rank 2 never actually died");
        assert_eq!(edge_keys(&dist.network), edge_keys(&baseline.network));
    }

    #[test]
    fn coordinator_crash_plans_are_rejected_up_front() {
        let (matrix, _) = coupled_pairs(4, 100, Coupling::Linear(0.8), 2);
        let rec = Recorder::disabled();
        let err = run_with_plan(&matrix, &cfg(), 4, "seed=7;crash(rank=0,round=1)", &rec)
            .expect_err("rank-0 crash has no recovery path");
        assert_eq!(err, ClusterError::CoordinatorCrash { round: 1 });
        let msg = err.to_string();
        assert!(msg.contains("rank 0"), "error must name the coordinator");
    }

    // ---- per-rank tracing ----

    #[test]
    fn traced_run_writes_per_rank_streams_and_manifest() {
        let (matrix, _) = coupled_pairs(8, 120, Coupling::Linear(0.8), 17);
        let dir = std::env::temp_dir().join(format!(
            "gnet-cluster-trace-{}-{}",
            std::process::id(),
            line!()
        ));
        let baseline = infer_network_distributed(&matrix, &cfg(), 4);
        let dist = infer_network_distributed_traced(
            &matrix,
            &cfg(),
            4,
            &FaultInjector::none(),
            &Recorder::disabled(),
            DEFAULT_PEER_TIMEOUT,
            &dir,
        )
        .expect("traced fault-free run succeeds");
        // Tracing must not perturb the result.
        assert_eq!(edge_keys(&dist.network), edge_keys(&baseline.network));

        let manifest =
            std::fs::read_to_string(dir.join("manifest.json")).expect("manifest written");
        assert!(manifest.contains("\"gnet-trace-manifest\""), "{manifest}");
        assert!(manifest.contains("\"ranks\":4"), "{manifest}");
        for r in 0..4 {
            assert!(
                manifest.contains(&format!("\"rank-{r}.ndjson\"")),
                "{manifest}"
            );
            let text = std::fs::read_to_string(dir.join(format!("rank-{r}.ndjson")))
                .expect("rank stream written");
            let meta = text.lines().next().expect("meta line");
            assert!(meta.contains(&format!("\"rank\":{r}")), "{meta}");
            assert!(meta.contains("\"clock_offset_us\":"), "{meta}");
            assert!(text.contains("\"rank.prep\""), "rank {r}: {text}");
            assert!(text.contains("\"rank.diag\""), "rank {r}");
            assert!(text.contains("\"clock.sync\""), "rank {r}");
            assert!(text.contains("\"rank.done\""), "rank {r}");
            // 4 ranks → 2 ring rounds, each a span.
            assert!(text.contains("\"rank.round.1\""), "rank {r}");
            assert!(text.contains("\"rank.round.2\""), "rank {r}");
        }
        // Rank 0 anchors the timebase.
        assert_eq!(dist.rank_stats[0].clock_offset_us, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_run_survives_a_crash_and_still_writes_all_streams() {
        let (matrix, _) = coupled_pairs(6, 160, Coupling::Linear(0.8), 42);
        let dir = std::env::temp_dir().join(format!(
            "gnet-cluster-trace-{}-{}",
            std::process::id(),
            line!()
        ));
        let baseline = infer_network_distributed(&matrix, &cfg(), 4);
        let plan = FaultPlan::parse("seed=7;crash(rank=2,round=1)").expect("plan parses");
        let dist = infer_network_distributed_traced(
            &matrix,
            &cfg(),
            4,
            &FaultInjector::from_plan(&plan),
            &Recorder::enabled(),
            faulty_timeout(),
            &dir,
        )
        .expect("crash is survivable under tracing");
        assert_eq!(dist.crashed_ranks, vec![2]);
        assert_eq!(edge_keys(&dist.network), edge_keys(&baseline.network));
        // The crashed rank still leaves a (partial) stream behind.
        let text =
            std::fs::read_to_string(dir.join("rank-2.ndjson")).expect("partial stream written");
        assert!(text.contains("\"rank.crashed\""), "{text}");
        let manifest =
            std::fs::read_to_string(dir.join("manifest.json")).expect("manifest written");
        assert!(manifest.contains("\"crashed_ranks\":[2]"), "{manifest}");
        std::fs::remove_dir_all(&dir).ok();
    }

    // ---- TCP transport acceptance ----

    #[test]
    fn tcp_run_matches_channel_run_byte_for_byte() {
        let (matrix, _) = coupled_pairs(6, 220, Coupling::Linear(0.8), 42);
        for ranks in [2usize, 4] {
            let channel = infer_network_distributed(&matrix, &cfg(), ranks);
            let tcp = infer_network_distributed_tcp(&matrix, &cfg(), ranks)
                .expect("loopback TCP mesh establishes");
            assert_eq!(
                edge_keys(&tcp.network),
                edge_keys(&channel.network),
                "{ranks} TCP ranks changed the edge set"
            );
            for (x, y) in tcp.network.edges().iter().zip(channel.network.edges()) {
                assert_eq!(
                    x.weight.to_bits(),
                    y.weight.to_bits(),
                    "{ranks} TCP ranks: weights must be bit-identical"
                );
            }
            assert_eq!(tcp.threshold.to_bits(), channel.threshold.to_bits());
            assert!(tcp.crashed_ranks.is_empty());
        }
    }

    #[test]
    fn tcp_survives_the_acceptance_plan_crash_plus_midframe_cut() {
        // The PR's acceptance scenario: a 4-rank loopback-TCP run where
        // one rank is killed mid-round AND a first frame on the 3→0 edge
        // is cut mid-frame (truncated, connection severed) must still be
        // byte-identical to the fault-free run.
        let (matrix, _) = coupled_pairs(6, 220, Coupling::Linear(0.8), 42);
        let baseline = infer_network_distributed(&matrix, &cfg(), 4);
        let plan = FaultPlan::parse("seed=7;crash(rank=2,round=1);cut(from=3,to=0,nth=1)")
            .expect("acceptance plan parses");
        let rec = Recorder::enabled();
        let dist = infer_network_distributed_tcp_faulty(
            &matrix,
            &cfg(),
            4,
            &FaultInjector::from_plan_traced(&plan, &rec),
            &rec,
            faulty_timeout(),
        )
        .expect("crash + mid-frame cut must be survivable over TCP");
        // Rank 2 died; rank 3's severed edge makes the census presume it
        // dead too (its RESULTS can never reach rank 0).
        assert_eq!(dist.crashed_ranks, vec![2, 3]);
        assert_eq!(
            edge_keys(&dist.network),
            edge_keys(&baseline.network),
            "recovery under TCP faults changed the inferred network"
        );
        for (x, y) in dist.network.edges().iter().zip(baseline.network.edges()) {
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
        assert!(
            rec.event_count(names::EVT_FRAME_CUT) >= 1,
            "the cut must have fired"
        );
    }

    #[test]
    fn tcp_traced_run_carries_transport_counters_in_rank_streams() {
        let (matrix, _) = coupled_pairs(8, 120, Coupling::Linear(0.8), 17);
        let dir = std::env::temp_dir().join(format!(
            "gnet-cluster-trace-{}-{}",
            std::process::id(),
            line!()
        ));
        let baseline = infer_network_distributed(&matrix, &cfg(), 4);
        let dist = infer_network_distributed_tcp_traced(
            &matrix,
            &cfg(),
            4,
            &FaultInjector::none(),
            &Recorder::disabled(),
            DEFAULT_PEER_TIMEOUT,
            &dir,
        )
        .expect("traced TCP run succeeds");
        assert_eq!(edge_keys(&dist.network), edge_keys(&baseline.network));
        for r in 0..4 {
            let text = std::fs::read_to_string(dir.join(format!("rank-{r}.ndjson")))
                .expect("rank stream written");
            for counter in ["tcp.frames_sent", "tcp.frames_recv", "tcp.frame_bytes_sent"] {
                assert!(
                    text.contains(&format!("\"name\":\"{counter}\"")),
                    "rank {r} stream missing {counter}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unarmed_faulty_entry_point_is_bit_identical_to_plain() {
        let (matrix, _) = coupled_pairs(12, 180, Coupling::Linear(0.35), 321);
        let plain = infer_network_distributed(&matrix, &cfg(), 4);
        let via_faulty = infer_network_distributed_faulty(
            &matrix,
            &cfg(),
            4,
            &FaultInjector::none(),
            &Recorder::disabled(),
            DEFAULT_PEER_TIMEOUT,
        )
        .expect("fault-free run");
        assert_eq!(plain.threshold.to_bits(), via_faulty.threshold.to_bits());
        let a: Vec<_> = plain.network.edges().iter().map(|e| e.key()).collect();
        let b: Vec<_> = via_faulty.network.edges().iter().map(|e| e.key()).collect();
        assert_eq!(a, b);
        for (x, y) in plain.network.edges().iter().zip(via_faulty.network.edges()) {
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
    }
}
