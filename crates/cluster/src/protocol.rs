//! The ring protocol as a pure step function.
//!
//! [`distributed`](crate::distributed) used to interleave the protocol
//! decisions (which frame to accept, who owns a block pair, how a dead
//! rank's work is redistributed) with the compute and I/O that act on
//! them. This module lifts every decision into [`RankMachine`] — a
//! deterministic state machine with no clocks, threads, or byte buffers
//! — so that the *same code* can be driven two ways:
//!
//! * by the real interpreter in [`crate::distributed`], which feeds it
//!   parsed frames and executes its [`Effect`]s against the fabric and
//!   the MI kernels; and
//! * by the model checker in `gnet-analysis`, which feeds it schedules
//!   (delivery orders, delays, duplicates, crashes) and checks the
//!   emitted effects against the protocol's correctness oracles.
//!
//! A machine is always blocked on a [`Wait`]; [`RankMachine::step`]
//! consumes one [`Event`] and returns the [`Effect`]s to perform plus
//! the next wait. Frames carry *identities* (block index, assignment
//! pairs), never payload bytes — the interpreter owns the bytes.
//!
//! [`Mutation`] deliberately re-introduces three historical protocol
//! bugs. Production always runs [`Mutation::None`]; the mutants exist
//! so the model checker can prove, in its self-check, that it detects
//! each class of bug with a shrunk, replayable schedule.

/// Contiguous block bounds of rank `r` among `p` ranks over `n` genes.
#[must_use]
pub fn block_range(n: usize, p: usize, r: usize) -> (usize, usize) {
    let base = n / p;
    let extra = n % p;
    let start = r * base + r.min(extra);
    let len = base + usize::from(r < extra);
    (start, start + len)
}

/// Owner of the unordered block pair `{a, b}` among `p` ranks: the rank
/// that meets the partner block in the earlier ring round (ties to the
/// smaller rank). For `a == b` the owner is `a`.
#[must_use]
pub fn block_pair_owner(a: usize, b: usize, p: usize) -> usize {
    if a == b {
        return a;
    }
    let delta_b = (b + p - a) % p; // round at which b holds block a
    let delta_a = (a + p - b) % p; // round at which a holds block b
    match delta_b.cmp(&delta_a) {
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Equal => a.min(b),
    }
}

/// Redistribute every block pair owned by a rank in `dead`, round-robin
/// over the survivors (rank 0 included) in lexicographic pair order —
/// deterministic given the dead set. Returns one assignment list per
/// rank; dead ranks get empty lists.
#[must_use]
pub fn redistribute(p: usize, dead: &[usize]) -> Vec<Vec<(usize, usize)>> {
    redistribute_mutated(p, dead, false)
}

/// [`redistribute`], optionally mutated ([`Mutation::DoubleRedistribute`])
/// to hand each dead-owned pair to *two* survivors — the double-counting
/// bug the model checker's self-check must catch.
fn redistribute_mutated(p: usize, dead: &[usize], double: bool) -> Vec<Vec<(usize, usize)>> {
    let mut assignments: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p];
    if dead.is_empty() {
        return assignments;
    }
    let survivors: Vec<usize> = (0..p).filter(|x| !dead.contains(x)).collect();
    let mut cursor = 0usize;
    for a in 0..p {
        for b in a..p {
            if dead.contains(&block_pair_owner(a, b, p)) {
                assignments[survivors[cursor % survivors.len()]].push((a, b));
                if double {
                    assignments[survivors[(cursor + 1) % survivors.len()]].push((a, b));
                }
                cursor += 1;
            }
        }
    }
    assignments
}

/// A protocol frame, by identity. The wire encoding (tag byte, round
/// stamp, payload bytes) lives in the interpreter; the machine sees
/// only what the protocol *decides on*.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Frame {
    /// A travelling gene block: the ring round it belongs to and the
    /// global index of the block it carries.
    Block {
        /// Ring round this frame was sent for.
        round: u32,
        /// Which of the `p` blocks the payload is.
        block: usize,
    },
    /// A rank's phase-1 results (pooled nulls + candidates).
    Results,
    /// The coordinator's reassignment of dead ranks' block pairs.
    Assign {
        /// Block pairs the receiving rank must recompute.
        pairs: Vec<(usize, usize)>,
    },
    /// A rank's recomputed share of reassigned work.
    Supplement,
}

/// One input to [`RankMachine::step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Begin the protocol (local block is prepared).
    Start,
    /// A frame arrived on the channel the machine is waiting on.
    Frame(Frame),
    /// The bounded receive failed: timeout, peer disconnect, or an
    /// unparseable frame. The protocol treats all three identically.
    Timeout,
}

/// What the machine is blocked on after a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Wait {
    /// Blocked in a bounded receive on the channel from `from`.
    Recv {
        /// Peer rank being awaited.
        from: usize,
    },
    /// Protocol complete; the machine will not step again.
    Done,
}

/// A side effect the interpreter (or model-checker world) must perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Send `frame` to rank `to`.
    Send {
        /// Destination rank.
        to: usize,
        /// Frame to encode and send.
        frame: Frame,
    },
    /// Compute all pairs within the rank's own block.
    ComputeDiag,
    /// The incoming frame was accepted as this round's travelling
    /// block; the interpreter adopts its payload.
    AcceptBlock,
    /// Compute the cross pairs between the rank's own block and `block`
    /// (the travelling block just accepted or healed).
    ComputeCross {
        /// Foreign block index.
        block: usize,
    },
    /// The expected frame was lost: rebuild `block` from the shared
    /// matrix and adopt it as the new travelling block (ring healing).
    Heal {
        /// Block index the rank was due this round.
        block: usize,
    },
    /// Recompute the given reassigned block pairs and add them to this
    /// rank's supplement.
    ComputeAssigned {
        /// Block pairs to recompute, in order.
        pairs: Vec<(usize, usize)>,
    },
    /// Coordinator: rank `from`'s phase-1 results arrived; merge them.
    AcceptResults {
        /// Reporting rank.
        from: usize,
    },
    /// Coordinator: rank `rank` failed the census and is presumed dead.
    PresumeDead {
        /// Rank that never reported.
        rank: usize,
    },
    /// Coordinator: the census found dead ranks and redistributed their
    /// block pairs over the survivors.
    Redistributed {
        /// Number of ranks presumed dead.
        dead_ranks: usize,
        /// Total block pairs reassigned.
        block_pairs: usize,
        /// Number of surviving ranks.
        survivors: usize,
    },
    /// Coordinator: rank `from`'s supplement arrived; merge it.
    AcceptSupplement {
        /// Supplementing rank.
        from: usize,
    },
    /// Coordinator backstop: a survivor's supplement never arrived —
    /// recompute its share locally.
    RecomputeShare {
        /// Rank whose share is being recomputed.
        from: usize,
        /// That rank's assigned block pairs.
        pairs: Vec<(usize, usize)>,
    },
    /// Coordinator: all parts collected; merge and threshold.
    Finalize {
        /// Ranks presumed dead by the census.
        dead: Vec<usize>,
    },
}

/// Coarse protocol phase, for the interpreter's tracing spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Local prep, diagonal block, and ring rotation.
    Ring,
    /// Census / assignment / supplement endgame.
    Endgame,
    /// Protocol complete.
    Done,
}

/// Deliberately re-introduced protocol bugs for the model checker's
/// self-check. Production code always uses [`Mutation::None`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Drop the stale-frame round check in the ring receive: any
    /// `Block` frame is accepted as the current round's (the PR-5
    /// never-looping-receive bug, in its harmful form — a delayed
    /// frame corrupts the travelling-block identity).
    AcceptAnyRound,
    /// Redistribute each dead rank's block pair to *two* survivors,
    /// double-counting its nulls and candidates.
    DoubleRedistribute,
    /// Skip the coordinator's supplement backstop: a survivor whose
    /// supplement is lost silently loses its share.
    SkipSupplementBackstop,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum State {
    Idle,
    Ring { d: usize },
    Census { from: usize },
    AwaitAssign,
    AwaitSupplement { from: usize },
    Done,
}

/// One rank's protocol state machine. See the module docs for the
/// driving contract. `Hash`/`Eq` cover the complete protocol state,
/// which is what lets the model checker deduplicate world states.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RankMachine {
    r: usize,
    p: usize,
    rounds: usize,
    next: usize,
    prev: usize,
    /// Identity of the block this rank is currently forwarding.
    travelling: usize,
    dead: Vec<usize>,
    assignments: Vec<Vec<(usize, usize)>>,
    mutation: Mutation,
    state: State,
}

impl RankMachine {
    /// Machine for rank `r` of `p`, optionally mutated.
    ///
    /// # Panics
    /// Panics if `r >= p` or `p == 0`.
    #[must_use]
    pub fn new(r: usize, p: usize, mutation: Mutation) -> Self {
        assert!(p >= 1 && r < p, "rank {r} out of range for {p} ranks");
        Self {
            r,
            p,
            rounds: p / 2,
            next: (r + 1) % p,
            prev: (r + p - 1) % p,
            travelling: r,
            dead: Vec::new(),
            assignments: Vec::new(),
            mutation,
            state: State::Idle,
        }
    }

    /// This machine's rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.r
    }

    /// Coarse phase, for tracing-span management in the interpreter.
    #[must_use]
    pub fn phase(&self) -> Phase {
        match self.state {
            State::Idle | State::Ring { .. } => Phase::Ring,
            State::Done => Phase::Done,
            _ => Phase::Endgame,
        }
    }

    /// Consume one event; return the effects to perform and the next
    /// wait. Stepping a [`Wait::Done`] machine is a no-op.
    pub fn step(&mut self, event: Event) -> (Vec<Effect>, Wait) {
        let mut fx = Vec::new();
        let wait = match (self.state.clone(), event) {
            (State::Idle, Event::Start) => {
                fx.push(Effect::ComputeDiag);
                self.travelling = self.r;
                self.begin_round(1, &mut fx)
            }
            (State::Ring { d }, Event::Frame(Frame::Block { round, block })) => {
                let d32 = d as u32;
                if self.mutation != Mutation::AcceptAnyRound && round < d32 {
                    // Stale delayed frame: discard and keep waiting.
                    Wait::Recv { from: self.prev }
                } else if round > d32 {
                    // A frame from a future round on the ring channel is
                    // "unexpected" to the bounded receive — same cure as
                    // a loss: heal and move on. (The frame is consumed.)
                    self.heal_and_advance(d, &mut fx)
                } else {
                    // Accepted as this round's block. Under the faithful
                    // protocol `block == (r − d) mod p`; the mutant may
                    // adopt a stale frame's wrong identity here.
                    self.travelling = block;
                    fx.push(Effect::AcceptBlock);
                    self.compute_cross_if_owner(d, block, &mut fx);
                    self.begin_round(d + 1, &mut fx)
                }
            }
            (State::Ring { d }, Event::Timeout) => self.heal_and_advance(d, &mut fx),
            (State::Ring { d }, Event::Frame(_)) => {
                // A results/assign/supplement frame on the ring channel
                // (possible only from rank p−1 to rank 0 after a block
                // loss): "unexpected" to the bounded receive — the
                // frame is consumed and the ring heals.
                self.heal_and_advance(d, &mut fx)
            }
            (State::Census { from }, Event::Frame(Frame::Results)) => {
                fx.push(Effect::AcceptResults { from });
                self.next_census(from + 1, &mut fx)
            }
            (State::Census { from }, Event::Frame(Frame::Block { .. })) => {
                // Stale ring traffic on the results channel: skip it.
                Wait::Recv { from }
            }
            (State::Census { from }, _) => {
                // Timeout, disconnect, or a frame the census has no
                // business seeing: the rank is presumed dead.
                self.dead.push(from);
                fx.push(Effect::PresumeDead { rank: from });
                self.next_census(from + 1, &mut fx)
            }
            (State::AwaitSupplement { from }, Event::Frame(Frame::Supplement)) => {
                fx.push(Effect::AcceptSupplement { from });
                self.await_supplement(from + 1, &mut fx)
            }
            (State::AwaitSupplement { from }, Event::Frame(Frame::Block { .. })) => {
                Wait::Recv { from }
            }
            (State::AwaitSupplement { from }, _) => {
                // Supplement lost. The backstop recomputes the share
                // locally — unless the mutant under test removed it.
                if self.mutation != Mutation::SkipSupplementBackstop {
                    fx.push(Effect::RecomputeShare {
                        from,
                        pairs: self.assignments[from].clone(),
                    });
                }
                self.await_supplement(from + 1, &mut fx)
            }
            (State::AwaitAssign, Event::Frame(Frame::Assign { pairs })) => {
                if !pairs.is_empty() {
                    fx.push(Effect::ComputeAssigned { pairs });
                }
                fx.push(Effect::Send {
                    to: 0,
                    frame: Frame::Supplement,
                });
                self.state = State::Done;
                Wait::Done
            }
            (State::AwaitAssign, Event::Frame(Frame::Block { .. })) => Wait::Recv { from: 0 },
            (State::AwaitAssign, _) => {
                // Assignment lost or coordinator gone: terminate. The
                // coordinator's backstop covers our share if it was real.
                self.state = State::Done;
                Wait::Done
            }
            (State::Done, _) => Wait::Done,
            (state, event) => {
                // Machine-driving bug, not a protocol decision: the
                // interpreter/world delivered an impossible event.
                unreachable!("rank {} cannot take {event:?} in {state:?}", self.r)
            }
        };
        (fx, wait)
    }

    /// Owner check for round `d`, computing against the block the frame
    /// *claims* to be (`block`) while ownership follows the arithmetic
    /// identity — exactly the real code's split, which is what makes
    /// the `AcceptAnyRound` mutant observable.
    fn compute_cross_if_owner(&self, d: usize, block: usize, fx: &mut Vec<Effect>) {
        let held = (self.r + self.p - d) % self.p;
        if block_pair_owner(self.r, held, self.p) == self.r {
            fx.push(Effect::ComputeCross { block });
        }
    }

    fn heal_and_advance(&mut self, d: usize, fx: &mut Vec<Effect>) -> Wait {
        let held = (self.r + self.p - d) % self.p;
        fx.push(Effect::Heal { block: held });
        self.travelling = held;
        self.compute_cross_if_owner(d, held, fx);
        self.begin_round(d + 1, fx)
    }

    fn begin_round(&mut self, d: usize, fx: &mut Vec<Effect>) -> Wait {
        if d <= self.rounds {
            fx.push(Effect::Send {
                to: self.next,
                frame: Frame::Block {
                    round: d as u32,
                    block: self.travelling,
                },
            });
            self.state = State::Ring { d };
            Wait::Recv { from: self.prev }
        } else if self.r == 0 {
            self.next_census(1, fx)
        } else {
            fx.push(Effect::Send {
                to: 0,
                frame: Frame::Results,
            });
            self.state = State::AwaitAssign;
            Wait::Recv { from: 0 }
        }
    }

    fn next_census(&mut self, from: usize, fx: &mut Vec<Effect>) -> Wait {
        if from < self.p {
            self.state = State::Census { from };
            return Wait::Recv { from };
        }
        // Census complete: redistribute, assign, compute own share.
        self.assignments = redistribute_mutated(
            self.p,
            &self.dead,
            self.mutation == Mutation::DoubleRedistribute,
        );
        if !self.dead.is_empty() {
            fx.push(Effect::Redistributed {
                dead_ranks: self.dead.len(),
                block_pairs: self.assignments.iter().map(Vec::len).sum(),
                survivors: self.p - self.dead.len(),
            });
        }
        for (to, pairs) in self.assignments.iter().enumerate().skip(1) {
            fx.push(Effect::Send {
                to,
                frame: Frame::Assign {
                    pairs: pairs.clone(),
                },
            });
        }
        if !self.assignments[0].is_empty() {
            fx.push(Effect::ComputeAssigned {
                pairs: self.assignments[0].clone(),
            });
        }
        self.await_supplement(1, fx)
    }

    fn await_supplement(&mut self, from: usize, fx: &mut Vec<Effect>) -> Wait {
        let mut f = from;
        while f < self.p && self.dead.contains(&f) {
            f += 1;
        }
        if f < self.p {
            self.state = State::AwaitSupplement { from: f };
            return Wait::Recv { from: f };
        }
        fx.push(Effect::Finalize {
            dead: self.dead.clone(),
        });
        self.state = State::Done;
        Wait::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sends(fx: &[Effect]) -> Vec<(usize, Frame)> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::Send { to, frame } => Some((*to, frame.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn single_rank_finalizes_immediately() {
        let mut m = RankMachine::new(0, 1, Mutation::None);
        let (fx, wait) = m.step(Event::Start);
        assert_eq!(wait, Wait::Done);
        assert!(matches!(fx[0], Effect::ComputeDiag));
        assert!(matches!(fx.last(), Some(Effect::Finalize { dead }) if dead.is_empty()));
    }

    #[test]
    fn faithful_ring_computes_each_owned_pair_once() {
        // Drive a 4-rank ring by hand with perfect delivery and check
        // the union of computed pairs is exactly every unordered block
        // pair, each once.
        let p = 4;
        let mut machines: Vec<_> = (0..p)
            .map(|r| RankMachine::new(r, p, Mutation::None))
            .collect();
        let mut computed: Vec<(usize, usize)> = Vec::new();
        let mut inflight: Vec<Vec<(usize, Frame)>> = vec![Vec::new(); p]; // per-sender
        for (r, m) in machines.iter_mut().enumerate() {
            let (fx, _) = m.step(Event::Start);
            for e in &fx {
                match e {
                    Effect::ComputeDiag => computed.push((r, r)),
                    Effect::Send { to, frame } => inflight[r].push((*to, frame.clone())),
                    _ => {}
                }
            }
        }
        // Two synchronous ring rounds.
        for _ in 0..p / 2 {
            let mut next_inflight: Vec<Vec<(usize, Frame)>> = vec![Vec::new(); p];
            for sent in &mut inflight {
                for (to, frame) in std::mem::take(sent) {
                    if matches!(frame, Frame::Block { .. }) {
                        let (fx, _) = machines[to].step(Event::Frame(frame));
                        for e in &fx {
                            match e {
                                Effect::ComputeCross { block } => {
                                    let (a, b) = (to.min(*block), to.max(*block));
                                    computed.push((a, b));
                                }
                                Effect::Send { to: t, frame: f } => {
                                    next_inflight[to].push((*t, f.clone()));
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
            inflight = next_inflight;
        }
        let mut expect: Vec<(usize, usize)> = Vec::new();
        for a in 0..p {
            for b in a..p {
                expect.push((a, b));
            }
        }
        computed.sort_unstable();
        assert_eq!(computed, expect);
    }

    #[test]
    fn stale_frames_are_skipped_without_effects() {
        let mut m = RankMachine::new(1, 4, Mutation::None);
        let (_, w) = m.step(Event::Start);
        assert_eq!(w, Wait::Recv { from: 0 });
        // Accept round 1 normally, then a stale round-1 frame in round 2.
        let (_, _) = m.step(Event::Frame(Frame::Block { round: 1, block: 0 }));
        let (fx, w) = m.step(Event::Frame(Frame::Block { round: 1, block: 0 }));
        assert!(fx.is_empty(), "stale frame must have no effects: {fx:?}");
        assert_eq!(w, Wait::Recv { from: 0 });
    }

    #[test]
    fn accept_any_round_mutant_adopts_stale_identity() {
        let mut m = RankMachine::new(1, 4, Mutation::AcceptAnyRound);
        let _ = m.step(Event::Start);
        let _ = m.step(Event::Timeout); // round 1 lost: heal block 0
        let (fx, _) = m.step(Event::Frame(Frame::Block { round: 1, block: 0 }));
        // Round 2: the stale round-1 frame is adopted, so the mutant
        // recomputes {0,1} instead of its owed {1,3}.
        assert!(
            fx.contains(&Effect::ComputeCross { block: 0 }),
            "mutant must compute against the stale identity: {fx:?}"
        );
    }

    #[test]
    fn timeout_heals_the_due_block() {
        let mut m = RankMachine::new(2, 4, Mutation::None);
        let _ = m.step(Event::Start);
        let (fx, _) = m.step(Event::Timeout);
        assert!(fx.contains(&Effect::Heal { block: 1 }));
        // Rank 2 owns {1,2} (meets block 1 in round 1).
        assert!(fx.contains(&Effect::ComputeCross { block: 1 }));
        // Healing forwards the rebuilt block as round 2's travelling.
        assert!(sends(&fx)
            .iter()
            .any(|(to, f)| *to == 3 && matches!(f, Frame::Block { round: 2, block: 1 })));
    }

    #[test]
    fn census_presumes_silent_ranks_dead_and_redistributes() {
        let p = 3;
        let mut m = RankMachine::new(0, p, Mutation::None);
        let _ = m.step(Event::Start);
        let _ = m.step(Event::Frame(Frame::Block { round: 1, block: 2 })); // ring round
        let (_, w) = m.step(Event::Frame(Frame::Results)); // rank 1 reports
        assert_eq!(w, Wait::Recv { from: 2 });
        let (fx, w) = m.step(Event::Timeout); // rank 2 dead
        assert!(fx.contains(&Effect::PresumeDead { rank: 2 }));
        let expected = redistribute(p, &[2]);
        let total: usize = expected.iter().map(Vec::len).sum();
        assert!(total > 0, "rank 2 owns pairs that must be reassigned");
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Redistributed { dead_ranks: 1, block_pairs, survivors: 2 } if *block_pairs == total
        )));
        // Assignments go to every nonzero rank, dead or not.
        assert_eq!(sends(&fx).len(), p - 1);
        // Rank 1 is the only live supplement to wait for.
        assert_eq!(w, Wait::Recv { from: 1 });
        let (fx, w) = m.step(Event::Timeout); // rank 1's supplement lost
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::RecomputeShare { from: 1, pairs } if *pairs == expected[1]
        )));
        assert!(matches!(fx.last(), Some(Effect::Finalize { dead }) if dead == &vec![2]));
        assert_eq!(w, Wait::Done);
    }

    #[test]
    fn double_redistribute_mutant_assigns_pairs_twice() {
        let plain = redistribute(4, &[3]);
        let doubled = redistribute_mutated(4, &[3], true);
        let n: usize = plain.iter().map(Vec::len).sum();
        let d: usize = doubled.iter().map(Vec::len).sum();
        assert_eq!(d, 2 * n);
    }

    #[test]
    fn skip_backstop_mutant_drops_lost_shares() {
        let mut m = RankMachine::new(0, 2, Mutation::SkipSupplementBackstop);
        let _ = m.step(Event::Start);
        let _ = m.step(Event::Frame(Frame::Block { round: 1, block: 1 }));
        let _ = m.step(Event::Frame(Frame::Results));
        let (fx, w) = m.step(Event::Timeout); // supplement lost
        assert!(
            !fx.iter()
                .any(|e| matches!(e, Effect::RecomputeShare { .. })),
            "mutant must skip the backstop: {fx:?}"
        );
        assert_eq!(w, Wait::Done);
    }

    #[test]
    fn redistribution_is_balanced_and_deterministic() {
        let a = redistribute(5, &[2, 4]);
        let b = redistribute(5, &[2, 4]);
        assert_eq!(a, b);
        assert!(a[2].is_empty() && a[4].is_empty());
        let loads: Vec<usize> = [0, 1, 3].iter().map(|&r| a[r].len()).collect();
        let max = loads.iter().max().unwrap();
        let min = loads.iter().min().unwrap();
        assert!(max - min <= 1, "unbalanced: {loads:?}");
    }
}
