//! Real TCP transport for the cluster ring.
//!
//! Frames are opaque payloads (the protocol frames of
//! [`crate::distributed`], tag + round header included) carried as
//! `u32 LE length ‖ bytes` over one socket per unordered rank pair.
//! Pair sockets are bidirectional: the higher rank dials the lower one
//! and identifies itself with a preamble, so a `P`-rank mesh is
//! `P(P−1)/2` connections established without dial/accept races.
//!
//! ## Robustness by construction
//!
//! * **Bounded dials.** [`dial`] retries with exponential backoff plus
//!   deterministic jitter ([`RetryPolicy`]), consulting the fault
//!   injector's `refuse(...)` clauses per attempt so connect storms are
//!   replayable from a plan string.
//! * **Deadlines.** Receives never block the protocol thread: a reader
//!   thread per peer turns the byte stream back into whole frames and
//!   hands them to a channel, so [`TcpTransport::recv_timeout`] has
//!   exactly the semantics the census/heal/redistribute logic was
//!   model-checked under — `Timeout` for a silent peer, `Disconnected`
//!   once the peer is gone *and* its delivered frames are drained.
//! * **Partial I/O.** Writers use `write_all`, readers `read_exact`; a
//!   torn frame (peer died mid-write) surfaces as `Disconnected`, never
//!   as a corrupt payload.
//! * **Graceful shutdown.** [`TcpTransport::shutdown`] (also run on
//!   drop) joins every writer thread after it drains its queue, then
//!   sends FIN on the write half — queued frames always reach the wire,
//!   the transport-level analogue of the channel fabric's
//!   buffered-messages-outlive-their-sender guarantee. A *crashed* rank
//!   runs the same path, so its last frames still land, exactly like a
//!   dropped channel endpoint.
//! * **Wire faults.** Each writer consults
//!   [`FaultInjector::on_frame`] per frame: `stall(...)` splits the
//!   write around a sleep, `trunc(...)`/`cut(...)` write a partial
//!   frame and sever the socket — the peer sees a clean rank death and
//!   the PR-6 recovery protocol takes over.
//!
//! Traffic is accounted twice: [`crate::comm::CommStats`]-compatible
//! message/byte counters feed [`crate::transport::Transport`] (parity
//! with the channel fabric — counted per `send`, before drop faults),
//! and [`TcpCounters`] tracks the wire-level story (connects, retries,
//! frames, frame bytes, deadline expiries, peer disconnects) for the
//! `tcp.*` trace vocabulary.

use crate::comm::{CommStats, RecvTimeoutError};
use crate::transport::Transport;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use gnet_fault::{FaultInjector, MessageAction, SplitMix64, WireAction};
use gnet_trace::Recorder;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on a single frame (sanity check against a corrupt or
/// hostile length prefix). Far above any real block frame: a 256 MiB
/// frame would mean millions of genes per block.
const MAX_FRAME: usize = 256 * 1024 * 1024;

/// Dial preamble magic (`"GNET"` LE) sent before the dialer's rank.
const DIAL_MAGIC: u32 = 0x474E_4554;

/// Bound on one TCP connect attempt (the retry loop, not this constant,
/// owns the overall deadline).
const CONNECT_ATTEMPT_TIMEOUT: Duration = Duration::from_secs(2);

/// Bound on reading the 8-byte dial preamble from a fresh connection.
const PREAMBLE_TIMEOUT: Duration = Duration::from_secs(10);

/// Wire-level counters of one TCP endpoint, published to traces as the
/// `tcp.*` vocabulary via [`TcpCounters::publish`].
#[derive(Debug, Default)]
pub struct TcpCounters {
    /// Successful outbound connections.
    pub connects: AtomicU64,
    /// Failed dial attempts that were retried (refused or timed out).
    pub connect_retries: AtomicU64,
    /// Whole frames written to the wire (drop-faulted sends excluded).
    pub frames_sent: AtomicU64,
    /// Whole frames read off the wire.
    pub frames_recv: AtomicU64,
    /// Payload bytes written to the wire.
    pub frame_bytes_sent: AtomicU64,
    /// Payload bytes read off the wire.
    pub frame_bytes_recv: AtomicU64,
    /// `recv_timeout` calls that expired before a frame arrived.
    pub deadline_expiries: AtomicU64,
    /// `recv_timeout` calls that found the peer dead and drained.
    pub peer_disconnects: AtomicU64,
    /// Frames currently enqueued per peer writer but not yet written to
    /// the wire (empty unless built with [`TcpCounters::for_peers`]).
    pub send_queue: Vec<AtomicU64>,
    /// High-water mark of any single peer's send queue.
    pub send_queue_peak: AtomicU64,
}

impl TcpCounters {
    /// Counters with one live send-queue gauge per peer. The `Default`
    /// construction keeps the per-peer vector empty (depth tracking off)
    /// so existing bare-counter call sites are unaffected.
    #[must_use]
    pub fn for_peers(size: usize) -> Self {
        Self {
            send_queue: (0..size).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// One frame entered `peer`'s writer queue.
    pub(crate) fn queue_inc(&self, peer: usize) {
        if let Some(depth) = self.send_queue.get(peer) {
            // ordering: advisory gauge; the writer channel itself carries
            // the frame, nothing synchronizes through the depth.
            let now = depth.fetch_add(1, Ordering::Relaxed).saturating_add(1);
            // ordering: monotone max of an advisory gauge.
            self.send_queue_peak.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// One frame left `peer`'s writer queue (written, faulted, or
    /// discarded at a dead peer — it is no longer queued either way).
    pub(crate) fn queue_dec(&self, peer: usize) {
        if let Some(depth) = self.send_queue.get(peer) {
            // ordering: advisory gauge, paired with queue_inc.
            depth.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Frames currently queued across all peer writers.
    #[must_use]
    pub fn send_queue_depth(&self) -> u64 {
        self.send_queue
            .iter()
            // ordering: advisory gauge read for heartbeats.
            .map(|d| d.load(Ordering::Relaxed))
            .fold(0, u64::saturating_add)
    }
    /// Publish the counters into `rec` under the `tcp.*` names, so a
    /// rank's trace stream attributes its network behavior (`gnet
    /// trace-report` renders whatever counters the stream carries).
    pub fn publish(&self, rec: &Recorder) {
        // ordering: telemetry reads after the rank's protocol loop has
        // returned; the thread join already synchronized the values.
        let pairs = [
            ("tcp.connects", &self.connects),
            ("tcp.connect_retries", &self.connect_retries),
            ("tcp.frames_sent", &self.frames_sent),
            ("tcp.frames_recv", &self.frames_recv),
            ("tcp.frame_bytes_sent", &self.frame_bytes_sent),
            ("tcp.frame_bytes_recv", &self.frame_bytes_recv),
            ("tcp.deadline_expiries", &self.deadline_expiries),
            ("tcp.peer_disconnects", &self.peer_disconnects),
            ("tcp.send_queue_peak", &self.send_queue_peak),
        ];
        for (name, counter) in pairs {
            // ordering: telemetry read after the protocol loop returned;
            // the writer-thread joins already synchronized the values.
            rec.counter_add(name, counter.load(Ordering::Relaxed));
        }
    }
}

/// Bounded-retry policy for [`dial`]: exponential backoff from `base`
/// capped at `max`, with deterministic jitter drawn from `seed` so two
/// runs of the same plan dial on the same schedule.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum dial attempts before giving up.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Jitter seed (mixed with the rank pair, so edges desynchronize).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // ~30 attempts × ≤500 ms ≈ a 12 s window: generous for a worker
        // that dials before its coordinator finished binding, small
        // against any real job length.
        Self {
            attempts: 30,
            base: Duration::from_millis(10),
            max: Duration::from_millis(500),
            seed: 0x6774_6E65_7463_7074, // arbitrary fixed default
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt` (1-based; attempt 0 never
    /// waits): `min(max, base · 2^(attempt−1))`, then jittered into
    /// `[half, full)` so simultaneous dialers spread out.
    pub(crate) fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << (attempt - 1).min(16));
        let full = exp.min(self.max).max(Duration::from_micros(1));
        let half = full / 2;
        let span = (full - half).as_micros().max(1) as u64;
        half + Duration::from_micros(rng.below(span))
    }
}

/// Write one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)
}

/// Dial `addr` as rank `from` targeting rank `to`, with bounded retries
/// and backoff per `policy`. Consults `faults` before every attempt so
/// `refuse(from=..,to=..,attempts=..)` clauses replay as injected
/// `ConnectionRefused` without touching the network. On success the
/// preamble (`DIAL_MAGIC ‖ from`) is already written.
///
/// # Errors
/// The last attempt's I/O error once `policy.attempts` is exhausted.
pub fn dial(
    addr: SocketAddr,
    from: usize,
    to: usize,
    policy: &RetryPolicy,
    faults: &FaultInjector,
    counters: &TcpCounters,
) -> std::io::Result<TcpStream> {
    let mut rng = SplitMix64::new(
        policy
            .seed
            .wrapping_add((from as u64) << 32)
            .wrapping_add(to as u64),
    );
    let mut last_err =
        std::io::Error::new(std::io::ErrorKind::TimedOut, "dial attempted zero times");
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            // ordering: pure telemetry; nothing synchronizes through it.
            counters.connect_retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(policy.backoff(attempt, &mut rng));
        }
        if faults.connect_refused(from, to) {
            last_err = std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "injected connection refusal",
            );
            continue;
        }
        match TcpStream::connect_timeout(&addr, CONNECT_ATTEMPT_TIMEOUT) {
            Ok(mut stream) => {
                let mut preamble = [0u8; 8];
                preamble[..4].copy_from_slice(&DIAL_MAGIC.to_le_bytes());
                preamble[4..].copy_from_slice(&(from as u32).to_le_bytes());
                match stream.write_all(&preamble) {
                    Ok(()) => {
                        // ordering: telemetry, as above.
                        counters.connects.fetch_add(1, Ordering::Relaxed);
                        return Ok(stream);
                    }
                    Err(e) => last_err = e,
                }
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Accept one mesh connection and read its dial preamble, returning the
/// dialer's self-declared rank. The preamble read is bounded so a stray
/// connection cannot wedge mesh establishment.
///
/// # Errors
/// Accept/read failures, or a connection whose preamble magic is wrong.
pub fn accept_peer(listener: &TcpListener) -> std::io::Result<(usize, TcpStream)> {
    let (mut stream, _) = listener.accept()?;
    stream.set_read_timeout(Some(PREAMBLE_TIMEOUT))?;
    let mut preamble = [0u8; 8];
    stream.read_exact(&mut preamble)?;
    stream.set_read_timeout(None)?;
    let magic = u32::from_le_bytes([preamble[0], preamble[1], preamble[2], preamble[3]]);
    if magic != DIAL_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "dial preamble magic mismatch",
        ));
    }
    let from = u32::from_le_bytes([preamble[4], preamble[5], preamble[6], preamble[7]]) as usize;
    Ok((from, stream))
}

/// Command queue of one peer's writer thread. Frames enqueued before
/// `Shutdown` are always written (or deliberately severed by a wire
/// fault) before the FIN — the drain guarantee.
enum WriterCmd {
    Frame(Bytes),
    Shutdown,
}

/// A rank's endpoint onto a TCP mesh. See the module docs for the
/// threading model and robustness properties.
pub struct TcpTransport {
    rank: usize,
    size: usize,
    faults: FaultInjector,
    stats: CommStats,
    counters: Arc<TcpCounters>,
    /// `writers[to]` feeds rank `to`'s writer thread (`None` at self).
    writers: Vec<Option<Sender<WriterCmd>>>,
    /// `rx[from]` yields whole frames from rank `from` (self included,
    /// wired as an in-process channel).
    rx: Vec<Receiver<Bytes>>,
    /// Loopback sender for self-sends.
    self_tx: Sender<Bytes>,
    /// Telemetry diversion: readers park `TELEM` frames here instead of
    /// the per-peer protocol channels (see
    /// [`Transport::drain_telemetry`]); `telem_tx` also takes telemetry
    /// self-sends.
    telem_tx: Sender<Bytes>,
    telem_rx: Receiver<Bytes>,
    writer_handles: Mutex<Vec<JoinHandle<()>>>,
    closed: AtomicBool,
}

impl TcpTransport {
    /// Build a transport over an established mesh: `streams[peer]` is
    /// the pair socket to `peer` (`None` at `rank`'s own slot). Spawns
    /// one reader and one writer thread per peer; `TCP_NODELAY` is set
    /// so small protocol frames are not Nagle-delayed.
    ///
    /// # Errors
    /// Socket configuration (`set_nodelay`) or clone failures.
    ///
    /// # Panics
    /// Panics if the stream vector's shape disagrees with `rank`/`size`
    /// (a slot missing, or a stream at the self slot).
    pub fn from_streams(
        rank: usize,
        size: usize,
        streams: Vec<Option<TcpStream>>,
        faults: FaultInjector,
        counters: Arc<TcpCounters>,
    ) -> std::io::Result<Self> {
        assert_eq!(streams.len(), size, "one stream slot per rank");
        assert!(rank < size, "rank {rank} out of range");
        let (self_tx, self_rx) = unbounded();
        let (telem_tx, telem_rx) = unbounded();
        let mut self_rx = Some(self_rx);
        let mut writers: Vec<Option<Sender<WriterCmd>>> = Vec::with_capacity(size);
        let mut rx: Vec<Receiver<Bytes>> = Vec::with_capacity(size);
        let mut writer_handles = Vec::with_capacity(size.saturating_sub(1));
        for (peer, slot) in streams.into_iter().enumerate() {
            match slot {
                None => {
                    assert_eq!(peer, rank, "missing stream for peer {peer}");
                    writers.push(None);
                    rx.push(self_rx.take().expect("exactly one self slot"));
                }
                Some(stream) => {
                    assert_ne!(peer, rank, "unexpected stream at the self slot");
                    stream.set_nodelay(true)?;
                    let write_half = stream.try_clone()?;
                    let (frame_tx, frame_rx) = unbounded();
                    let (cmd_tx, cmd_rx) = unbounded();
                    let reader_counters = Arc::clone(&counters);
                    let reader_telem = telem_tx.clone();
                    // Readers are detached: they exit on peer EOF/error
                    // or when this transport (their channel receiver)
                    // is gone. Joining them would deadlock on a peer
                    // that keeps its socket open.
                    std::thread::spawn(move || {
                        reader_loop(stream, &frame_tx, &reader_telem, &reader_counters);
                    });
                    let writer_faults = faults.clone();
                    let writer_counters = Arc::clone(&counters);
                    writer_handles.push(std::thread::spawn(move || {
                        writer_loop(
                            write_half,
                            &cmd_rx,
                            &writer_faults,
                            rank,
                            peer,
                            &writer_counters,
                        );
                    }));
                    writers.push(Some(cmd_tx));
                    rx.push(frame_rx);
                }
            }
        }
        Ok(Self {
            rank,
            size,
            faults,
            stats: CommStats::default(),
            counters,
            writers,
            rx,
            self_tx,
            telem_tx,
            telem_rx,
            writer_handles: Mutex::new(writer_handles),
            closed: AtomicBool::new(false),
        })
    }

    /// Wire-level counters of this endpoint.
    pub fn counters(&self) -> &Arc<TcpCounters> {
        &self.counters
    }

    /// Drain-then-FIN shutdown, idempotent: every writer queue is
    /// flushed to the wire, the writer threads are joined, and the write
    /// halves are closed (FIN). Read halves stay open so late peer
    /// frames never turn into RSTs; reader threads exit on peer EOF.
    pub fn shutdown(&self) {
        // ordering: the swap only elects which caller runs the close
        // path; the writer-thread joins below provide the happens-before
        // edge for everything the writers flushed, so a run-once guard
        // needs no ordering of its own.
        if self.closed.swap(true, Ordering::Relaxed) {
            return;
        }
        for writer in self.writers.iter().flatten() {
            let _ = writer.send(WriterCmd::Shutdown);
        }
        let handles = std::mem::take(
            &mut *self
                .writer_handles
                .lock()
                .expect("writer handle registry poisoned"),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, payload: Bytes) {
        assert!(to < self.size, "rank {to} out of range");
        let telem = crate::live::is_telem(&payload);
        if !telem {
            // ordering: pure counters, kept in exact parity with the
            // channel fabric — counted per send() call, before any drop
            // fault.
            self.stats.messages.fetch_add(1, Ordering::Relaxed);
            let n = payload.len() as u64;
            // ordering: same telemetry argument as the message counter.
            self.stats.bytes.fetch_add(n, Ordering::Relaxed);
            // Telemetry skips the message-level injector so fault-plan
            // `nth` indices are identical with telemetry on or off.
            // (Wire-level `on_frame` faults in the writer DO still apply
            // to telemetry frames: heartbeats must survive — or visibly
            // degrade under — the same wire chaos as protocol frames.)
            match self.faults.on_message(self.rank, to) {
                MessageAction::Drop => return,
                MessageAction::Delay(pause) => std::thread::sleep(pause),
                MessageAction::Deliver => {}
            }
        }
        if to == self.rank {
            if telem {
                let _ = self.telem_tx.send(payload);
            } else {
                let _ = self.self_tx.send(payload);
            }
            return;
        }
        if let Some(writer) = &self.writers[to] {
            // A closed writer (post-shutdown) swallows the frame — the
            // datagram-to-a-dead-host semantics of the channel fabric.
            self.counters.queue_inc(to);
            if writer.send(WriterCmd::Frame(payload)).is_err() {
                self.counters.queue_dec(to);
            }
        }
    }

    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Bytes, RecvTimeoutError> {
        assert!(from < self.size, "rank {from} out of range");
        let result = self.rx[from].recv_timeout(timeout);
        match &result {
            Err(RecvTimeoutError::Timeout) => {
                // ordering: telemetry counter on the error path.
                self.counters
                    .deadline_expiries
                    .fetch_add(1, Ordering::Relaxed); // ordering: telemetry
            }
            Err(RecvTimeoutError::Disconnected) => {
                // ordering: telemetry counter on the error path.
                self.counters
                    .peer_disconnects
                    .fetch_add(1, Ordering::Relaxed); // ordering: telemetry
            }
            Ok(_) => {}
        }
        result
    }

    fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    fn messages_sent(&self) -> u64 {
        self.stats.messages()
    }

    fn bytes_sent(&self) -> u64 {
        self.stats.bytes()
    }

    fn drain_telemetry(&self) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Ok(beat) = self.telem_rx.try_recv() {
            out.push(beat);
        }
        out
    }

    fn send_queue_depth(&self) -> u64 {
        self.counters.send_queue_depth()
    }
}

/// Reassemble whole frames off the byte stream and hand them to the
/// consumer channel — except `TELEM` frames, which are diverted to the
/// shared telemetry channel so the protocol receive stream is identical
/// with telemetry on or off. Exits (dropping the sender, which surfaces
/// as `Disconnected` once drained) on EOF, I/O error, an insane length
/// prefix, or a transport that has gone away.
fn reader_loop(
    mut stream: TcpStream,
    frames: &Sender<Bytes>,
    telem: &Sender<Bytes>,
    counters: &TcpCounters,
) {
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return;
        }
        let mut payload = vec![0u8; len];
        if stream.read_exact(&mut payload).is_err() {
            // Torn frame: the peer died mid-write (or a trunc/cut fault
            // fired). Whole frames already delivered stay delivered.
            return;
        }
        // ordering: telemetry counters; the channel send publishes data.
        counters.frames_recv.fetch_add(1, Ordering::Relaxed);
        counters
            .frame_bytes_recv
            .fetch_add(len as u64, Ordering::Relaxed); // ordering: telemetry
        let payload = Bytes::from(payload);
        let deliver = if crate::live::is_telem(&payload) {
            telem.send(payload)
        } else {
            frames.send(payload)
        };
        if deliver.is_err() {
            return;
        }
    }
}

/// Drain the command queue onto the wire, applying wire faults, until
/// `Shutdown` (or the transport is gone), then FIN the write half. Write
/// errors mark the peer dead and later frames are discarded silently —
/// sends must never error back into the protocol thread.
fn writer_loop(
    mut stream: TcpStream,
    cmds: &Receiver<WriterCmd>,
    faults: &FaultInjector,
    from: usize,
    to: usize,
    counters: &TcpCounters,
) {
    let mut peer_dead = false;
    while let Ok(cmd) = cmds.recv() {
        let payload = match cmd {
            WriterCmd::Frame(payload) => payload,
            WriterCmd::Shutdown => break,
        };
        // Dequeued — written, faulted, or discarded below, the frame is
        // no longer waiting.
        counters.queue_dec(to);
        if peer_dead {
            continue;
        }
        match faults.on_frame(from, to, payload.len()) {
            WireAction::Deliver => {
                if write_frame(&mut stream, &payload).is_ok() {
                    // ordering: telemetry; the socket write is the event.
                    counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                    counters
                        .frame_bytes_sent
                        .fetch_add(payload.len() as u64, Ordering::Relaxed); // ordering: telemetry
                } else {
                    peer_dead = true;
                }
            }
            WireAction::Stall(pause) => {
                // Split the frame around a sleep: the receiver sees the
                // length prefix and then silence, so its deadline — not
                // this thread — decides whether the round heals.
                let cut = payload.len() / 2;
                let stalled = stream
                    .write_all(&(payload.len() as u32).to_le_bytes())
                    .and_then(|()| stream.write_all(&payload[..cut]))
                    .and_then(|()| stream.flush());
                std::thread::sleep(pause);
                if stalled
                    .and_then(|()| stream.write_all(&payload[cut..]))
                    .is_ok()
                {
                    // ordering: telemetry, as on the Deliver arm.
                    counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                    counters
                        .frame_bytes_sent
                        .fetch_add(payload.len() as u64, Ordering::Relaxed); // ordering: telemetry
                } else {
                    peer_dead = true;
                }
            }
            WireAction::Truncate(keep) => {
                // Advertise the full length, deliver `keep` bytes, then
                // sever the whole connection: the peer's reader sees a
                // torn frame and reports a dead rank, and this side
                // stops hearing the peer too (a cut is symmetric).
                let _ = stream
                    .write_all(&(payload.len() as u32).to_le_bytes())
                    .and_then(|()| stream.write_all(&payload[..keep.min(payload.len())]))
                    .and_then(|()| stream.flush());
                let _ = stream.shutdown(Shutdown::Both);
                peer_dead = true;
            }
        }
    }
    let _ = stream.flush();
    // FIN the write half only: the peer reads EOF after our drained
    // frames, while anything it still sends is consumed, not RST.
    let _ = stream.shutdown(Shutdown::Write);
}

/// Run `body` on `size` ranks over a loopback TCP mesh (scoped threads,
/// one real socket per rank pair) — the TCP twin of
/// [`crate::comm::run_ranks_on`]. Listeners are bound first, so dials
/// land in a backlog at worst; each rank dials every lower rank and
/// accepts from every higher one. Panics in any rank propagate.
///
/// # Errors
/// Listener bind failures (before any rank thread starts).
///
/// # Panics
/// Panics if `size == 0`, or if mesh establishment fails inside a rank
/// thread (dial retries exhausted / preamble violation) — harness
/// semantics, like a rank panic under [`crate::comm::run_ranks`].
pub fn run_ranks_tcp<T, F>(size: usize, faults: &FaultInjector, body: F) -> std::io::Result<Vec<T>>
where
    T: Send,
    F: Fn(TcpTransport) -> T + Sync,
{
    assert!(size >= 1, "need at least one rank");
    let mut listeners = Vec::with_capacity(size);
    let mut addrs = Vec::with_capacity(size);
    for _ in 0..size {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        addrs.push(listener.local_addr()?);
        listeners.push(listener);
    }
    let addrs = &addrs;
    let policy = RetryPolicy::default();
    let outputs = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let body = &body;
                let policy = &policy;
                scope.spawn(move |_| {
                    let counters = Arc::new(TcpCounters::for_peers(size));
                    let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
                    for to in 0..rank {
                        let stream = dial(addrs[to], rank, to, policy, faults, &counters)
                            .expect("mesh dial failed");
                        streams[to] = Some(stream);
                    }
                    for _ in rank + 1..size {
                        let (from, stream) = accept_peer(&listener).expect("mesh accept failed");
                        assert!(
                            from > rank && from < size && streams[from].is_none(),
                            "mesh preamble announced an impossible rank {from}"
                        );
                        streams[from] = Some(stream);
                    }
                    drop(listener);
                    let transport =
                        TcpTransport::from_streams(rank, size, streams, faults.clone(), counters)
                            .expect("transport construction failed");
                    body(transport)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
    .expect("cluster scope failed");
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_fault::FaultPlan;

    fn injector(plan: &str) -> FaultInjector {
        FaultInjector::from_plan(&FaultPlan::parse(plan).expect("literal plan parses"))
    }

    #[test]
    fn frames_are_ordered_addressed_and_accounted() {
        let sent = run_ranks_tcp(3, &FaultInjector::none(), |tp| {
            for to in 0..tp.size() {
                if to != tp.rank() {
                    tp.send(to, Bytes::from(vec![tp.rank() as u8, 1]));
                    tp.send(to, Bytes::from(vec![tp.rank() as u8, 2]));
                }
            }
            for from in 0..tp.size() {
                if from != tp.rank() {
                    let a = tp
                        .recv_timeout(from, Duration::from_secs(10))
                        .expect("first frame arrives");
                    let b = tp
                        .recv_timeout(from, Duration::from_secs(10))
                        .expect("second frame arrives");
                    assert_eq!(a[0] as usize, from, "frame mis-addressed");
                    assert_eq!((a[1], b[1]), (1, 2), "per-edge ordering violated");
                }
            }
            (tp.messages_sent(), tp.bytes_sent())
        })
        .expect("loopback mesh binds");
        assert_eq!(sent, vec![(4, 8), (4, 8), (4, 8)]);
    }

    #[test]
    fn self_send_loops_back() {
        let out = run_ranks_tcp(1, &FaultInjector::none(), |tp| {
            tp.send(0, Bytes::from_static(b"me"));
            tp.recv_timeout(0, Duration::from_secs(5))
                .expect("self frame loops back")
        })
        .expect("loopback mesh binds");
        assert_eq!(&out[0][..], b"me");
    }

    #[test]
    fn shutdown_drains_queued_frames_before_fin() {
        // Rank 0 enqueues a frame and drops its transport immediately;
        // the drain-then-FIN guarantee means rank 1 still receives the
        // frame, then sees Disconnected.
        let out = run_ranks_tcp(2, &FaultInjector::none(), |tp| {
            if tp.rank() == 0 {
                tp.send(1, Bytes::from(vec![7u8; 100_000]));
                return true; // transport drops here
            }
            let frame = tp
                .recv_timeout(0, Duration::from_secs(10))
                .expect("queued frame survives the sender's shutdown");
            assert_eq!(frame.len(), 100_000);
            let err = tp
                .recv_timeout(0, Duration::from_secs(10))
                .expect_err("after the drain the peer is gone");
            assert_eq!(err, RecvTimeoutError::Disconnected);
            false
        })
        .expect("loopback mesh binds");
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn silent_peer_times_out_and_counts_the_expiry() {
        run_ranks_tcp(2, &FaultInjector::none(), |tp| {
            if tp.rank() == 0 {
                let err = tp
                    .recv_timeout(1, Duration::from_millis(30))
                    .expect_err("silence must time out");
                assert_eq!(err, RecvTimeoutError::Timeout);
                assert_eq!(tp.counters().deadline_expiries.load(Ordering::Relaxed), 1);
                // Unblock rank 1's drop-side symmetry by saying goodbye.
                tp.send(1, Bytes::new());
            } else {
                let _ = tp.recv_timeout(0, Duration::from_secs(10));
            }
        })
        .expect("loopback mesh binds");
    }

    #[test]
    fn injected_refusals_are_retried_and_counted() {
        let faults = injector("seed=3;refuse(from=1,to=0,attempts=2)");
        let out = run_ranks_tcp(2, &faults, |tp| {
            if tp.rank() == 1 {
                tp.send(0, Bytes::from_static(b"made it"));
                tp.counters().connect_retries.load(Ordering::Relaxed)
            } else {
                let frame = tp
                    .recv_timeout(1, Duration::from_secs(10))
                    .expect("dial eventually succeeds");
                assert_eq!(&frame[..], b"made it");
                0
            }
        })
        .expect("loopback mesh binds");
        assert!(
            out[1] >= 2,
            "two refused attempts must surface as retries, saw {}",
            out[1]
        );
        assert_eq!(faults.faults_fired(), 2);
    }

    #[test]
    fn truncated_frame_severs_the_connection_cleanly() {
        let faults = injector("seed=3;trunc(from=0,to=1,nth=1,bytes=3)");
        run_ranks_tcp(2, &faults, |tp| {
            if tp.rank() == 0 {
                tp.send(1, Bytes::from_static(b"frame zero"));
                tp.send(1, Bytes::from_static(b"frame one (truncated)"));
                tp.send(1, Bytes::from_static(b"frame two (never sent)"));
            } else {
                let first = tp
                    .recv_timeout(0, Duration::from_secs(10))
                    .expect("frame before the fault is whole");
                assert_eq!(&first[..], b"frame zero");
                let err = tp
                    .recv_timeout(0, Duration::from_secs(10))
                    .expect_err("torn frame must read as peer death");
                assert_eq!(err, RecvTimeoutError::Disconnected);
                assert_eq!(tp.counters().peer_disconnects.load(Ordering::Relaxed), 1);
            }
        })
        .expect("loopback mesh binds");
        assert_eq!(faults.faults_fired(), 1);
    }

    #[test]
    fn stalled_frame_arrives_whole_after_the_stall() {
        let faults = injector("seed=3;stall(from=0,to=1,nth=0,us=50000)");
        run_ranks_tcp(2, &faults, |tp| {
            if tp.rank() == 0 {
                tp.send(1, Bytes::from(vec![9u8; 4096]));
            } else {
                // Short deadline first: the stall makes it expire.
                let err = tp
                    .recv_timeout(0, Duration::from_millis(5))
                    .expect_err("stall holds the frame past the deadline");
                assert_eq!(err, RecvTimeoutError::Timeout);
                // Patient deadline: the frame arrives intact.
                let frame = tp
                    .recv_timeout(0, Duration::from_secs(10))
                    .expect("stalled frame still arrives whole");
                assert_eq!(frame.len(), 4096);
            }
        })
        .expect("loopback mesh binds");
        assert_eq!(faults.faults_fired(), 1);
    }

    #[test]
    fn dial_gives_up_after_bounded_attempts() {
        let counters = TcpCounters::default();
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            max: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let faults = injector("seed=3;refuse(from=1,to=0,attempts=1000)");
        let err = dial(
            "127.0.0.1:9".parse().expect("literal addr parses"),
            1,
            0,
            &policy,
            &faults,
            &counters,
        )
        .expect_err("every attempt is refused");
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
        assert_eq!(counters.connect_retries.load(Ordering::Relaxed), 2);
        assert_eq!(counters.connects.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn counters_publish_the_tcp_vocabulary() {
        let counters = TcpCounters::default();
        counters.frames_sent.store(4, Ordering::Relaxed);
        counters.frame_bytes_recv.store(123, Ordering::Relaxed);
        let rec = Recorder::enabled();
        counters.publish(&rec);
        let mut out = Vec::new();
        rec.write_ndjson(&mut out).expect("ndjson render");
        let text = String::from_utf8(out).expect("ndjson is utf-8");
        assert!(text.contains("tcp.frames_sent"));
        assert!(text.contains("tcp.frame_bytes_recv"));
        assert!(text.contains("tcp.deadline_expiries"));
    }
}
