//! Simulated cluster substrate and the distributed network construction.
//!
//! The paper positions its single-chip solution against the original
//! distributed TINGe, which reconstructed the same Arabidopsis network on
//! 1,024 Blue Gene/L cores using MPI. No MPI (or second machine) exists
//! in this environment, so — per the substitution rule in DESIGN.md — this
//! crate builds the closest synthetic equivalent:
//!
//! * [`comm`] — an in-process message-passing fabric: `P` ranks as
//!   threads, reliable ordered point-to-point byte channels between every
//!   pair, and the collectives the algorithm needs (barrier, broadcast,
//!   gather, ring shift), with per-endpoint traffic accounting;
//! * [`codec`] — a compact wire format for blocks of prepared genes
//!   (the sparse B-spline weight matrices TINGe ships between ranks);
//! * [`distributed`] — the TINGe-style algorithm: genes block-distributed
//!   over ranks, ring-pass of gene blocks so each unordered block pair is
//!   computed by exactly one owner rank, mergeable pooled-null reduction
//!   to rank 0, and a final gather of candidate edges.
//!
//! The distributed result is bit-identical in edge structure to the
//! shared-memory pipeline (asserted in tests across rank counts), which
//! is the property that makes the paper's single-chip-vs-cluster
//! comparison an apples-to-apples one.
//!
//! The fabric and driver are failure-aware: receives are bounded
//! ([`Endpoint::recv_timeout`]), a [`gnet_fault::FaultInjector`] can
//! crash ranks and drop or delay frames ([`Fabric::with_faults`]), and
//! the driver recovers from any non-coordinator loss with the same edge
//! set as the fault-free run (see [`distributed`] module docs).

// cast-ok (crate-wide): the wire format carries u32 lengths/ids and f32
// edge weights by design; block sizes and gene counts are bounded far
// below u32::MAX, so the narrowing casts are the intended representation.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod codec;
pub mod comm;
pub mod distributed;
pub mod live;
pub mod process;
pub mod protocol;
pub mod tcp;
pub mod transport;

pub use codec::CodecError;
pub use comm::{run_ranks, run_ranks_on, CommStats, Endpoint, Fabric, RecvTimeoutError};
pub use distributed::{
    infer_network_distributed, infer_network_distributed_faulty, infer_network_distributed_live,
    infer_network_distributed_tcp, infer_network_distributed_tcp_faulty,
    infer_network_distributed_tcp_live, infer_network_distributed_tcp_traced,
    infer_network_distributed_traced, ClusterError, DistributedResult, RankStats,
    DEFAULT_PEER_TIMEOUT,
};
pub use live::{TelemetryPlane, TelemetrySpec};
pub use process::{run_worker, serve_coordinator, WorkerReport};
pub use protocol::{
    block_pair_owner, block_range, redistribute, Effect, Event, Frame, Mutation, Phase,
    RankMachine, Wait,
};
pub use tcp::{run_ranks_tcp, RetryPolicy, TcpCounters, TcpTransport};
pub use transport::Transport;
