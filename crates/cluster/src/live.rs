//! Live telemetry plane: in-band heartbeats and the rank-0 cluster view.
//!
//! The trace stack (`gnet-trace` → `gnet-obs`) answers questions *after*
//! a run; this module answers them *during* one. Each rank carries a
//! [`gnet_telemetry::MetricsRegistry`] fed by its recorder and, on a
//! cadence, encodes a [`gnet_telemetry::Heartbeat`] — round watermark,
//! pair count, send-queue depth, registry snapshot — into a `TELEM`
//! frame sent to rank 0 over the **existing** transport. Rank 0 folds
//! the beats into a [`gnet_telemetry::ClusterView`] owned by a
//! [`TelemetryPlane`], which exposes it through an atomically-rewritten
//! status file and/or a std-only HTTP listener (`/status`, `/metrics`).
//!
//! ## Telemetry never perturbs results
//!
//! The invariant every design choice here serves: the edge set of a run
//! with telemetry on is **byte-identical** to the same run with it off
//! (pinned by the tests below and the CI smoke job). Concretely:
//!
//! * `TELEM` frames are diverted at the transport layer — they never
//!   enter a protocol receive queue, so the protocol observes the exact
//!   same frame sequence either way.
//! * Sends of `TELEM` frames skip the message-level fault injector and
//!   the fabric message counters, so a fault plan's `nth` message
//!   indices are identical with telemetry on or off. (Wire-level frame
//!   faults on TCP *do* apply — heartbeats must survive, or visibly
//!   degrade under, real wire chaos.)
//! * Beats are fire-and-forget: a lost, torn, reordered, or undecodable
//!   beat is just a missed beat; nothing retries, nothing blocks.
//! * The protocol loop ticks the beat clock between effects and
//!   receives — telemetry adds no waits to the protocol's own schedule.

use crate::distributed::{frame, parse_frame, FRAME_HEADER};
use crate::transport::Transport;
use gnet_telemetry::{
    render_prometheus, render_status_json, write_status_file_atomic, ClusterView, Heartbeat,
    MetricsRegistry, StatusDocs, StatusServer,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frame tag of an in-band telemetry heartbeat (see
/// [`crate::distributed`] for tags 1–7). `TELEM` frames share the wire
/// with protocol traffic but are out-of-band end to end: diverted on
/// receive, uncounted and unfaulted (message level) on send.
pub(crate) const TAG_TELEM: u8 = 8;

/// Is this fully-framed payload (`tag ‖ round ‖ body`) a telemetry
/// frame? Transports call this on the *encoded* frame at send and
/// receive boundaries.
pub(crate) fn is_telem(payload: &[u8]) -> bool {
    payload.len() >= FRAME_HEADER && payload[0] == TAG_TELEM
}

/// Poison-tolerant lock: the view holds plain data, so a panicked
/// scraper thread leaves it merely stale, never structurally invalid.
fn lock_view(view: &Mutex<ClusterView>) -> MutexGuard<'_, ClusterView> {
    view.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What the caller asked the plane to expose, and how often to beat.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySpec {
    /// Bind address for the HTTP status listener (e.g. `127.0.0.1:0`);
    /// `None` disables it.
    pub status_addr: Option<String>,
    /// Path of the atomically-rewritten `gnet-status/1` JSON file;
    /// `None` disables it.
    pub status_file: Option<PathBuf>,
    /// Heartbeat (and status-file rewrite) cadence. Clamped to ≥ 1 ms.
    pub interval: Duration,
}

impl TelemetrySpec {
    /// A spec with the given cadence and no pull surfaces armed — the
    /// view is still maintained and readable via [`TelemetryPlane::view`].
    #[must_use]
    pub fn with_interval(interval: Duration) -> Self {
        Self {
            interval,
            ..Self::default()
        }
    }
}

/// The live-status side of one running inference, owned by the caller
/// (the CLI, the multi-process coordinator, or a test).
///
/// Holds the rank-0 [`ClusterView`], keeps it fresh from a background
/// keeper thread (so straggler detection advances even while rank 0
/// blocks in a receive), and serves it through the surfaces the
/// [`TelemetrySpec`] asked for. Call [`finish`](Self::finish) after the
/// run to freeze the view, write the final status document, and stop
/// the listener; dropping an unfinished plane cleans up the same way.
pub struct TelemetryPlane {
    view: Arc<Mutex<ClusterView>>,
    interval: Duration,
    status_file: Option<PathBuf>,
    server: Option<StatusServer>,
    stop: Arc<AtomicBool>,
    keeper: Option<JoinHandle<()>>,
}

impl TelemetryPlane {
    /// Start the plane for a `ranks`-rank run over `pairs_total` gene
    /// pairs: bind the HTTP listener (when requested), spawn the keeper
    /// thread, and hand back the handle the `*_live` entry points fold
    /// heartbeats into.
    ///
    /// # Errors
    /// Binding the status listener or spawning the keeper failed. The
    /// run itself has not started; nothing needs unwinding.
    pub fn start(spec: &TelemetrySpec, ranks: usize, pairs_total: u64) -> std::io::Result<Self> {
        let interval = spec.interval.max(Duration::from_millis(1));
        let view = Arc::new(Mutex::new(ClusterView::new(ranks, pairs_total, interval)));
        let server = match &spec.status_addr {
            Some(addr) => {
                let source_view = Arc::clone(&view);
                Some(StatusServer::bind(
                    addr,
                    Arc::new(move || {
                        let now = Instant::now();
                        let mut v = lock_view(&source_view);
                        v.refresh_at(now);
                        StatusDocs {
                            status_json: render_status_json(&v, now),
                            metrics: render_prometheus(&v, now),
                        }
                    }),
                )?)
            }
            None => None,
        };
        let stop = Arc::new(AtomicBool::new(false));
        let keeper = {
            let view = Arc::clone(&view);
            let stop = Arc::clone(&stop);
            let file = spec.status_file.clone();
            std::thread::Builder::new()
                .name("gnet-status-keeper".into())
                .spawn(move || {
                    // ordering: advisory stop flag; the join in finish()
                    // synchronizes everything that matters.
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(interval);
                        let now = Instant::now();
                        let doc = {
                            let mut v = lock_view(&view);
                            v.refresh_at(now);
                            file.as_ref().map(|_| render_status_json(&v, now))
                        };
                        if let (Some(path), Some(doc)) = (&file, doc) {
                            // A transient filesystem error must never
                            // wedge a run; the next tick retries and the
                            // final write in finish() reports failures.
                            let _ = write_status_file_atomic(path, &doc);
                        }
                    }
                })?
        };
        Ok(Self {
            view,
            interval,
            status_file: spec.status_file.clone(),
            server,
            stop: Arc::clone(&stop),
            keeper: Some(keeper),
        })
    }

    /// The heartbeat cadence the plane was started with.
    #[must_use]
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The address the status listener actually bound (ephemeral port
    /// resolved), when one was requested.
    #[must_use]
    pub fn status_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(StatusServer::addr)
    }

    /// Shared handle to the live cluster view.
    #[must_use]
    pub fn view(&self) -> Arc<Mutex<ClusterView>> {
        Arc::clone(&self.view)
    }

    /// Freeze the view (`state` flips to `done`, straggler flags stop
    /// moving), write the final status document, and stop the keeper
    /// and the listener. Idempotent.
    ///
    /// # Errors
    /// The final status-file write failed (the view is frozen and the
    /// threads are down regardless).
    pub fn finish(&mut self) -> std::io::Result<()> {
        // ordering: advisory stop flag; the join below synchronizes.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(keeper) = self.keeper.take() {
            let _ = keeper.join();
        }
        let now = Instant::now();
        let doc = {
            let mut v = lock_view(&self.view);
            v.refresh_at(now);
            v.finish();
            render_status_json(&v, now)
        };
        if let Some(server) = &mut self.server {
            server.shutdown();
        }
        match &self.status_file {
            Some(path) => write_status_file_atomic(path, &doc),
            None => Ok(()),
        }
    }
}

impl Drop for TelemetryPlane {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// One rank's live-telemetry assignment, handed into the protocol loop
/// by the `*_live` entry points.
pub(crate) struct LiveDuty {
    /// This rank's metrics registry (also installed as the rank
    /// recorder's [`gnet_trace::MetricsSink`]).
    pub(crate) registry: Arc<MetricsRegistry>,
    /// Heartbeat cadence.
    pub(crate) interval: Duration,
    /// Rank 0 only: the plane's view, folded locally instead of sending
    /// beats to itself over the wire.
    pub(crate) view: Option<Arc<Mutex<ClusterView>>>,
}

impl LiveDuty {
    /// Duties for an in-process run: one registry per rank, the plane's
    /// view attached to rank 0.
    pub(crate) fn for_ranks(plane: &TelemetryPlane, ranks: usize) -> Vec<Self> {
        (0..ranks)
            .map(|r| Self {
                registry: Arc::new(MetricsRegistry::new()),
                interval: plane.interval(),
                view: (r == 0).then(|| plane.view()),
            })
            .collect()
    }
}

/// The beat clock one rank ticks from inside its protocol loop. The
/// first tick always beats (so every rank is visible immediately);
/// later beats fire once `interval` has elapsed since the last.
pub(crate) struct BeatState {
    start: Instant,
    next: Instant,
    interval: Duration,
}

impl BeatState {
    pub(crate) fn new(interval: Duration) -> Self {
        let start = Instant::now();
        Self {
            start,
            next: start,
            interval,
        }
    }

    /// Microseconds since this rank armed its beat clock (the
    /// `elapsed_us` freshness watermark carried by its beats).
    fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// True once per elapsed interval.
    fn due(&mut self) -> bool {
        let now = Instant::now();
        if now < self.next {
            return false;
        }
        self.next = now + self.interval;
        true
    }
}

/// One telemetry tick from inside a rank's protocol loop: when a beat
/// is due (or `done` forces a final one), snapshot the registry into a
/// heartbeat and either send it to rank 0 as a `TELEM` frame or — on
/// rank 0 itself — fold it, plus every remote beat the transport has
/// diverted, straight into the plane's view.
pub(crate) fn live_tick(
    duty: &LiveDuty,
    beat: &mut BeatState,
    tp: &dyn Transport,
    round: u32,
    done: bool,
    pairs: u64,
) {
    if !beat.due() && !done {
        return;
    }
    let hb = Heartbeat::from_snapshot(
        tp.rank() as u32,
        round,
        done,
        pairs,
        beat.elapsed_us(),
        tp.send_queue_depth(),
        &duty.registry.snapshot(),
    );
    match &duty.view {
        Some(view) => {
            let mut v = lock_view(view);
            v.fold(&hb);
            for raw in tp.drain_telemetry() {
                if let Some((TAG_TELEM, _, payload)) = parse_frame(raw) {
                    if let Some(remote) = Heartbeat::decode(&payload) {
                        v.fold(&remote);
                    }
                }
            }
        }
        None => tp.send(0, frame(TAG_TELEM, 0, &hb.encode())),
    }
}

/// Rank 0 presumed `rank` dead during the census: mark it in the live
/// view so scrapes stop expecting its beats.
pub(crate) fn live_mark_dead(duty: &LiveDuty, rank: usize) {
    if let Some(view) = &duty.view {
        lock_view(view).mark_dead(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::{
        infer_network_distributed, infer_network_distributed_live, infer_network_distributed_tcp,
        infer_network_distributed_tcp_live, DEFAULT_PEER_TIMEOUT,
    };
    use gnet_core::InferenceConfig;
    use gnet_expr::synth::{coupled_pairs, Coupling};
    use gnet_fault::{Fault, FaultInjector, FaultPlan};
    use gnet_graph::GeneNetwork;
    use gnet_trace::Recorder;
    use std::io::{Read as _, Write as _};

    fn cfg() -> InferenceConfig {
        InferenceConfig {
            permutations: 12,
            threads: Some(1),
            tile_size: Some(8),
            ..InferenceConfig::default()
        }
    }

    fn edge_bits(net: &GeneNetwork) -> Vec<(u32, u32, u32)> {
        net.edges()
            .iter()
            .map(|e| (e.a, e.b, e.weight.to_bits()))
            .collect()
    }

    fn pairs_total(genes: usize) -> u64 {
        (genes as u64) * (genes as u64 - 1) / 2
    }

    #[test]
    fn telem_frames_are_recognized_by_tag_and_length() {
        let beat = frame(TAG_TELEM, 0, b"beat");
        assert!(is_telem(&beat));
        assert!(!is_telem(&frame(1, 0, b"block")));
        assert!(!is_telem(&[TAG_TELEM])); // shorter than a frame header
        assert!(!is_telem(b""));
    }

    #[test]
    fn beat_clock_fires_immediately_then_on_cadence() {
        let mut b = BeatState::new(Duration::from_secs(3600));
        assert!(b.due(), "first tick always beats");
        assert!(!b.due(), "second tick inside the interval is silent");
    }

    #[test]
    fn live_plane_does_not_perturb_channel_results() {
        let (matrix, _) = coupled_pairs(6, 220, Coupling::Linear(0.8), 77);
        let baseline = infer_network_distributed(&matrix, &cfg(), 4);
        let spec = TelemetrySpec::with_interval(Duration::from_millis(5));
        let mut plane = TelemetryPlane::start(&spec, 4, pairs_total(6)).expect("plane starts");
        let live = infer_network_distributed_live(
            &matrix,
            &cfg(),
            4,
            &FaultInjector::none(),
            &Recorder::disabled(),
            DEFAULT_PEER_TIMEOUT,
            &plane,
        )
        .expect("live run completes");
        assert_eq!(
            edge_bits(&live.network),
            edge_bits(&baseline.network),
            "telemetry must never change the edge set"
        );
        assert_eq!(live.threshold.to_bits(), baseline.threshold.to_bits());
        plane.finish().expect("no status file to fail on");
        let view = plane.view();
        let v = lock_view(&view);
        assert!(v.is_done(), "finish freezes the view as done");
        assert!(v.pairs_done() > 0, "beats carried pair progress");
        for r in v.ranks() {
            assert!(r.beats >= 1, "rank {} never beat", r.rank);
        }
    }

    #[test]
    fn live_plane_does_not_perturb_tcp_results_and_serves_scrapes() {
        let (matrix, _) = coupled_pairs(6, 220, Coupling::Linear(0.8), 78);
        let baseline = infer_network_distributed_tcp(&matrix, &cfg(), 4).expect("baseline runs");
        let spec = TelemetrySpec {
            status_addr: Some("127.0.0.1:0".to_string()),
            status_file: None,
            interval: Duration::from_millis(5),
        };
        let mut plane = TelemetryPlane::start(&spec, 4, pairs_total(6)).expect("plane starts");
        let addr = plane.status_addr().expect("listener bound");
        let live = infer_network_distributed_tcp_live(
            &matrix,
            &cfg(),
            4,
            &FaultInjector::none(),
            &Recorder::disabled(),
            DEFAULT_PEER_TIMEOUT,
            &plane,
        )
        .expect("live run completes");
        assert_eq!(
            edge_bits(&live.network),
            edge_bits(&baseline.network),
            "telemetry must never change the TCP edge set"
        );
        let status = scrape(addr, "/status");
        assert!(status.contains("\"format\":\"gnet-status\""), "{status}");
        let metrics = scrape(addr, "/metrics");
        assert!(metrics.contains("gnet_pairs_done_total"), "{metrics}");
        plane.finish().expect("no status file to fail on");
    }

    #[test]
    fn stalled_wire_flags_a_straggler_without_perturbing_edges() {
        let (matrix, _) = coupled_pairs(6, 220, Coupling::Linear(0.8), 79);
        let baseline = infer_network_distributed_tcp(&matrix, &cfg(), 4).expect("baseline runs");
        // Stall the second wire frame rank 1 writes toward rank 0 —
        // whichever beat or protocol frame that is, rank 1 has beaten
        // at least once and then goes silent for far longer than the
        // suspect threshold (4 × 5 ms) while the keeper keeps
        // refreshing the view.
        let plan = FaultPlan::new(0).with(Fault::StallFrame {
            from: 1,
            to: 0,
            nth: 1,
            micros: 600_000,
        });
        let spec = TelemetrySpec::with_interval(Duration::from_millis(5));
        let mut plane = TelemetryPlane::start(&spec, 4, pairs_total(6)).expect("plane starts");
        let live = infer_network_distributed_tcp_live(
            &matrix,
            &cfg(),
            4,
            &FaultInjector::from_plan(&plan),
            &Recorder::disabled(),
            DEFAULT_PEER_TIMEOUT,
            &plane,
        )
        .expect("stalled run still completes");
        assert_eq!(
            edge_bits(&live.network),
            edge_bits(&baseline.network),
            "a stall delays frames, never edges"
        );
        plane.finish().expect("no status file to fail on");
        let view = plane.view();
        let v = lock_view(&view);
        assert!(
            v.stragglers_seen().contains(&1),
            "the stalled rank was never flagged: seen={:?}",
            v.stragglers_seen()
        );
    }

    #[test]
    fn severed_heartbeat_wire_degrades_view_without_wedging() {
        let (matrix, _) = coupled_pairs(6, 220, Coupling::Linear(0.8), 80);
        let baseline = infer_network_distributed_tcp(&matrix, &cfg(), 4).expect("baseline runs");
        // Cut the very first frame rank 1 writes toward rank 0 (its
        // first heartbeat): the 1→0 wire dies, every later beat and the
        // results frame are lost, and the census presumes rank 1 dead —
        // the run recovers to the identical edge set while the live
        // view shows the degradation instead of wedging.
        let plan = FaultPlan::new(0).with(Fault::CutFrame {
            from: 1,
            to: 0,
            nth: 0,
        });
        let spec = TelemetrySpec::with_interval(Duration::from_millis(5));
        let mut plane = TelemetryPlane::start(&spec, 4, pairs_total(6)).expect("plane starts");
        let live = infer_network_distributed_tcp_live(
            &matrix,
            &cfg(),
            4,
            &FaultInjector::from_plan(&plan),
            &Recorder::disabled(),
            DEFAULT_PEER_TIMEOUT,
            &plane,
        )
        .expect("run completes despite the severed wire");
        assert_eq!(
            edge_bits(&live.network),
            edge_bits(&baseline.network),
            "recovery must reproduce the baseline edge set"
        );
        plane.finish().expect("no status file to fail on");
        let view = plane.view();
        let v = lock_view(&view);
        assert!(v.pairs_done() > 0, "surviving ranks still reported");
        let healthy = v.ranks().iter().filter(|r| r.beats >= 1).count();
        assert!(
            healthy >= 3,
            "ranks 0, 2, 3 beat over healthy wires: {healthy}"
        );
    }

    #[test]
    fn status_file_is_maintained_and_finalized() {
        let dir = std::env::temp_dir().join(format!("gnet-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("status.json");
        let (matrix, _) = coupled_pairs(6, 220, Coupling::Linear(0.8), 81);
        let spec = TelemetrySpec {
            status_addr: None,
            status_file: Some(path.clone()),
            interval: Duration::from_millis(5),
        };
        let mut plane = TelemetryPlane::start(&spec, 3, pairs_total(6)).expect("plane starts");
        infer_network_distributed_live(
            &matrix,
            &cfg(),
            3,
            &FaultInjector::none(),
            &Recorder::disabled(),
            DEFAULT_PEER_TIMEOUT,
            &plane,
        )
        .expect("live run completes");
        plane.finish().expect("final status write succeeds");
        let doc = std::fs::read_to_string(&path).expect("status file exists");
        assert!(doc.contains("\"state\":\"done\""), "{doc}");
        assert!(doc.contains("\"format\":\"gnet-status\""), "{doc}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Minimal HTTP/1.0 GET against the status listener.
    fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).expect("listener reachable");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("request written");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response read");
        out
    }
}
