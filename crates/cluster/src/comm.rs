//! In-process message-passing fabric.
//!
//! `P` ranks communicate over reliable, ordered, typed-as-bytes channels —
//! the semantics of MPI point-to-point with unbounded buffering (sends
//! never block, receives block until a matching message arrives). One
//! channel exists per ordered rank pair, so `recv(from)` is deterministic
//! and messages from distinct senders cannot be confused.
//!
//! ## Failure awareness
//!
//! Two facilities make the fabric usable under failures:
//!
//! * [`Endpoint::recv_timeout`] bounds every wait — a dead peer yields a
//!   typed [`RecvTimeoutError`] instead of a hang. A crashed rank drops
//!   its endpoint, which closes its sending halves, so survivors usually
//!   see `Disconnected` near-instantly; the timeout covers messages lost
//!   in flight.
//! * [`Fabric::with_faults`] threads a [`FaultInjector`] through every
//!   endpoint: sends consult the injector (drop/delay), and a send to a
//!   dead peer is silently discarded — the semantics of a datagram to a
//!   dead host — instead of panicking. The fault-free [`Fabric::new`]
//!   keeps the strict panic, because there a dropped peer is a logic
//!   error worth crashing on.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use gnet_fault::{FaultInjector, MessageAction};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

pub use crossbeam::channel::RecvTimeoutError;

/// Cumulative traffic counters of one endpoint (shared with the fabric so
/// totals survive the endpoint's move into its rank thread).
#[derive(Debug, Default)]
pub struct CommStats {
    /// Messages sent.
    pub messages: AtomicU64,
    /// Payload bytes sent.
    pub bytes: AtomicU64,
}

impl CommStats {
    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        // ordering: telemetry read; exactness is only needed after the
        // cluster scope joins, which already synchronizes.
        self.messages.load(Ordering::Relaxed)
    }

    /// Payload bytes sent so far.
    pub fn bytes(&self) -> u64 {
        // ordering: telemetry read; the scope join provides the final
        // happens-before edge.
        self.bytes.load(Ordering::Relaxed)
    }
}

/// One rank's handle onto the fabric.
pub struct Endpoint {
    rank: usize,
    size: usize,
    /// `tx[to]` sends to rank `to`.
    tx: Vec<Sender<Bytes>>,
    /// `rx[from]` receives from rank `from`.
    rx: Vec<Receiver<Bytes>>,
    stats: Arc<CommStats>,
    /// Armed only on fabrics built with [`Fabric::with_faults`]; an
    /// unarmed injector is a zero-cost pass-through.
    faults: FaultInjector,
    /// `telem[to]` is rank `to`'s telemetry inbox, shared across all
    /// endpoints. `TELEM` frames are diverted here at send time, never
    /// entering the protocol channels (see
    /// [`Transport::drain_telemetry`](crate::transport::Transport::drain_telemetry)).
    telem: Vec<Arc<Mutex<VecDeque<Bytes>>>>,
}

impl Endpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the fabric.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` to `to` (never blocks; buffering is unbounded).
    ///
    /// With an armed fault injector the message may be dropped (counted
    /// but never enqueued) or delayed (enqueued after a sleep, so
    /// per-channel ordering is preserved), and a send to a crashed peer
    /// is silently discarded. On a fault-free fabric a dropped peer is a
    /// logic error and panics.
    ///
    /// # Panics
    /// Panics if `to` is out of range, or — on a fault-free fabric only —
    /// if the peer endpoint was dropped.
    pub fn send(&self, to: usize, payload: Bytes) {
        assert!(to < self.size, "rank {to} out of range");
        if crate::live::is_telem(&payload) {
            // Telemetry is out-of-band: skip the traffic counters and the
            // message-level fault injector (so fault-plan `nth` indices
            // are identical with telemetry on or off) and park the frame
            // in the target's telemetry inbox.
            self.telem[to]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(payload);
            return;
        }
        // ordering: pure counters — nothing is published through them;
        // the channel send below carries all data synchronization.
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        let n = payload.len() as u64;
        // ordering: same telemetry argument as the message counter above.
        self.stats.bytes.fetch_add(n, Ordering::Relaxed);
        match self.faults.on_message(self.rank, to) {
            MessageAction::Drop => return,
            MessageAction::Delay(pause) => std::thread::sleep(pause),
            MessageAction::Deliver => {}
        }
        if self.faults.is_armed() {
            // A crashed peer dropped its receiver; model the datagram
            // semantics of a send to a dead host.
            let _ = self.tx[to].send(payload);
        } else {
            self.tx[to].send(payload).expect("peer endpoint dropped");
        }
    }

    /// Block until a message from `from` arrives.
    ///
    /// # Panics
    /// Panics if `from` is out of range or the peer endpoint was dropped
    /// without sending.
    pub fn recv(&self, from: usize) -> Bytes {
        assert!(from < self.size, "rank {from} out of range");
        self.rx[from]
            .recv()
            .expect("peer endpoint dropped before sending")
    }

    /// Wait at most `timeout` for a message from `from`.
    ///
    /// Returns [`RecvTimeoutError::Disconnected`] once the peer's
    /// endpoint has been dropped and its buffered messages are drained —
    /// which is how a survivor detects a crashed rank without hanging —
    /// and [`RecvTimeoutError::Timeout`] when the peer is (presumed)
    /// alive but silent.
    ///
    /// # Panics
    /// Panics if `from` is out of range.
    pub fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Bytes, RecvTimeoutError> {
        assert!(from < self.size, "rank {from} out of range");
        self.rx[from].recv_timeout(timeout)
    }

    /// The fault injector this endpoint consults on every send.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Ring shift: send `payload` to `(rank + 1) % size`, receive from
    /// `(rank + size − 1) % size`. The building block of the block
    /// rotation.
    pub fn ring_shift(&self, payload: Bytes) -> Bytes {
        if self.size == 1 {
            return payload;
        }
        let next = (self.rank + 1) % self.size;
        let prev = (self.rank + self.size - 1) % self.size;
        self.send(next, payload);
        self.recv(prev)
    }

    /// Barrier: no rank leaves before every rank has entered.
    /// Implemented as gather-to-0 + broadcast (2(P−1) messages).
    pub fn barrier(&self) {
        if self.size == 1 {
            return;
        }
        if self.rank == 0 {
            for from in 1..self.size {
                let _ = self.recv(from);
            }
            for to in 1..self.size {
                self.send(to, Bytes::new());
            }
        } else {
            self.send(0, Bytes::new());
            let _ = self.recv(0);
        }
    }

    /// Broadcast from `root`: the root's payload is returned on every
    /// rank.
    pub fn broadcast(&self, root: usize, payload: Option<Bytes>) -> Bytes {
        assert!(root < self.size, "root {root} out of range");
        if self.rank == root {
            let data = payload.expect("root must supply the broadcast payload");
            for to in 0..self.size {
                if to != root {
                    self.send(to, data.clone());
                }
            }
            data
        } else {
            self.recv(root)
        }
    }

    /// Gather to `root`: returns `Some(vec)` (indexed by rank, including
    /// the root's own contribution) on the root, `None` elsewhere.
    pub fn gather(&self, root: usize, payload: Bytes) -> Option<Vec<Bytes>> {
        assert!(root < self.size, "root {root} out of range");
        if self.rank == root {
            let mut out = vec![Bytes::new(); self.size];
            out[root] = payload;
            for (from, slot) in out.iter_mut().enumerate() {
                if from != root {
                    *slot = self.recv(from);
                }
            }
            Some(out)
        } else {
            self.send(root, payload);
            None
        }
    }

    /// Shared traffic counters of this endpoint.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Drain every `TELEM` frame other ranks have parked for this rank.
    pub fn drain_telemetry(&self) -> Vec<Bytes> {
        let mut inbox = self.telem[self.rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        inbox.drain(..).collect()
    }
}

impl crate::transport::Transport for Endpoint {
    fn rank(&self) -> usize {
        Endpoint::rank(self)
    }

    fn size(&self) -> usize {
        Endpoint::size(self)
    }

    fn send(&self, to: usize, payload: Bytes) {
        Endpoint::send(self, to, payload);
    }

    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Bytes, RecvTimeoutError> {
        Endpoint::recv_timeout(self, from, timeout)
    }

    fn faults(&self) -> &FaultInjector {
        Endpoint::faults(self)
    }

    fn messages_sent(&self) -> u64 {
        self.stats.messages()
    }

    fn bytes_sent(&self) -> u64 {
        self.stats.bytes()
    }

    fn drain_telemetry(&self) -> Vec<Bytes> {
        Endpoint::drain_telemetry(self)
    }
}

/// Builder for a `P`-rank fabric.
pub struct Fabric {
    endpoints: Vec<Endpoint>,
    stats: Vec<Arc<CommStats>>,
}

impl Fabric {
    /// Build a fully connected fabric of `size` ranks.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        Self::with_faults(size, FaultInjector::none())
    }

    /// Build a fabric whose endpoints consult `faults` on every send and
    /// tolerate sends to crashed peers. With `FaultInjector::none()` this
    /// is exactly [`Fabric::new`].
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn with_faults(size: usize, faults: FaultInjector) -> Self {
        assert!(size >= 1, "need at least one rank");
        // channels[from][to]
        let mut senders: Vec<Vec<Option<Sender<Bytes>>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        let mut receivers: Vec<Vec<Option<Receiver<Bytes>>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        for from in 0..size {
            for to in 0..size {
                let (tx, rx) = unbounded();
                senders[from][to] = Some(tx);
                // rx lives at the receiving endpoint, indexed by sender.
                receivers[to][from] = Some(rx);
            }
        }
        let stats: Vec<Arc<CommStats>> =
            (0..size).map(|_| Arc::new(CommStats::default())).collect();
        let telem: Vec<Arc<Mutex<VecDeque<Bytes>>>> = (0..size)
            .map(|_| Arc::new(Mutex::new(VecDeque::new())))
            .collect();
        let endpoints = senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| Endpoint {
                rank,
                size,
                tx: tx_row
                    .into_iter()
                    .map(|t| t.expect("wiring loop fills every slot"))
                    .collect(),
                rx: rx_row
                    .into_iter()
                    .map(|r| r.expect("wiring loop fills every slot"))
                    .collect(),
                stats: Arc::clone(&stats[rank]),
                faults: faults.clone(),
                telem: telem.clone(),
            })
            .collect();
        Self { endpoints, stats }
    }

    /// Take the endpoints (one per rank, in rank order).
    pub fn into_endpoints(self) -> Vec<Endpoint> {
        self.endpoints
    }

    /// Shared traffic counters, indexed by rank (clone before
    /// `into_endpoints` if totals are needed after the run).
    pub fn stats_handles(&self) -> Vec<Arc<CommStats>> {
        self.stats.clone()
    }
}

/// Run `body` on `size` ranks (scoped threads), returning each rank's
/// output in rank order. Panics in any rank propagate.
pub fn run_ranks<T, F>(size: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Sync,
{
    run_ranks_on(Fabric::new(size), body)
}

/// Like [`run_ranks`], but over a caller-built fabric (e.g. one armed
/// with a [`FaultInjector`] via [`Fabric::with_faults`]).
pub fn run_ranks_on<T, F>(fabric: Fabric, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Sync,
{
    let endpoints = fabric.into_endpoints();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                let body = &body;
                scope.spawn(move |_| body(ep))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
    .expect("cluster scope failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_is_ordered_and_addressed() {
        let outputs = run_ranks(3, |ep| {
            // Every rank sends two tagged messages to every other rank.
            for to in 0..ep.size() {
                if to != ep.rank() {
                    ep.send(to, Bytes::from(vec![ep.rank() as u8, 1]));
                    ep.send(to, Bytes::from(vec![ep.rank() as u8, 2]));
                }
            }
            let mut seen = Vec::new();
            for from in 0..ep.size() {
                if from != ep.rank() {
                    let a = ep.recv(from);
                    let b = ep.recv(from);
                    assert_eq!(a[0] as usize, from, "message mis-addressed");
                    assert_eq!((a[1], b[1]), (1, 2), "ordering violated");
                    seen.push(from);
                }
            }
            seen.len()
        });
        assert_eq!(outputs, vec![2, 2, 2]);
    }

    #[test]
    fn ring_shift_rotates_blocks() {
        let outputs = run_ranks(4, |ep| {
            let mut block = Bytes::from(vec![ep.rank() as u8]);
            let mut seen = vec![block[0]];
            for _ in 0..ep.size() - 1 {
                block = ep.ring_shift(block);
                seen.push(block[0]);
            }
            seen
        });
        for (rank, seen) in outputs.iter().enumerate() {
            // Rank r sees blocks r, r-1, r-2, … (mod P).
            for (d, &b) in seen.iter().enumerate() {
                assert_eq!(b as usize, (rank + 4 - d) % 4, "rank {rank} round {d}");
            }
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "rank {rank} must see every block");
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let outputs = run_ranks(5, |ep| {
            let payload = if ep.rank() == 2 {
                Some(Bytes::from_static(b"hello"))
            } else {
                None
            };
            ep.broadcast(2, payload)
        });
        for out in outputs {
            assert_eq!(&out[..], b"hello");
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let outputs = run_ranks(4, |ep| {
            ep.gather(0, Bytes::from(vec![ep.rank() as u8 * 10]))
        });
        let root = outputs[0].as_ref().expect("root gets the gather");
        let values: Vec<u8> = root.iter().map(|b| b[0]).collect();
        assert_eq!(values, vec![0, 10, 20, 30]);
        assert!(outputs[1].is_none() && outputs[2].is_none() && outputs[3].is_none());
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        run_ranks(6, |ep| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ep.barrier();
            // After the barrier every rank must observe all six arrivals.
            assert_eq!(phase1.load(Ordering::SeqCst), 6);
        });
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let out = run_ranks(1, |ep| {
            ep.barrier();
            let b = ep.ring_shift(Bytes::from_static(b"x"));
            let g = ep.gather(0, b.clone()).unwrap();
            assert_eq!(g.len(), 1);
            ep.broadcast(0, Some(b)).len()
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn dead_peer_yields_timeout_error_not_a_hang() {
        // Rank 1 crashes (drops its endpoint) without sending; rank 0's
        // bounded receive must report the death instead of blocking
        // forever.
        let outputs = run_ranks(2, |ep| {
            if ep.rank() == 0 {
                let err = ep
                    .recv_timeout(1, Duration::from_secs(5))
                    .expect_err("dead peer must surface as an error");
                // Dropping the endpoint closes the channel, so the error
                // is Disconnected (near-instant), not a 5 s timeout.
                assert_eq!(err, RecvTimeoutError::Disconnected);
                true
            } else {
                drop(ep); // simulated crash
                false
            }
        });
        assert_eq!(outputs, vec![true, false]);
    }

    #[test]
    fn silent_but_live_peer_yields_timeout() {
        let fabric = Fabric::new(2);
        let mut eps = fabric.into_endpoints();
        let e1 = eps.pop().expect("two endpoints");
        let e0 = eps.pop().expect("two endpoints");
        // e1 is alive (not dropped) but never sends.
        let err = e0
            .recv_timeout(1, Duration::from_millis(20))
            .expect_err("silence must time out");
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(e1);
    }

    #[test]
    fn armed_fabric_drops_and_tolerates_dead_peers() {
        let plan = gnet_fault::FaultPlan::parse("seed=1;drop(from=0,to=1,nth=0)")
            .expect("literal plan parses");
        let injector = FaultInjector::from_plan(&plan);
        let fabric = Fabric::with_faults(2, injector.clone());
        let mut eps = fabric.into_endpoints();
        let e1 = eps.pop().expect("two endpoints");
        let e0 = eps.pop().expect("two endpoints");
        // First message on the 0→1 edge is dropped, second delivered.
        e0.send(1, Bytes::from_static(b"lost"));
        e0.send(1, Bytes::from_static(b"kept"));
        let got = e1
            .recv_timeout(0, Duration::from_secs(5))
            .expect("second message survives");
        assert_eq!(&got[..], b"kept");
        assert_eq!(injector.faults_fired(), 1);
        // Sends to a crashed peer are discarded, not a panic.
        drop(e1);
        e0.send(1, Bytes::from_static(b"into the void"));
    }

    #[test]
    fn traffic_is_accounted() {
        let fabric = Fabric::new(2);
        let stats = fabric.stats_handles();
        let eps = fabric.into_endpoints();
        crossbeam::thread::scope(|scope| {
            let mut it = eps.into_iter();
            let e0 = it.next().unwrap();
            let e1 = it.next().unwrap();
            scope.spawn(move |_| {
                e0.send(1, Bytes::from(vec![0u8; 100]));
            });
            scope.spawn(move |_| {
                let _ = e1.recv(0);
            });
        })
        .unwrap();
        assert_eq!(stats[0].messages(), 1);
        assert_eq!(stats[0].bytes(), 100);
        assert_eq!(stats[1].messages(), 0);
    }
}
