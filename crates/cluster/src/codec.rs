//! Wire format for blocks of prepared genes.
//!
//! The distributed algorithm ships each rank's block of sparse B-spline
//! weight matrices around the ring. The format is a length-prefixed
//! little-endian layout:
//!
//! ```text
//! u32 gene_count | u32 order | u32 bins | u32 samples
//! per gene: u32 global_index | f64 h_marginal
//!           samples × u16 first_bin | samples·order × f32 weights
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gnet_bspline::SparseWeights;
use gnet_mi::PreparedGene;

/// A block of prepared genes with their global indices.
#[derive(Clone, Debug)]
pub struct GeneBlock {
    /// Global gene indices, parallel to `genes`.
    pub indices: Vec<u32>,
    /// The prepared genes.
    pub genes: Vec<PreparedGene>,
}

impl GeneBlock {
    /// Number of genes in the block.
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Is the block empty?
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }
}

/// Serialize a block.
///
/// # Panics
/// Panics on an empty block or mismatched index count (blocks of zero
/// genes never travel in the algorithm).
pub fn encode_block(block: &GeneBlock) -> Bytes {
    assert!(!block.is_empty(), "empty blocks never travel");
    assert_eq!(block.indices.len(), block.genes.len(), "one index per gene");
    let first = &block.genes[0].sparse;
    let (order, bins, samples) = (first.order(), first.bins(), first.samples());

    let per_gene = 4 + 8 + samples * 2 + samples * order * 4;
    let mut buf = BytesMut::with_capacity(16 + block.len() * per_gene);
    buf.put_u32_le(block.len() as u32);
    buf.put_u32_le(order as u32);
    buf.put_u32_le(bins as u32);
    buf.put_u32_le(samples as u32);
    for (idx, gene) in block.indices.iter().zip(&block.genes) {
        let sw = &gene.sparse;
        assert_eq!(sw.order(), order, "heterogeneous block");
        assert_eq!(sw.samples(), samples, "heterogeneous block");
        buf.put_u32_le(*idx);
        buf.put_f64_le(gene.h_marginal);
        for &fb in sw.first_bins_flat() {
            buf.put_u16_le(fb);
        }
        for &w in sw.weights_flat() {
            buf.put_f32_le(w);
        }
    }
    buf.freeze()
}

/// Deserialize a block.
///
/// # Panics
/// Panics on a malformed payload (the fabric is lossless, so corruption
/// here is a logic error, not an I/O condition).
pub fn decode_block(mut bytes: Bytes) -> GeneBlock {
    let count = bytes.get_u32_le() as usize;
    let order = bytes.get_u32_le() as usize;
    let bins = bytes.get_u32_le() as usize;
    let samples = bytes.get_u32_le() as usize;
    let mut indices = Vec::with_capacity(count);
    let mut genes = Vec::with_capacity(count);
    for _ in 0..count {
        indices.push(bytes.get_u32_le());
        let h_marginal = bytes.get_f64_le();
        let mut first_bin = Vec::with_capacity(samples);
        for _ in 0..samples {
            first_bin.push(bytes.get_u16_le());
        }
        let mut weights = Vec::with_capacity(samples * order);
        for _ in 0..samples * order {
            weights.push(bytes.get_f32_le());
        }
        let sparse = SparseWeights::from_raw_parts(order, bins, samples, first_bin, weights);
        genes.push(PreparedGene { sparse, h_marginal });
    }
    assert!(!bytes.has_remaining(), "trailing bytes in gene block");
    GeneBlock { indices, genes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_bspline::BsplineBasis;
    use gnet_expr::synth;
    use gnet_mi::prepare_gene;

    fn sample_block(genes: usize, samples: usize) -> GeneBlock {
        let basis = BsplineBasis::tinge_default();
        let m = synth::independent_gaussian(genes, samples, 7);
        GeneBlock {
            indices: (100..100 + genes as u32).collect(),
            genes: (0..genes)
                .map(|g| prepare_gene(m.gene(g), &basis))
                .collect(),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let block = sample_block(5, 37);
        let decoded = decode_block(encode_block(&block));
        assert_eq!(decoded.indices, block.indices);
        assert_eq!(decoded.len(), 5);
        for (a, b) in decoded.genes.iter().zip(&block.genes) {
            assert_eq!(a.sparse, b.sparse);
            assert_eq!(a.h_marginal, b.h_marginal);
        }
    }

    #[test]
    fn encoded_size_is_as_documented() {
        let block = sample_block(3, 20);
        let bytes = encode_block(&block);
        let per_gene = 4 + 8 + 20 * 2 + 20 * 3 * 4;
        assert_eq!(bytes.len(), 16 + 3 * per_gene);
    }

    #[test]
    #[should_panic(expected = "empty blocks")]
    fn empty_block_rejected() {
        let block = GeneBlock {
            indices: vec![],
            genes: vec![],
        };
        let _ = encode_block(&block);
    }

    #[test]
    #[should_panic(expected = "trailing bytes")]
    fn trailing_garbage_detected() {
        let block = sample_block(1, 8);
        let mut raw = bytes::BytesMut::from(&encode_block(&block)[..]);
        raw.extend_from_slice(&[0u8; 3]);
        let _ = decode_block(raw.freeze());
    }
}
