//! Wire format for blocks of prepared genes.
//!
//! The distributed algorithm ships each rank's block of sparse B-spline
//! weight matrices around the ring. The format is a length-prefixed
//! little-endian layout:
//!
//! ```text
//! u32 gene_count | u32 order | u32 bins | u32 samples
//! per gene: u32 global_index | f64 h_marginal
//!           samples × u16 first_bin | samples·order × f32 weights
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gnet_bspline::{SparseWeights, MAX_ORDER};
use gnet_mi::PreparedGene;
use std::fmt;

/// A block of prepared genes with their global indices.
#[derive(Clone, Debug)]
pub struct GeneBlock {
    /// Global gene indices, parallel to `genes`.
    pub indices: Vec<u32>,
    /// The prepared genes.
    pub genes: Vec<PreparedGene>,
}

impl GeneBlock {
    /// Number of genes in the block.
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Is the block empty?
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }
}

/// Serialize a block.
///
/// # Panics
/// Panics on an empty block or mismatched index count (blocks of zero
/// genes never travel in the algorithm).
pub fn encode_block(block: &GeneBlock) -> Bytes {
    assert!(!block.is_empty(), "empty blocks never travel");
    assert_eq!(block.indices.len(), block.genes.len(), "one index per gene");
    let first = &block.genes[0].sparse;
    let (order, bins, samples) = (first.order(), first.bins(), first.samples());

    let per_gene = 4 + 8 + samples * 2 + samples * order * 4;
    let mut buf = BytesMut::with_capacity(16 + block.len() * per_gene);
    buf.put_u32_le(block.len() as u32);
    buf.put_u32_le(order as u32);
    buf.put_u32_le(bins as u32);
    buf.put_u32_le(samples as u32);
    for (idx, gene) in block.indices.iter().zip(&block.genes) {
        let sw = &gene.sparse;
        assert_eq!(sw.order(), order, "heterogeneous block");
        assert_eq!(sw.samples(), samples, "heterogeneous block");
        buf.put_u32_le(*idx);
        buf.put_f64_le(gene.h_marginal);
        for &fb in sw.first_bins_flat() {
            buf.put_u16_le(fb);
        }
        for &w in sw.weights_flat() {
            buf.put_f32_le(w);
        }
    }
    buf.freeze()
}

/// Why a byte payload is not a valid gene block.
///
/// Every variant is a *data* condition, never a panic: a fault-injected
/// or truncated message is an expected runtime event in the failure-aware
/// driver, which treats an undecodable block like a dropped one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Payload shorter than the 16-byte header.
    TruncatedHeader {
        /// Bytes actually present.
        len: usize,
    },
    /// Header field is structurally impossible.
    BadHeader {
        /// Which constraint failed.
        reason: String,
    },
    /// Declared gene count does not match the bytes present.
    LengthMismatch {
        /// Bytes the header implies the body needs.
        expected: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// A sample's first-bin index overruns the spline grid.
    BinOverrun {
        /// 0-based gene position within the block.
        gene: usize,
        /// The offending first-bin value.
        first_bin: u16,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TruncatedHeader { len } => {
                write!(f, "gene block truncated: {len} bytes, header needs 16")
            }
            Self::BadHeader { reason } => write!(f, "gene block header invalid: {reason}"),
            Self::LengthMismatch { expected, actual } => write!(
                f,
                "gene block length mismatch: header implies {expected} body bytes, found {actual}"
            ),
            Self::BinOverrun { gene, first_bin } => write!(
                f,
                "gene {gene} carries first-bin index {first_bin} overrunning the spline grid"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Deserialize a block, validating structure before every read.
///
/// The in-process fabric is lossless, but the failure-aware driver must
/// survive whatever bytes arrive (chaos plans corrupt and truncate
/// payloads deliberately), so *every* malformed input — truncated,
/// oversized, garbage header, out-of-range bin index — comes back as a
/// typed [`CodecError`] instead of a `bytes::Buf` underflow panic.
///
/// # Errors
/// See [`CodecError`].
pub fn decode_block(mut bytes: Bytes) -> Result<GeneBlock, CodecError> {
    if bytes.remaining() < 16 {
        return Err(CodecError::TruncatedHeader {
            len: bytes.remaining(),
        });
    }
    let count = bytes.get_u32_le() as usize;
    let order = bytes.get_u32_le() as usize;
    let bins = bytes.get_u32_le() as usize;
    let samples = bytes.get_u32_le() as usize;
    if count == 0 {
        return Err(CodecError::BadHeader {
            reason: "zero genes (empty blocks never travel)".into(),
        });
    }
    if !(1..=MAX_ORDER).contains(&order) {
        return Err(CodecError::BadHeader {
            reason: format!("spline order {order} outside 1..={MAX_ORDER}"),
        });
    }
    if bins < order {
        return Err(CodecError::BadHeader {
            reason: format!("bins {bins} below spline order {order}"),
        });
    }
    if samples == 0 {
        return Err(CodecError::BadHeader {
            reason: "zero samples".into(),
        });
    }
    // One exact size check makes every later read infallible and bounds
    // the allocations below by the actual payload size (a garbage header
    // cannot demand more than the bytes it arrived with).
    let per_gene = samples
        .checked_mul(order)
        .and_then(|so| so.checked_mul(4))
        .and_then(|w| w.checked_add(samples.checked_mul(2)?))
        .and_then(|body| body.checked_add(4 + 8));
    let expected = per_gene.and_then(|pg| pg.checked_mul(count));
    match expected {
        Some(expected) if expected == bytes.remaining() => {}
        _ => {
            return Err(CodecError::LengthMismatch {
                expected: expected.unwrap_or(usize::MAX),
                actual: bytes.remaining(),
            })
        }
    }
    let mut indices = Vec::with_capacity(count);
    let mut genes = Vec::with_capacity(count);
    for gene in 0..count {
        indices.push(bytes.get_u32_le());
        let h_marginal = bytes.get_f64_le();
        let mut first_bin = Vec::with_capacity(samples);
        for _ in 0..samples {
            let fb = bytes.get_u16_le();
            if fb as usize + order > bins {
                return Err(CodecError::BinOverrun {
                    gene,
                    first_bin: fb,
                });
            }
            first_bin.push(fb);
        }
        let mut weights = Vec::with_capacity(samples * order);
        for _ in 0..samples * order {
            weights.push(bytes.get_f32_le());
        }
        // The checks above mirror `from_raw_parts`' asserts exactly, so
        // this construction cannot panic on any input.
        let sparse = SparseWeights::from_raw_parts(order, bins, samples, first_bin, weights);
        genes.push(PreparedGene { sparse, h_marginal });
    }
    Ok(GeneBlock { indices, genes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_bspline::BsplineBasis;
    use gnet_expr::synth;
    use gnet_mi::prepare_gene;

    fn sample_block(genes: usize, samples: usize) -> GeneBlock {
        let basis = BsplineBasis::tinge_default();
        let m = synth::independent_gaussian(genes, samples, 7);
        GeneBlock {
            indices: (100..100 + genes as u32).collect(),
            genes: (0..genes)
                .map(|g| prepare_gene(m.gene(g), &basis))
                .collect(),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let block = sample_block(5, 37);
        let decoded = decode_block(encode_block(&block)).expect("well-formed block decodes");
        assert_eq!(decoded.indices, block.indices);
        assert_eq!(decoded.len(), 5);
        for (a, b) in decoded.genes.iter().zip(&block.genes) {
            assert_eq!(a.sparse, b.sparse);
            assert_eq!(a.h_marginal, b.h_marginal);
        }
    }

    #[test]
    fn encoded_size_is_as_documented() {
        let block = sample_block(3, 20);
        let bytes = encode_block(&block);
        let per_gene = 4 + 8 + 20 * 2 + 20 * 3 * 4;
        assert_eq!(bytes.len(), 16 + 3 * per_gene);
    }

    #[test]
    #[should_panic(expected = "empty blocks")]
    fn empty_block_rejected() {
        let block = GeneBlock {
            indices: vec![],
            genes: vec![],
        };
        let _ = encode_block(&block);
    }

    #[test]
    fn trailing_garbage_is_a_typed_error() {
        let block = sample_block(1, 8);
        let mut raw = bytes::BytesMut::from(&encode_block(&block)[..]);
        raw.extend_from_slice(&[0u8; 3]);
        assert!(matches!(
            decode_block(raw.freeze()),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let full = encode_block(&sample_block(3, 20));
        for cut in 0..full.len() {
            let err = decode_block(full.slice(0..cut)).expect_err("truncation must be rejected");
            match cut {
                0..=15 => assert!(
                    matches!(err, CodecError::TruncatedHeader { .. }),
                    "cut {cut}"
                ),
                _ => assert!(
                    matches!(err, CodecError::LengthMismatch { .. }),
                    "cut {cut}"
                ),
            }
        }
    }

    #[test]
    fn oversized_declared_count_is_rejected_without_allocating() {
        let full = encode_block(&sample_block(2, 10));
        let mut raw = bytes::BytesMut::from(&full[..]);
        // Claim u32::MAX genes; the size product overflows/mismatches and
        // must be rejected before any allocation sized from the header.
        raw[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_block(raw.freeze()),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn garbage_headers_are_rejected() {
        let full = encode_block(&sample_block(1, 6));
        for (offset, value, what) in [
            (0u32, 0u32, "zero genes"), // count = 0
            (4, 0, "order zero"),       // order = 0
            (4, 200, "order huge"),     // order > MAX_ORDER
            (8, 1, "bins below order"), // bins < order (order is 3)
            (12, 0, "zero samples"),    // samples = 0
        ] {
            let mut raw = bytes::BytesMut::from(&full[..]);
            let at = offset as usize;
            raw[at..at + 4].copy_from_slice(&value.to_le_bytes());
            let err = decode_block(raw.freeze()).expect_err(what);
            assert!(
                matches!(
                    err,
                    CodecError::BadHeader { .. } | CodecError::LengthMismatch { .. }
                ),
                "{what}: {err}"
            );
        }
    }

    #[test]
    fn out_of_range_first_bin_is_rejected() {
        let block = sample_block(1, 8);
        let full = encode_block(&block);
        let mut raw = bytes::BytesMut::from(&full[..]);
        // First first-bin field sits right after the header and the
        // gene's u32 index + f64 marginal entropy.
        let at = 16 + 4 + 8;
        raw[at..at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            decode_block(raw.freeze()),
            Err(CodecError::BinOverrun { gene: 0, .. })
        ));
    }

    #[test]
    fn fuzzed_mutations_never_panic() {
        // Deterministic fuzz: flip bytes, splice lengths, and bit-flip
        // across the whole encoding. Decode must return Ok or a typed
        // error on every mutant — any panic fails the test.
        let full = encode_block(&sample_block(4, 25));
        let mut rng = gnet_fault::SplitMix64::new(0xFEED_FACE);
        for _ in 0..2_000 {
            let mut mutant = full.to_vec();
            match rng.below(4) {
                0 => {
                    // cast-ok: below(len) fits usize.
                    let at = rng.below(mutant.len() as u64) as usize;
                    // cast-ok: below(256) fits u8.
                    mutant[at] = rng.below(256) as u8;
                }
                1 => {
                    // cast-ok: below(len+1) fits usize.
                    let cut = rng.below(mutant.len() as u64 + 1) as usize;
                    mutant.truncate(cut);
                }
                2 => {
                    // cast-ok: below(64) fits usize.
                    let extra = rng.below(64) as usize;
                    // cast-ok: below(256) fits u8.
                    mutant.extend(std::iter::repeat_with(|| rng.below(256) as u8).take(extra));
                }
                _ => {
                    // cast-ok: below(len) fits usize.
                    let at = rng.below(mutant.len() as u64) as usize;
                    // cast-ok: below(8) fits u32 shift amount.
                    mutant[at] ^= 1 << (rng.below(8) as u32);
                }
            }
            let _ = decode_block(Bytes::from(mutant));
        }
    }
}
