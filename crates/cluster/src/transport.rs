//! The transport abstraction the ring protocol driver runs over.
//!
//! The distributed driver ([`crate::distributed`]) is written against
//! [`Transport`] — the minimal endpoint semantics the protocol machine
//! needs: addressed sends that never block, bounded per-peer receives
//! that distinguish *silence* from *death*, and the fault-injection and
//! traffic-accounting hooks the chaos and observability layers rely on.
//!
//! Two implementations exist:
//!
//! * [`crate::comm::Endpoint`] — the in-process channel fabric (one
//!   unbounded, ordered channel per directed rank pair). The historical
//!   transport; its behavior under this trait is byte-for-byte what it
//!   was before the trait existed.
//! * [`crate::tcp::TcpTransport`] — real sockets with length-prefixed
//!   frames, bounded dial retries with backoff + jitter, and graceful
//!   drain-then-FIN shutdown. Peer death surfaces through the same
//!   [`RecvTimeoutError::Disconnected`] the channel transport uses, so
//!   the census/heal/redistribute logic carries over unchanged.
//!
//! The contract both implementations honor (the properties the protocol
//! machine was model-checked under):
//!
//! 1. **Per-edge FIFO.** Frames from one sender arrive in send order.
//! 2. **Non-blocking sends.** `send` buffers without waiting for the
//!    receiver; a send to a dead peer is discarded, never an error the
//!    sender observes (datagram-to-a-dead-host semantics).
//! 3. **Bounded receives.** `recv_timeout` returns `Timeout` for a
//!    silent-but-alive peer and `Disconnected` once the peer is gone
//!    *and* its already-buffered frames are drained — buffered frames
//!    outlive their sender, so a crashing rank's last words still land.

use crate::comm::RecvTimeoutError;
use bytes::Bytes;
use gnet_fault::FaultInjector;
use std::time::Duration;

/// Ring endpoint semantics, object-safe so the driver can run over any
/// transport without monomorphizing the whole protocol interpreter.
///
/// `Send` (not `Sync`): a transport is owned by exactly one rank thread
/// for its whole life — the receive side is single-consumer by design,
/// matching the one-protocol-loop-per-rank execution model.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Number of ranks in the fabric.
    fn size(&self) -> usize;

    /// Send `payload` to rank `to` without blocking (unbounded
    /// buffering). Sends to a dead peer are silently discarded.
    ///
    /// # Panics
    /// Panics if `to` is out of range. The channel transport additionally
    /// panics on a dead peer when no fault plan is armed (there, a
    /// dropped peer is a logic error worth crashing on).
    fn send(&self, to: usize, payload: Bytes);

    /// Wait at most `timeout` for a frame from rank `from`.
    ///
    /// `Timeout` means the peer is presumed alive but silent;
    /// `Disconnected` means the peer is gone and every frame it buffered
    /// has been drained.
    ///
    /// # Errors
    /// [`RecvTimeoutError`] as described above.
    ///
    /// # Panics
    /// Panics if `from` is out of range.
    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Bytes, RecvTimeoutError>;

    /// The fault injector consulted on this transport's sends.
    fn faults(&self) -> &FaultInjector;

    /// Messages sent so far through this endpoint.
    fn messages_sent(&self) -> u64;

    /// Payload bytes sent so far through this endpoint.
    fn bytes_sent(&self) -> u64;

    /// Drain every telemetry (`TELEM`) frame buffered for this rank.
    ///
    /// Telemetry rides the same wire as protocol traffic but is
    /// **out-of-band**: implementations divert `TELEM` frames at the
    /// receive side so they never appear in `recv_timeout` (protocol
    /// receive order, and therefore results, are byte-identical with
    /// telemetry on or off), and sends of `TELEM` frames skip the
    /// message-level fault injector and message counters so fault-plan
    /// `nth` indices don't shift when telemetry is enabled. Transports
    /// that carry no telemetry return an empty vec (the default).
    fn drain_telemetry(&self) -> Vec<Bytes> {
        Vec::new()
    }

    /// Frames currently queued for sending but not yet handed to the OS,
    /// summed over peers. In-process transports (no real queue) report 0.
    fn send_queue_depth(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Fabric;

    #[test]
    fn endpoint_satisfies_the_trait_object_contract() {
        let mut eps = Fabric::new(2).into_endpoints();
        let e1 = eps.pop().expect("two endpoints");
        let e0 = eps.pop().expect("two endpoints");
        let t0: &dyn Transport = &e0;
        let t1: &dyn Transport = &e1;
        assert_eq!((t0.rank(), t0.size()), (0, 2));
        t0.send(1, Bytes::from_static(b"via trait"));
        let got = t1
            .recv_timeout(0, Duration::from_secs(5))
            .expect("frame delivered");
        assert_eq!(&got[..], b"via trait");
        assert_eq!(t0.messages_sent(), 1);
        assert_eq!(t0.bytes_sent(), 9);
        assert!(!t0.faults().is_armed());
    }
}
