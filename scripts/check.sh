#!/usr/bin/env bash
# Full local gate: formatting, clippy (workspace lints as errors), tests,
# the workspace's own static analyzer, and the scheduler determinism sweep.
# CI (.github/workflows/ci.yml) runs exactly these steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> gnet analyze --deny --deny-stale"
cargo run --release -p gnet-cli --bin gnet -- analyze --deny --deny-stale

echo "==> gnet analyze --protocol --self-check (quick bounds)"
cargo run --release -p gnet-cli --bin gnet -- analyze --protocol --self-check

echo "==> gnet analyze --concurrency (100 seeded runs)"
cargo run --release -p gnet-cli --bin gnet -- analyze --concurrency --runs 100

echo "==> all checks passed"
