//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a small self-describing data model in place of upstream serde: a value
//! serializes into a [`Content`] tree and deserializes back from one.
//! `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` stand-in and covers the shapes this workspace uses
//! (named-field structs and unit-variant enums). `serde_json` renders
//! `Content` to JSON text and back.
//!
//! This is NOT wire-compatible with upstream serde in general; it is
//! JSON-compatible for the shapes used here (structs as objects, unit
//! enum variants as strings, `Duration` as `{secs, nanos}`).

#![forbid(unsafe_code)]

use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative values only land here).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (`Vec`, tuples).
    Seq(Vec<Content>),
    /// Key-ordered map (structs); insertion order preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Human-readable kind name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "unsigned integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(message: impl std::fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Content`] tree.
pub trait Serialize {
    /// Convert `self` into its serialized form.
    fn serialize(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value.
    ///
    /// # Errors
    /// Errors when the content shape does not match `Self`.
    fn deserialize(content: &Content) -> Result<Self, Error>;
}

/// Look up a struct field by name in a serialized map.
///
/// # Errors
/// Errors when `content` is not a map or lacks `name`.
pub fn field<'c>(content: &'c Content, name: &str) -> Result<&'c Content, Error> {
    match content {
        Content::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
        other => Err(Error::custom(format!(
            "expected map, found {}",
            other.kind()
        ))),
    }
}

fn mismatch<T>(expected: &str, found: &Content) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, found {}",
        found.kind()
    )))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => mismatch("bool", other),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(u64::from_param(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let wide = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| Error::custom("negative value for unsigned field"))?,
                    other => return mismatch("unsigned integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

/// Lossless widening helper (`u64::from` is not implemented for `usize`).
trait FromParam<T> {
    fn from_param(v: T) -> Self;
}

impl FromParam<u8> for u64 {
    fn from_param(v: u8) -> u64 {
        u64::from(v)
    }
}
impl FromParam<u16> for u64 {
    fn from_param(v: u16) -> u64 {
        u64::from(v)
    }
}
impl FromParam<u32> for u64 {
    fn from_param(v: u32) -> u64 {
        u64::from(v)
    }
}
impl FromParam<u64> for u64 {
    fn from_param(v: u64) -> u64 {
        v
    }
}
impl FromParam<usize> for u64 {
    fn from_param(v: usize) -> u64 {
        v as u64
    }
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let wide: i64 = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::custom("value exceeds i64 range"))?,
                    other => return mismatch("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => mismatch("float", other),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        // Widening is exact, so f32 -> f64 -> f32 roundtrips bitwise.
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    // Rounding back from the widened f64 is the intended (exact) inverse
    // of the Serialize impl above.
    #[allow(clippy::cast_possible_truncation)]
    fn deserialize(content: &Content) -> Result<Self, Error> {
        f64::deserialize(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => mismatch("string", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => mismatch("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match content {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    Content::Seq(items) => Err(Error::custom(format!(
                        "expected tuple of {LEN}, found sequence of {}", items.len()
                    ))),
                    other => mismatch("sequence", other),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Duration {
    fn serialize(&self) -> Content {
        Content::Map(vec![
            ("secs".to_owned(), Content::U64(self.as_secs())),
            (
                "nanos".to_owned(),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let secs = u64::deserialize(field(content, "secs")?)?;
        let nanos = u32::deserialize(field(content, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&u64::MAX.serialize()), Ok(u64::MAX));
        assert_eq!(i64::deserialize(&(-5i64).serialize()), Ok(-5));
        assert_eq!(f32::deserialize(&0.3f32.serialize()), Ok(0.3f32));
        assert_eq!(Option::<f64>::deserialize(&Content::Null), Ok(None));
        assert_eq!(
            Vec::<u32>::deserialize(&vec![1u32, 2, 3].serialize()),
            Ok(vec![1, 2, 3])
        );
        let t = (3u32, 4u32, 2.5f64);
        assert_eq!(<(u32, u32, f64)>::deserialize(&t.serialize()), Ok(t));
    }

    #[test]
    fn duration_roundtrips() {
        let d = Duration::new(12, 345_678_901);
        assert_eq!(Duration::deserialize(&d.serialize()), Ok(d));
    }

    #[test]
    fn field_lookup_reports_missing() {
        let m = Content::Map(vec![("a".to_owned(), Content::U64(1))]);
        assert!(field(&m, "a").is_ok());
        assert!(field(&m, "b").is_err());
    }
}
