//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and an empty registry, so
//! the workspace vendors the small slice of the `rand 0.8` API it actually
//! uses. The generator is xoshiro256** seeded through SplitMix64 — a
//! high-quality, deterministic, portable stream. The numeric streams are
//! NOT bit-compatible with upstream `rand`; nothing in this workspace
//! depends on upstream streams, only on determinism for a fixed seed.

#![forbid(unsafe_code)]

pub mod rngs;

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Core generator interface: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniform value of type `T` (see [`Standard`] coverage).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive numeric range).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their "standard" domain
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        usize::try_from(rng.next_u64() & (usize::MAX as u64)).unwrap_or(usize::MAX)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from this range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                // draw < span <= type range, so the cast is lossless.
                #[allow(clippy::cast_possible_truncation)]
                let offset = draw as $t;
                self.start + offset
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                #[allow(clippy::cast_possible_truncation)]
                let offset = draw as $t;
                lo + offset
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// SplitMix64 — used for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0.4f32..=1.0);
            assert!((0.4..=1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
