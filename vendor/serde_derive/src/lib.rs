//! Offline vendored stand-in for `serde_derive`.
//!
//! A syn-free derive implementation: the input item is parsed directly
//! from the `proc_macro` token stream. Exactly the shapes this workspace
//! uses are supported — non-generic structs with named fields, and
//! non-generic enums whose variants are all unit variants. Anything else
//! is a compile error naming the unsupported construct.
//!
//! Generated code targets the vendored `serde` stand-in: structs
//! serialize to `Content::Map` (declaration order), unit enum variants to
//! `Content::Str(variant_name)`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct or unit-variant enum.
///
/// # Panics
/// Panics (compile error) on unsupported shapes: generics, tuple/unit
/// structs, enum variants with payloads.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "Self::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let name = &item.name;
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` for a named-field struct or unit-variant
/// enum.
///
/// # Panics
/// Panics (compile error) on unsupported shapes: generics, tuple/unit
/// structs, enum variants with payloads.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(::serde::field(__content, \"{f}\")?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok(Self::{v})"))
                .collect();
            format!(
                "match __content {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {arms},\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected string for {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                arms = arms.join(",\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__content: &::serde::Content)\n\
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive generated invalid Deserialize impl")
}

enum Shape {
    /// Named fields, declaration order.
    Struct(Vec<String>),
    /// Unit variant names, declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive ({name})");
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive: only braced (named-field / unit-variant) items are supported \
             for {name}, found {other:?}"
        ),
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(body, &name)),
        "enum" => Shape::Enum(parse_enum_variants(body, &name)),
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consume any leading `#[...]` outer attributes (doc comments included).
fn skip_attributes(tokens: &mut TokenIter) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde_derive: malformed attribute, found {other:?}"),
        }
    }
}

/// Consume `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(tokens: &mut TokenIter) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_struct_fields(body: TokenStream, name: &str) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let field = match tree {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("serde_derive: expected field name in {name}, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive: {name} must use named fields \
                 (tuple/unit structs unsupported), found {other:?} after `{field}`"
            ),
        }
        fields.push(field);
        // Skip the type: everything up to a top-level comma. Generic
        // argument lists nest `<...>` with bare `,` inside, so track
        // angle-bracket depth; `->` never appears in field types here.
        let mut angle_depth = 0i32;
        for tree in tokens.by_ref() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    assert!(
        !fields.is_empty(),
        "serde_derive: {name} has no named fields"
    );
    fields
}

fn parse_enum_variants(body: TokenStream, name: &str) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let variant = match tree {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("serde_derive: expected variant name in {name}, found {other:?}"),
        };
        match tokens.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(other) => panic!(
                "serde_derive: enum {name} variant `{variant}` carries a payload \
                 ({other:?}); only unit variants are supported"
            ),
        }
    }
    assert!(!variants.is_empty(), "serde_derive: {name} has no variants");
    variants
}
