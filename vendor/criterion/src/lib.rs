//! Offline vendored stand-in for `criterion`.
//!
//! Provides the benchmarking surface the `gnet-bench` suites compile
//! against. Measurement is a deliberately simple wall-clock loop (warmup
//! plus fixed iteration batch, median-of-batches report) rather than
//! criterion's statistical machinery; benches remain runnable and their
//! relative ordering is meaningful, but confidence intervals and HTML
//! reports are out of scope. When the harness binary is invoked by
//! `cargo test` (`--test` flag), benchmarks are skipped entirely, exactly
//! like upstream criterion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Measure `routine`, retaining its output so the optimizer cannot
    /// delete the work.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warmup call, then timed batches.
        black_box(routine());
        let samples = 7usize;
        let iters = self.iters_per_sample.max(1);
        self.samples.clear();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters);
        }
        self.samples.sort();
    }

    fn median(&self) -> Option<Duration> {
        (!self.samples.is_empty()).then(|| self.samples[self.samples.len() / 2])
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Whether to actually run timing loops (false under `cargo test`).
    run: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness-less bench binaries with `--test`;
        // criterion's contract is to do nothing in that mode.
        let run = !std::env::args().any(|a| a == "--test");
        Self {
            run,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if !self.run {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        let Some(median) = bencher.median() else {
            println!("{label}: no samples");
            return;
        };
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.3e} elem/s)", n as f64 / median.as_secs_f64())
            }
            Throughput::Bytes(n) => {
                format!(" ({:.3e} B/s)", n as f64 / median.as_secs_f64())
            }
        });
        println!("{label}: median {median:?}{}", rate.unwrap_or_default());
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        self.criterion.run_one(&label, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        self.criterion
            .run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::default();
        b.iter(|| black_box(2u64 + 2));
        assert!(b.median().is_some());
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            run: false,
            sample_size: 10,
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .throughput(Throughput::Elements(10))
            .bench_function(BenchmarkId::from_parameter(1), |b| b.iter(|| 1u32))
            .bench_with_input(BenchmarkId::new("x", 2), &3u32, |b, &v| b.iter(|| v));
        group.finish();
    }
}
