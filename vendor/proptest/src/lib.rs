//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace uses:
//! `proptest! { #[test] fn f(x in strategy, y: Type) { … } }` blocks with
//! an optional `#![proptest_config(ProptestConfig::with_cases(N))]`
//! header, range and `collection::vec` strategies, `prop_map` /
//! `prop_flat_map` combinators, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Semantics versus upstream: cases are sampled from a fixed-seed
//! deterministic RNG (so failures reproduce), there is NO shrinking, and
//! `prop_assert*` failures panic immediately with the failing values'
//! Debug rendering. The default case count is 256.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod test_runner;

pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, Just, Strategy};
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { strategy: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut test_runner::TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut test_runner::TestRng) -> S2::Value {
        (self.f)(self.strategy.sample(rng)).sample(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                use rand::Rng as _;
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                use rand::Rng as _;
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a default "any value" strategy, used for bare `name: Type`
/// parameters in `proptest!` signatures.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                use rand::Rng as _;
                // Full-range draw, truncated to width.
                #[allow(clippy::cast_possible_truncation)]
                { rng.inner.gen::<u64>() as $t }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng as _;
        rng.inner.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng as _;
        rng.inner.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng as _;
        rng.inner.gen()
    }
}

/// Strategy wrapper over [`Arbitrary`] (`any::<T>()`).
pub struct Any<T>(core::marker::PhantomData<T>);

/// The `any::<T>()` strategy: arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub(crate) fn fresh_rng(case: u64) -> test_runner::TestRng {
    // Fixed base seed: deterministic runs, distinct stream per case.
    test_runner::TestRng {
        inner: StdRng::seed_from_u64(0x6e65_7470_726f_7000 ^ case),
    }
}

/// Drive one `proptest!`-generated test: `cases` iterations of `body`,
/// each with a fresh deterministic RNG.
pub fn run_cases(config: &test_runner::ProptestConfig, body: impl Fn(&mut test_runner::TestRng)) {
    for case in 0..config.cases {
        let mut rng = fresh_rng(u64::from(case));
        body(&mut rng);
    }
}

/// Property-test block. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    // Entry: optional config header.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            $crate::run_cases(&__config, |__rng| {
                $crate::proptest!(@bind __rng; $($params)*);
                $body
            });
        }
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr);) => {};
    // Parameter binding: `pat in strategy` or `name: Type`, comma-separated.
    (@bind $rng:ident; $pat:pat in $strategy:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strategy), $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $pat:pat in $strategy:expr) => {
        let $pat = $crate::Strategy::sample(&($strategy), $rng);
    };
    (@bind $rng:ident; $param:ident : $ty:ty, $($rest:tt)*) => {
        let $param = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $param:ident : $ty:ty) => {
        let $param = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    (@bind $rng:ident;) => {};
    // Entry without config header.
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a property body (panics with the rendered condition).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($left, $right $(, $($fmt)*)?);
    };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {
        assert_ne!($left, $right $(, $($fmt)*)?);
    };
}

/// Discard the current case when its precondition does not hold.
///
/// Upstream proptest retries discarded cases; this stand-in simply skips
/// the case (the body closure returns early).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let strat = 0usize..100;
        let a = Strategy::sample(&strat, &mut crate::fresh_rng(3));
        let b = Strategy::sample(&strat, &mut crate::fresh_rng(3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_bare_types_bind(x in 1usize..10, flip: bool, y in 0.0f64..=1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assume!(flip || x >= 1);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let strat = (2usize..5).prop_flat_map(|n| {
            crate::collection::vec(0.0f32..1.0, n..n + 1).prop_map(move |v| (n, v))
        });
        let (n, v) = Strategy::sample(&strat, &mut crate::fresh_rng(1));
        assert_eq!(v.len(), n);
    }
}
