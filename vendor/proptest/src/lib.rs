//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace uses:
//! `proptest! { #[test] fn f(x in strategy, y: Type) { … } }` blocks with
//! an optional `#![proptest_config(ProptestConfig::with_cases(N))]`
//! header, range and `collection::vec` strategies, `prop_map` /
//! `prop_flat_map` combinators, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Semantics versus upstream: cases are sampled from a fixed-seed
//! deterministic RNG (so failures reproduce), there is NO shrinking, and
//! `prop_assert*` failures panic immediately with the failing values'
//! Debug rendering. The default case count is 256.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod test_runner;

pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, Just, Strategy};
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { strategy: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut test_runner::TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut test_runner::TestRng) -> S2::Value {
        (self.f)(self.strategy.sample(rng)).sample(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                use rand::Rng as _;
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                use rand::Rng as _;
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a default "any value" strategy, used for bare `name: Type`
/// parameters in `proptest!` signatures.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                use rand::Rng as _;
                // Full-range draw, truncated to width.
                #[allow(clippy::cast_possible_truncation)]
                { rng.inner.gen::<u64>() as $t }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng as _;
        rng.inner.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng as _;
        rng.inner.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng as _;
        rng.inner.gen()
    }
}

/// Strategy wrapper over [`Arbitrary`] (`any::<T>()`).
pub struct Any<T>(core::marker::PhantomData<T>);

/// The `any::<T>()` strategy: arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Fixed base seed: deterministic runs, distinct stream per case.
const BASE_SEED: u64 = 0x6e65_7470_726f_7000;

#[cfg(test)]
pub(crate) fn fresh_rng(case: u64) -> test_runner::TestRng {
    rng_for_seed(BASE_SEED ^ case)
}

fn rng_for_seed(seed: u64) -> test_runner::TestRng {
    test_runner::TestRng {
        inner: StdRng::seed_from_u64(seed),
    }
}

/// A `proptest-regressions/`-style seed file: `cc <seed>` lines, `#`
/// comments. Failing case seeds are appended and replayed first on the
/// next run (see [`test_runner::ProptestConfig::persistence`]).
struct Persistence {
    path: std::path::PathBuf,
}

impl Persistence {
    fn open(rel: &str) -> Self {
        // Cargo exports the *test target's* manifest dir into the test
        // process environment, so relative paths land next to the crate
        // under test, matching upstream's layout.
        let base = std::env::var_os("CARGO_MANIFEST_DIR")
            .map_or_else(|| std::path::PathBuf::from("."), std::path::PathBuf::from);
        Self {
            path: base.join(rel),
        }
    }

    fn seeds(&self) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| line.trim().strip_prefix("cc "))
            .filter_map(|rest| rest.split_whitespace().next())
            .filter_map(|token| token.parse::<u64>().ok())
            .collect()
    }

    fn record(&self, seed: u64) {
        if self.seeds().contains(&seed) {
            return;
        }
        if let Some(dir) = self.path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        use std::io::Write as _;
        let new_file = !self.path.exists();
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            if new_file {
                let _ = writeln!(
                    f,
                    "# Seeds of failing proptest cases. Replayed before fresh cases on\n\
                     # every run; commit this file so a found failure persists until\n\
                     # fixed. Format: `cc <seed>` per line."
                );
            }
            let _ = writeln!(f, "cc {seed}");
        }
    }
}

/// Drive one `proptest!`-generated test: persisted regression seeds
/// first, then `cases` fresh iterations of `body`, each with a fresh
/// deterministic RNG. A failing fresh case records its seed before the
/// panic propagates.
pub fn run_cases(config: &test_runner::ProptestConfig, body: impl Fn(&mut test_runner::TestRng)) {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    let store = config.persistence.map(Persistence::open);
    if let Some(store) = &store {
        // Persisted regressions run unguarded: if one still fails, the
        // test fails immediately with the original assertion message.
        for seed in store.seeds() {
            let mut rng = rng_for_seed(seed);
            body(&mut rng);
        }
    }
    for case in 0..config.cases {
        let seed = BASE_SEED ^ u64::from(case);
        match catch_unwind(AssertUnwindSafe(|| {
            let mut rng = rng_for_seed(seed);
            body(&mut rng);
        })) {
            Ok(()) => {}
            Err(payload) => {
                if let Some(store) = &store {
                    store.record(seed);
                }
                resume_unwind(payload);
            }
        }
    }
}

/// Property-test block. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    // Entry: optional config header.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            $crate::run_cases(&__config, |__rng| {
                $crate::proptest!(@bind __rng; $($params)*);
                $body
            });
        }
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr);) => {};
    // Parameter binding: `pat in strategy` or `name: Type`, comma-separated.
    (@bind $rng:ident; $pat:pat in $strategy:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strategy), $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $pat:pat in $strategy:expr) => {
        let $pat = $crate::Strategy::sample(&($strategy), $rng);
    };
    (@bind $rng:ident; $param:ident : $ty:ty, $($rest:tt)*) => {
        let $param = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $param:ident : $ty:ty) => {
        let $param = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    (@bind $rng:ident;) => {};
    // Entry without config header.
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a property body (panics with the rendered condition).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($left, $right $(, $($fmt)*)?);
    };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {
        assert_ne!($left, $right $(, $($fmt)*)?);
    };
}

/// Discard the current case when its precondition does not hold.
///
/// Upstream proptest retries discarded cases; this stand-in simply skips
/// the case (the body closure returns early).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let strat = 0usize..100;
        let a = Strategy::sample(&strat, &mut crate::fresh_rng(3));
        let b = Strategy::sample(&strat, &mut crate::fresh_rng(3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_bare_types_bind(x in 1usize..10, flip: bool, y in 0.0f64..=1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assume!(flip || x >= 1);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn persistence_records_and_replays_failing_seeds() {
        let dir = std::env::temp_dir().join(format!(
            "proptest-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let file = dir.join("regress.txt");
        let path: &'static str = Box::leak(file.to_string_lossy().into_owned().into_boxed_str());
        let config = ProptestConfig::with_cases(8).with_persistence(path);

        // A property that always fails: its seed must be recorded.
        let failed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_cases(&config, |_| panic!("forced failure"));
        }));
        assert!(failed.is_err());
        let text = std::fs::read_to_string(&file).expect("seed file written");
        assert!(text.lines().any(|l| l.starts_with("cc ")), "{text}");
        assert!(text.starts_with('#'), "header comment expected: {text}");

        // Replay: a body that tallies invocations sees the persisted seed
        // in addition to the fresh cases.
        let runs = std::cell::Cell::new(0u32);
        crate::run_cases(&config, |_| runs.set(runs.get() + 1));
        assert_eq!(runs.get(), 8 + 1, "one replayed seed plus eight cases");

        // Re-recording the same seed is idempotent.
        let before = std::fs::read_to_string(&file).expect("seed file");
        let failed_again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_cases(&config, |_| panic!("forced failure"));
        }));
        assert!(failed_again.is_err());
        let after = std::fs::read_to_string(&file).expect("seed file");
        assert_eq!(before, after, "duplicate seed must not be appended");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_persistence_file_is_no_seeds() {
        let p = crate::Persistence {
            path: std::path::PathBuf::from("/nonexistent/dir/seeds.txt"),
        };
        assert!(p.seeds().is_empty());
    }

    #[test]
    fn seed_lines_parse_and_comments_are_ignored() {
        let dir = std::env::temp_dir().join(format!("proptest-parse-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let file = dir.join("seeds.txt");
        std::fs::write(
            &file,
            "# comment\ncc 42\n\nnot a seed\ncc 99 trailing words\n",
        )
        .expect("write seeds");
        let p = crate::Persistence { path: file };
        assert_eq!(p.seeds(), vec![42, 99]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let strat = (2usize..5).prop_flat_map(|n| {
            crate::collection::vec(0.0f32..1.0, n..n + 1).prop_map(move |v| (n, v))
        });
        let (n, v) = Strategy::sample(&strat, &mut crate::fresh_rng(1));
        assert_eq!(v.len(), n);
    }
}
