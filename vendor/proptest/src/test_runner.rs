//! Test-runner configuration and the RNG handed to strategies.

use rand::rngs::StdRng;

/// RNG wrapper passed to [`crate::Strategy::sample`].
pub struct TestRng {
    /// Underlying deterministic generator.
    pub inner: StdRng,
}

/// Run configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}
