//! Test-runner configuration and the RNG handed to strategies.

use rand::rngs::StdRng;

/// RNG wrapper passed to [`crate::Strategy::sample`].
pub struct TestRng {
    /// Underlying deterministic generator.
    pub inner: StdRng,
}

/// Run configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
    /// Optional regression-file path, relative to the test crate's
    /// `CARGO_MANIFEST_DIR` (mirroring upstream's `proptest-regressions/`
    /// convention). When set, seeds of failing cases are appended to the
    /// file and replayed *first* on every subsequent run, so a failure
    /// found once keeps failing until actually fixed — even though this
    /// stand-in has no shrinking, the failing case itself persists.
    pub persistence: Option<&'static str>,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            persistence: None,
        }
    }

    /// Persist failing case seeds to `path` (relative to the test
    /// crate's manifest dir) and replay them before fresh cases.
    #[must_use]
    pub fn with_persistence(mut self, path: &'static str) -> Self {
        self.persistence = Some(path);
        self
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            persistence: None,
        }
    }
}
