//! Collection strategies (`vec`).

use crate::test_runner::TestRng;
use crate::Strategy;

/// Size specification for [`vec`]: a fixed length or a length range.
pub trait SizeRange {
    /// Draw a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        use rand::Rng as _;
        rng.inner.gen_range(self.clone())
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        use rand::Rng as _;
        rng.inner.gen_range(self.clone())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
