//! Scoped threads over `std::thread::scope`.
//!
//! Mirrors the `crossbeam::thread` calling convention: the spawn closure
//! receives a `&Scope` (so workers can spawn siblings), and `scope`
//! returns a `Result` the caller unwraps.

use std::any::Any;

/// Boxed panic payload, as produced by `std::thread::JoinHandle::join`.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope in which non-`'static` borrows may cross thread boundaries.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread; joining yields the closure's return value.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker inside this scope. The closure receives the scope
    /// itself, matching crossbeam's `|scope| …` convention.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })),
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread and return its result.
    ///
    /// # Errors
    /// Returns the panic payload if the thread panicked.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

/// Run `f` with a scope handle; all threads spawned in the scope are
/// joined before this returns.
///
/// # Errors
/// Never errors itself (a panicking un-joined child propagates its panic
/// when the scope closes, as with `std::thread::scope`); the `Result`
/// exists for crossbeam API compatibility.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&v| scope.spawn(move |_| v * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 20);
    }
}
