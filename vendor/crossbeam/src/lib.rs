//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Wraps `std::thread::scope` and `std::sync::mpsc` behind the subset of
//! the `crossbeam 0.8` API this workspace uses. Scoped-thread semantics
//! (borrowing non-`'static` data, join handles carrying results) come
//! straight from std; channel semantics (unbounded, multi-producer,
//! cloneable receivers) are layered over `mpsc` with a shared mutex on the
//! receiving side.

#![forbid(unsafe_code)]

pub mod channel;
pub mod thread;
