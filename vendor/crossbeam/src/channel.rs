//! Unbounded MPMC-ish channels over `std::sync::mpsc`.
//!
//! Only the MPSC subset this workspace uses is exposed: `unbounded()`,
//! cloneable `Sender`, and a blocking `Receiver::recv`.

use std::sync::mpsc;

/// Error returned when the receiving side is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned when every sender is gone and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Sending half of an unbounded channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue `value`; never blocks.
    ///
    /// # Errors
    /// Returns the value back if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// Receiving half of an unbounded channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives.
    ///
    /// # Errors
    /// Errors once every sender is dropped and the queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|mpsc::RecvError| RecvError)
    }
}

/// Create an unbounded channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
