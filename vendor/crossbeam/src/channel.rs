//! Unbounded MPMC-ish channels over `std::sync::mpsc`.
//!
//! Only the MPSC subset this workspace uses is exposed: `unbounded()`,
//! cloneable `Sender`, a blocking `Receiver::recv`, and a deadline-bounded
//! `Receiver::recv_timeout` for failure detection in the cluster fabric.

use std::sync::mpsc;
use std::time::Duration;

/// Error returned when the receiving side is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned when every sender is gone and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing is queued right now.
    Empty,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no message available.
    Timeout,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

/// Sending half of an unbounded channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue `value`; never blocks.
    ///
    /// # Errors
    /// Returns the value back if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// Receiving half of an unbounded channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives.
    ///
    /// # Errors
    /// Errors once every sender is dropped and the queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|mpsc::RecvError| RecvError)
    }

    /// Dequeue a message if one is already buffered; never blocks.
    ///
    /// # Errors
    /// `Empty` if nothing is queued, `Disconnected` once every sender is
    /// dropped and the queue is drained.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Block until a message arrives or `timeout` elapses.
    ///
    /// Buffered messages are still delivered after every sender has been
    /// dropped; `Disconnected` is only reported once the queue is drained.
    ///
    /// # Errors
    /// `Timeout` if the deadline passed with nothing queued, `Disconnected`
    /// once every sender is dropped and the queue is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

/// Create an unbounded channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_on_silent_sender() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
    }

    #[test]
    fn recv_timeout_drains_buffer_before_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
