//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes 1.x` API this workspace uses, with
//! `Vec<u8>`/`Arc<[u8]>`-backed storage instead of the upstream vtable
//! machinery. Semantics (cheap clones of frozen buffers, cursor-style
//! `Buf` reads, little-endian `put_*`/`get_*` accessors) match upstream.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Current read position (`Buf` cursor).
    pos: usize,
    /// One past the last readable byte.
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::from_vec(Vec::new())
    }

    /// Copy `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_vec(data.to_vec())
    }

    /// Buffer backed by a static byte string (copied here; upstream
    /// borrows it, but the observable behavior is identical).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v.into_boxed_slice()),
            pos: 0,
            end,
        }
    }

    /// Remaining (unread) length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.pos
    }

    /// Whether no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-buffer of the unread bytes (zero-copy).
    ///
    /// # Panics
    /// Panics if the range exceeds the unread region.
    #[must_use]
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            pos: self.pos + start,
            end: self.pos + end,
        }
    }

    /// Split off and return the first `at` unread bytes, advancing `self`.
    ///
    /// # Panics
    /// Panics if `at` exceeds the unread length.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Self {
            data: Arc::clone(&self.data),
            pos: self.pos,
            end: self.pos + at,
        };
        self.pos += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor for the `Buf` impl.
    pos: usize,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    /// Unread length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(mut self) -> Bytes {
        if self.pos > 0 {
            self.data.drain(..self.pos);
        }
        Bytes::from_vec(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self {
            data: v.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let pos = self.pos;
        &mut self.data[pos..]
    }
}

/// Cursor-style reader over a byte buffer.
pub trait Buf {
    /// Unread bytes.
    fn remaining(&self) -> usize;
    /// The unread byte view.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `n`.
    fn advance(&mut self, n: usize);

    /// Whether any unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.get_u64_le().to_le_bytes())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.pos += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.pos += n;
    }
}

/// Append-style writer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.get_f64_le(), -2.25);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_and_split_are_zero_copy_views() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(&b.slice(1..4)[..], &[2, 3, 4]);
        let mut b2 = b.clone();
        let head = b2.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b2[..], &[3, 4, 5]);
    }
}
