//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the vendored serde [`Content`] model to JSON text and parses
//! it back. Floats are written with Rust's shortest-roundtrip `Display`
//! formatting and parsed with `str::parse::<f64>`, so every finite float
//! roundtrips bitwise (the upstream `float_roundtrip` feature this
//! workspace enables).

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};

pub use serde::Error;

/// Serialize `value` to a JSON string.
///
/// # Errors
/// Errors on non-finite floats (JSON has no NaN/Infinity literal).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Serialize `value` to JSON bytes.
///
/// # Errors
/// Errors on non-finite floats.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from JSON text.
///
/// # Errors
/// Errors on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&content)
}

/// Deserialize a value from JSON bytes.
///
/// # Errors
/// Errors on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_content(content: &Content, out: &mut String) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            // Shortest-roundtrip Display; add `.0` so integers re-parse
            // as floats only where the value demands it (parsing accepts
            // either form, so plain integer text is fine as-is).
            out.push_str(&v.to_string());
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_content(value, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b't') => self.parse_literal("true", Content::Bool(true)),
            Some(b'f') => self.parse_literal("false", Content::Bool(false)),
            Some(b'n') => self.parse_literal("null", Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(char::from),
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_map(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len() && !matches!(self.bytes[self.pos], b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                char::from(other)
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let s = to_string(&0.1f64).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap().to_bits(), 0.1f64.to_bits());
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()),
            Ok(u64::MAX)
        );
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()), Ok(-42));
        assert_eq!(from_str::<bool>("true"), Ok(true));
        assert_eq!(from_str::<Option<f64>>("null"), Ok(None));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nquote\"slash\\tab\tünïcode".to_owned();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json), Ok(original));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json), Ok(v));
        let t = vec![(1u32, 2u32, 0.5f64), (3, 4, -1.25)];
        let json = to_string(&t).unwrap();
        assert_eq!(from_str::<Vec<(u32, u32, f64)>>(&json), Ok(t));
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(from_str::<Vec<u32>>(" [ 1 , 2 , 3 ] "), Ok(vec![1, 2, 3]));
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("xyz").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }
}
