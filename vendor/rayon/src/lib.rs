//! Offline vendored stand-in for the `rayon` crate.
//!
//! Implements the slice `par_iter().fold(..).map(..).collect()` pipeline
//! this workspace uses. Instead of work-stealing deques, the input slice
//! is split into one contiguous chunk per pool thread and each chunk is
//! folded on its own `std::thread::scope` worker — preserving rayon's
//! observable contract for mergeable-accumulator pipelines: every item is
//! visited exactly once, one fold partial is produced per execution
//! split, and `current_thread_index()` is stable within a worker.

#![forbid(unsafe_code)]

use std::cell::Cell;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    static THREAD_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Index of the current pool worker, if running inside a pool.
#[must_use]
pub fn current_thread_index() -> Option<usize> {
    THREAD_INDEX.with(Cell::get)
}

/// Error building a thread pool (never produced by this stand-in; kept
/// for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the number of worker threads (0 = available parallelism).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Never errors in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A fixed-width execution pool.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool installed as the ambient pool for parallel
    /// iterators created inside it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|p| p.replace(self.threads));
        let out = f();
        POOL_THREADS.with(|p| p.set(prev));
        out
    }
}

/// `par_iter()` entry point for slices.
pub trait IntoParallelRefIterator<'data> {
    /// Element type.
    type Item: Sync + 'data;

    /// A parallel iterator borrowing the collection.
    fn par_iter(&'data self) -> ParSliceIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParSliceIter<'data, T> {
        ParSliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParSliceIter<'data, T> {
        ParSliceIter { slice: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParSliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParSliceIter<'data, T> {
    /// Fold each execution chunk into one accumulator seeded by `init`;
    /// one partial is produced per chunk, in chunk order.
    pub fn fold<S, FInit, FFold>(self, init: FInit, fold: FFold) -> Fold<Self, FInit, FFold>
    where
        S: Send,
        FInit: Fn() -> S + Sync,
        FFold: Fn(S, &'data T) -> S + Sync,
    {
        Fold {
            upstream: self,
            init,
            fold,
        }
    }
}

/// Minimal parallel-iterator interface: `fold` then `map` then `collect`.
pub trait ParallelIterator: Sized {
    /// Item type produced by this stage.
    type Item: Send;

    /// Execute the pipeline, producing the per-chunk outputs in chunk
    /// order.
    fn run(self) -> Vec<Self::Item>;

    /// Transform every produced item.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Map<Self, F> {
        Map { upstream: self, f }
    }

    /// Execute and gather the results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

fn pool_width() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed == 0 {
        1
    } else {
        installed
    }
}

/// Run `worker(tid, chunk)` over contiguous chunks of `slice`, one chunk
/// per pool thread, and return the per-chunk outputs in chunk order.
/// Empty chunks produce no output, matching rayon's "partials only where
/// work happened" shape.
fn run_chunked<'data, T: Sync, U: Send>(
    slice: &'data [T],
    worker: &(impl Fn(usize, &'data [T]) -> U + Sync),
) -> Vec<U> {
    let threads = pool_width().min(slice.len().max(1));
    let chunk = slice.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .filter_map(|tid| {
                let lo = (tid * chunk).min(slice.len());
                let hi = ((tid + 1) * chunk).min(slice.len());
                if lo >= hi && !(slice.is_empty() && tid == 0) {
                    return None;
                }
                let part = &slice[lo..hi];
                Some(scope.spawn(move || {
                    THREAD_INDEX.with(|t| t.set(Some(tid)));
                    worker(tid, part)
                }))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

/// Fold stage (see [`ParallelIterator::fold`]).
pub struct Fold<P, FInit, FFold> {
    upstream: P,
    init: FInit,
    fold: FFold,
}

impl<'data, T, S, FInit, FFold> ParallelIterator for Fold<ParSliceIter<'data, T>, FInit, FFold>
where
    T: Sync,
    S: Send,
    FInit: Fn() -> S + Sync,
    FFold: Fn(S, &'data T) -> S + Sync,
{
    type Item = S;

    fn run(self) -> Vec<S> {
        let init = &self.init;
        let fold = &self.fold;
        run_chunked(self.upstream.slice, &|_tid, part: &'data [T]| {
            // One partial per chunk; the chunk borrow lives as long as
            // the scope, which is contained within `'data`.
            let mut acc = init();
            for item in part {
                acc = fold(acc, item);
            }
            acc
        })
    }
}

/// Map stage (see [`ParallelIterator::map`]).
pub struct Map<P, F> {
    upstream: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        self.upstream.run().into_iter().map(self.f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn fold_map_collect_covers_every_item_once() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let partials: Vec<u64> = pool.install(|| {
            data.par_iter()
                .fold(|| 0u64, |acc, &v| acc + v)
                .map(|s| s * 10)
                .collect()
        });
        assert!(partials.len() <= 4);
        assert_eq!(partials.iter().sum::<u64>(), 10 * 999 * 1000 / 2);
    }

    #[test]
    fn thread_index_visible_inside_workers() {
        let data = [0u8; 64];
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let ids: Vec<usize> = pool.install(|| {
            data.par_iter()
                .fold(
                    || super::current_thread_index().unwrap_or(usize::MAX),
                    |acc, _| acc,
                )
                .collect()
        });
        assert!(ids.iter().all(|&i| i < 2));
    }

    #[test]
    fn outside_a_pool_runs_single_chunk() {
        let data = [1u32, 2, 3];
        let sums: Vec<u32> = data.par_iter().fold(|| 0u32, |a, &v| a + v).collect();
        assert_eq!(sums, vec![6]);
    }
}
