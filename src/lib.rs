//! `genome-net` — facade crate re-exporting the full workspace API.
//!
//! See the individual crates for documentation; this facade exists so the
//! repository-level examples and integration tests can address everything
//! through one dependency, the way a downstream user would.

pub use gnet_analysis as analysis;
pub use gnet_bspline as bspline;
pub use gnet_cluster as cluster;
pub use gnet_conformance as conformance;
pub use gnet_core as core;
pub use gnet_expr as expr;
pub use gnet_fault as fault;
pub use gnet_graph as graph;
pub use gnet_grnsim as grnsim;
pub use gnet_mi as mi;
pub use gnet_parallel as parallel;
pub use gnet_permute as permute;
pub use gnet_phi as phi;
pub use gnet_simd as simd;
pub use gnet_trace as trace;
