/root/repo/target/debug/examples/quickstart-806ae57193c6ae57.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-806ae57193c6ae57: examples/quickstart.rs

examples/quickstart.rs:
