/root/repo/target/debug/examples/generic_pairwise-3ccb5241682f9d62.d: examples/generic_pairwise.rs

/root/repo/target/debug/examples/generic_pairwise-3ccb5241682f9d62: examples/generic_pairwise.rs

examples/generic_pairwise.rs:
