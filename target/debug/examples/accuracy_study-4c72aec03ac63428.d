/root/repo/target/debug/examples/accuracy_study-4c72aec03ac63428.d: examples/accuracy_study.rs

/root/repo/target/debug/examples/accuracy_study-4c72aec03ac63428: examples/accuracy_study.rs

examples/accuracy_study.rs:
