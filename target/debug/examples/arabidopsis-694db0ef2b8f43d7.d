/root/repo/target/debug/examples/arabidopsis-694db0ef2b8f43d7.d: examples/arabidopsis.rs

/root/repo/target/debug/examples/arabidopsis-694db0ef2b8f43d7: examples/arabidopsis.rs

examples/arabidopsis.rs:
