/root/repo/target/debug/examples/scaling_study-3f7b4b19ab5bd302.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-3f7b4b19ab5bd302: examples/scaling_study.rs

examples/scaling_study.rs:
