/root/repo/target/debug/examples/distributed_cluster-db7c06ceae7cdf7d.d: examples/distributed_cluster.rs

/root/repo/target/debug/examples/distributed_cluster-db7c06ceae7cdf7d: examples/distributed_cluster.rs

examples/distributed_cluster.rs:
