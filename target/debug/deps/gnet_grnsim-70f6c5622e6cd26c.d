/root/repo/target/debug/deps/gnet_grnsim-70f6c5622e6cd26c.d: crates/grnsim/src/lib.rs crates/grnsim/src/dataset.rs crates/grnsim/src/kinetics.rs crates/grnsim/src/topology.rs

/root/repo/target/debug/deps/gnet_grnsim-70f6c5622e6cd26c: crates/grnsim/src/lib.rs crates/grnsim/src/dataset.rs crates/grnsim/src/kinetics.rs crates/grnsim/src/topology.rs

crates/grnsim/src/lib.rs:
crates/grnsim/src/dataset.rs:
crates/grnsim/src/kinetics.rs:
crates/grnsim/src/topology.rs:
