/root/repo/target/debug/deps/gnet_phi-6bf8c66782ecfce9.d: crates/phi/src/lib.rs crates/phi/src/calibrate.rs crates/phi/src/energy.rs crates/phi/src/machine.rs crates/phi/src/offload.rs crates/phi/src/scenarios.rs crates/phi/src/sim.rs crates/phi/src/workload.rs

/root/repo/target/debug/deps/libgnet_phi-6bf8c66782ecfce9.rlib: crates/phi/src/lib.rs crates/phi/src/calibrate.rs crates/phi/src/energy.rs crates/phi/src/machine.rs crates/phi/src/offload.rs crates/phi/src/scenarios.rs crates/phi/src/sim.rs crates/phi/src/workload.rs

/root/repo/target/debug/deps/libgnet_phi-6bf8c66782ecfce9.rmeta: crates/phi/src/lib.rs crates/phi/src/calibrate.rs crates/phi/src/energy.rs crates/phi/src/machine.rs crates/phi/src/offload.rs crates/phi/src/scenarios.rs crates/phi/src/sim.rs crates/phi/src/workload.rs

crates/phi/src/lib.rs:
crates/phi/src/calibrate.rs:
crates/phi/src/energy.rs:
crates/phi/src/machine.rs:
crates/phi/src/offload.rs:
crates/phi/src/scenarios.rs:
crates/phi/src/sim.rs:
crates/phi/src/workload.rs:
