/root/repo/target/debug/deps/experiment_shapes-75b4515f39b70e13.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-75b4515f39b70e13: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
