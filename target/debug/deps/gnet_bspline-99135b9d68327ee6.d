/root/repo/target/debug/deps/gnet_bspline-99135b9d68327ee6.d: crates/bspline/src/lib.rs crates/bspline/src/basis.rs crates/bspline/src/weights.rs

/root/repo/target/debug/deps/libgnet_bspline-99135b9d68327ee6.rlib: crates/bspline/src/lib.rs crates/bspline/src/basis.rs crates/bspline/src/weights.rs

/root/repo/target/debug/deps/libgnet_bspline-99135b9d68327ee6.rmeta: crates/bspline/src/lib.rs crates/bspline/src/basis.rs crates/bspline/src/weights.rs

crates/bspline/src/lib.rs:
crates/bspline/src/basis.rs:
crates/bspline/src/weights.rs:
