/root/repo/target/debug/deps/genome_net-f3ca8b0a5687b561.d: src/lib.rs

/root/repo/target/debug/deps/genome_net-f3ca8b0a5687b561: src/lib.rs

src/lib.rs:
