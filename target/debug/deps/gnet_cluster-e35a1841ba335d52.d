/root/repo/target/debug/deps/gnet_cluster-e35a1841ba335d52.d: crates/cluster/src/lib.rs crates/cluster/src/codec.rs crates/cluster/src/comm.rs crates/cluster/src/distributed.rs

/root/repo/target/debug/deps/gnet_cluster-e35a1841ba335d52: crates/cluster/src/lib.rs crates/cluster/src/codec.rs crates/cluster/src/comm.rs crates/cluster/src/distributed.rs

crates/cluster/src/lib.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/distributed.rs:
