/root/repo/target/debug/deps/gnet_cluster-3df90b1719aa8d44.d: crates/cluster/src/lib.rs crates/cluster/src/codec.rs crates/cluster/src/comm.rs crates/cluster/src/distributed.rs

/root/repo/target/debug/deps/libgnet_cluster-3df90b1719aa8d44.rlib: crates/cluster/src/lib.rs crates/cluster/src/codec.rs crates/cluster/src/comm.rs crates/cluster/src/distributed.rs

/root/repo/target/debug/deps/libgnet_cluster-3df90b1719aa8d44.rmeta: crates/cluster/src/lib.rs crates/cluster/src/codec.rs crates/cluster/src/comm.rs crates/cluster/src/distributed.rs

crates/cluster/src/lib.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/distributed.rs:
