/root/repo/target/debug/deps/serde_json-a20118b4d2b2ea37.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-a20118b4d2b2ea37: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
