/root/repo/target/debug/deps/gnet_expr-095f8a8da733ecdb.d: crates/expr/src/lib.rs crates/expr/src/io.rs crates/expr/src/matrix.rs crates/expr/src/normalize.rs crates/expr/src/stats.rs crates/expr/src/synth.rs

/root/repo/target/debug/deps/gnet_expr-095f8a8da733ecdb: crates/expr/src/lib.rs crates/expr/src/io.rs crates/expr/src/matrix.rs crates/expr/src/normalize.rs crates/expr/src/stats.rs crates/expr/src/synth.rs

crates/expr/src/lib.rs:
crates/expr/src/io.rs:
crates/expr/src/matrix.rs:
crates/expr/src/normalize.rs:
crates/expr/src/stats.rs:
crates/expr/src/synth.rs:
