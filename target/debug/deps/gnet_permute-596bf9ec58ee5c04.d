/root/repo/target/debug/deps/gnet_permute-596bf9ec58ee5c04.d: crates/permute/src/lib.rs crates/permute/src/normal.rs crates/permute/src/permutation.rs crates/permute/src/significance.rs

/root/repo/target/debug/deps/libgnet_permute-596bf9ec58ee5c04.rlib: crates/permute/src/lib.rs crates/permute/src/normal.rs crates/permute/src/permutation.rs crates/permute/src/significance.rs

/root/repo/target/debug/deps/libgnet_permute-596bf9ec58ee5c04.rmeta: crates/permute/src/lib.rs crates/permute/src/normal.rs crates/permute/src/permutation.rs crates/permute/src/significance.rs

crates/permute/src/lib.rs:
crates/permute/src/normal.rs:
crates/permute/src/permutation.rs:
crates/permute/src/significance.rs:
