/root/repo/target/debug/deps/gnet_core-1cdd00799f12dd33.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/mi_matrix.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/result.rs

/root/repo/target/debug/deps/gnet_core-1cdd00799f12dd33: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/mi_matrix.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/result.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/mi_matrix.rs:
crates/core/src/pipeline.rs:
crates/core/src/plan.rs:
crates/core/src/result.rs:
