/root/repo/target/debug/deps/gnet_parallel-8d918c75f9e7284f.d: crates/parallel/src/lib.rs crates/parallel/src/pairwise.rs crates/parallel/src/scheduler.rs crates/parallel/src/tile.rs

/root/repo/target/debug/deps/gnet_parallel-8d918c75f9e7284f: crates/parallel/src/lib.rs crates/parallel/src/pairwise.rs crates/parallel/src/scheduler.rs crates/parallel/src/tile.rs

crates/parallel/src/lib.rs:
crates/parallel/src/pairwise.rs:
crates/parallel/src/scheduler.rs:
crates/parallel/src/tile.rs:
