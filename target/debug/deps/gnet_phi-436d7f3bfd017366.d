/root/repo/target/debug/deps/gnet_phi-436d7f3bfd017366.d: crates/phi/src/lib.rs crates/phi/src/calibrate.rs crates/phi/src/energy.rs crates/phi/src/machine.rs crates/phi/src/offload.rs crates/phi/src/scenarios.rs crates/phi/src/sim.rs crates/phi/src/workload.rs

/root/repo/target/debug/deps/gnet_phi-436d7f3bfd017366: crates/phi/src/lib.rs crates/phi/src/calibrate.rs crates/phi/src/energy.rs crates/phi/src/machine.rs crates/phi/src/offload.rs crates/phi/src/scenarios.rs crates/phi/src/sim.rs crates/phi/src/workload.rs

crates/phi/src/lib.rs:
crates/phi/src/calibrate.rs:
crates/phi/src/energy.rs:
crates/phi/src/machine.rs:
crates/phi/src/offload.rs:
crates/phi/src/scenarios.rs:
crates/phi/src/sim.rs:
crates/phi/src/workload.rs:
