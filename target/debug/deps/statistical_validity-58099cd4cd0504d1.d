/root/repo/target/debug/deps/statistical_validity-58099cd4cd0504d1.d: tests/statistical_validity.rs

/root/repo/target/debug/deps/statistical_validity-58099cd4cd0504d1: tests/statistical_validity.rs

tests/statistical_validity.rs:
