/root/repo/target/debug/deps/gnet_expr-93925b5c1e5d905b.d: crates/expr/src/lib.rs crates/expr/src/io.rs crates/expr/src/matrix.rs crates/expr/src/normalize.rs crates/expr/src/stats.rs crates/expr/src/synth.rs

/root/repo/target/debug/deps/libgnet_expr-93925b5c1e5d905b.rlib: crates/expr/src/lib.rs crates/expr/src/io.rs crates/expr/src/matrix.rs crates/expr/src/normalize.rs crates/expr/src/stats.rs crates/expr/src/synth.rs

/root/repo/target/debug/deps/libgnet_expr-93925b5c1e5d905b.rmeta: crates/expr/src/lib.rs crates/expr/src/io.rs crates/expr/src/matrix.rs crates/expr/src/normalize.rs crates/expr/src/stats.rs crates/expr/src/synth.rs

crates/expr/src/lib.rs:
crates/expr/src/io.rs:
crates/expr/src/matrix.rs:
crates/expr/src/normalize.rs:
crates/expr/src/stats.rs:
crates/expr/src/synth.rs:
