/root/repo/target/debug/deps/pipeline_properties-9bd5565e71adf140.d: tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-9bd5565e71adf140: tests/pipeline_properties.rs

tests/pipeline_properties.rs:
