/root/repo/target/debug/deps/cluster_integration-77f6301313d20679.d: tests/cluster_integration.rs

/root/repo/target/debug/deps/cluster_integration-77f6301313d20679: tests/cluster_integration.rs

tests/cluster_integration.rs:
