/root/repo/target/debug/deps/batch_effects-9088d0d7aaf2d617.d: tests/batch_effects.rs

/root/repo/target/debug/deps/batch_effects-9088d0d7aaf2d617: tests/batch_effects.rs

tests/batch_effects.rs:
