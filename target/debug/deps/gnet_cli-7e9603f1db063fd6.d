/root/repo/target/debug/deps/gnet_cli-7e9603f1db063fd6.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/gnet_cli-7e9603f1db063fd6: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
