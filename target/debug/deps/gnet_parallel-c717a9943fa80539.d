/root/repo/target/debug/deps/gnet_parallel-c717a9943fa80539.d: crates/parallel/src/lib.rs crates/parallel/src/pairwise.rs crates/parallel/src/scheduler.rs crates/parallel/src/tile.rs

/root/repo/target/debug/deps/libgnet_parallel-c717a9943fa80539.rlib: crates/parallel/src/lib.rs crates/parallel/src/pairwise.rs crates/parallel/src/scheduler.rs crates/parallel/src/tile.rs

/root/repo/target/debug/deps/libgnet_parallel-c717a9943fa80539.rmeta: crates/parallel/src/lib.rs crates/parallel/src/pairwise.rs crates/parallel/src/scheduler.rs crates/parallel/src/tile.rs

crates/parallel/src/lib.rs:
crates/parallel/src/pairwise.rs:
crates/parallel/src/scheduler.rs:
crates/parallel/src/tile.rs:
