/root/repo/target/debug/deps/gnet_simd-a523d22eb6ac8f66.d: crates/simd/src/lib.rs crates/simd/src/lanes.rs crates/simd/src/model.rs crates/simd/src/slice_ops.rs

/root/repo/target/debug/deps/gnet_simd-a523d22eb6ac8f66: crates/simd/src/lib.rs crates/simd/src/lanes.rs crates/simd/src/model.rs crates/simd/src/slice_ops.rs

crates/simd/src/lib.rs:
crates/simd/src/lanes.rs:
crates/simd/src/model.rs:
crates/simd/src/slice_ops.rs:
