/root/repo/target/debug/deps/gnet_graph-cf7b7eecb6cdbd96.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/dpi.rs crates/graph/src/io.rs crates/graph/src/metrics.rs crates/graph/src/network.rs

/root/repo/target/debug/deps/gnet_graph-cf7b7eecb6cdbd96: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/dpi.rs crates/graph/src/io.rs crates/graph/src/metrics.rs crates/graph/src/network.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/dpi.rs:
crates/graph/src/io.rs:
crates/graph/src/metrics.rs:
crates/graph/src/network.rs:
