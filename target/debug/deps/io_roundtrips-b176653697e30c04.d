/root/repo/target/debug/deps/io_roundtrips-b176653697e30c04.d: tests/io_roundtrips.rs

/root/repo/target/debug/deps/io_roundtrips-b176653697e30c04: tests/io_roundtrips.rs

tests/io_roundtrips.rs:
