/root/repo/target/debug/deps/pipeline_integration-b4af0e7ec667cd81.d: tests/pipeline_integration.rs

/root/repo/target/debug/deps/pipeline_integration-b4af0e7ec667cd81: tests/pipeline_integration.rs

tests/pipeline_integration.rs:
