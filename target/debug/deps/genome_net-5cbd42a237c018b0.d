/root/repo/target/debug/deps/genome_net-5cbd42a237c018b0.d: src/lib.rs

/root/repo/target/debug/deps/libgenome_net-5cbd42a237c018b0.rlib: src/lib.rs

/root/repo/target/debug/deps/libgenome_net-5cbd42a237c018b0.rmeta: src/lib.rs

src/lib.rs:
