/root/repo/target/debug/deps/gnet_mi-cbdf3885c703e26b.d: crates/mi/src/lib.rs crates/mi/src/entropy.rs crates/mi/src/gene.rs crates/mi/src/histogram.rs crates/mi/src/ksg.rs crates/mi/src/sparse_kernel.rs crates/mi/src/vector_kernel.rs

/root/repo/target/debug/deps/gnet_mi-cbdf3885c703e26b: crates/mi/src/lib.rs crates/mi/src/entropy.rs crates/mi/src/gene.rs crates/mi/src/histogram.rs crates/mi/src/ksg.rs crates/mi/src/sparse_kernel.rs crates/mi/src/vector_kernel.rs

crates/mi/src/lib.rs:
crates/mi/src/entropy.rs:
crates/mi/src/gene.rs:
crates/mi/src/histogram.rs:
crates/mi/src/ksg.rs:
crates/mi/src/sparse_kernel.rs:
crates/mi/src/vector_kernel.rs:
