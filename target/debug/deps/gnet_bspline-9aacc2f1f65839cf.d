/root/repo/target/debug/deps/gnet_bspline-9aacc2f1f65839cf.d: crates/bspline/src/lib.rs crates/bspline/src/basis.rs crates/bspline/src/weights.rs

/root/repo/target/debug/deps/gnet_bspline-9aacc2f1f65839cf: crates/bspline/src/lib.rs crates/bspline/src/basis.rs crates/bspline/src/weights.rs

crates/bspline/src/lib.rs:
crates/bspline/src/basis.rs:
crates/bspline/src/weights.rs:
