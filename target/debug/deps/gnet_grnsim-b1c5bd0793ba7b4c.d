/root/repo/target/debug/deps/gnet_grnsim-b1c5bd0793ba7b4c.d: crates/grnsim/src/lib.rs crates/grnsim/src/dataset.rs crates/grnsim/src/kinetics.rs crates/grnsim/src/topology.rs

/root/repo/target/debug/deps/libgnet_grnsim-b1c5bd0793ba7b4c.rlib: crates/grnsim/src/lib.rs crates/grnsim/src/dataset.rs crates/grnsim/src/kinetics.rs crates/grnsim/src/topology.rs

/root/repo/target/debug/deps/libgnet_grnsim-b1c5bd0793ba7b4c.rmeta: crates/grnsim/src/lib.rs crates/grnsim/src/dataset.rs crates/grnsim/src/kinetics.rs crates/grnsim/src/topology.rs

crates/grnsim/src/lib.rs:
crates/grnsim/src/dataset.rs:
crates/grnsim/src/kinetics.rs:
crates/grnsim/src/topology.rs:
