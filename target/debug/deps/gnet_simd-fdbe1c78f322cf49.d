/root/repo/target/debug/deps/gnet_simd-fdbe1c78f322cf49.d: crates/simd/src/lib.rs crates/simd/src/lanes.rs crates/simd/src/model.rs crates/simd/src/slice_ops.rs

/root/repo/target/debug/deps/libgnet_simd-fdbe1c78f322cf49.rlib: crates/simd/src/lib.rs crates/simd/src/lanes.rs crates/simd/src/model.rs crates/simd/src/slice_ops.rs

/root/repo/target/debug/deps/libgnet_simd-fdbe1c78f322cf49.rmeta: crates/simd/src/lib.rs crates/simd/src/lanes.rs crates/simd/src/model.rs crates/simd/src/slice_ops.rs

crates/simd/src/lib.rs:
crates/simd/src/lanes.rs:
crates/simd/src/model.rs:
crates/simd/src/slice_ops.rs:
