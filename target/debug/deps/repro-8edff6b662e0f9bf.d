/root/repo/target/debug/deps/repro-8edff6b662e0f9bf.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-8edff6b662e0f9bf: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
