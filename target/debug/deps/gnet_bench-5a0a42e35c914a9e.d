/root/repo/target/debug/deps/gnet_bench-5a0a42e35c914a9e.d: crates/bench/src/lib.rs crates/bench/src/measured.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libgnet_bench-5a0a42e35c914a9e.rlib: crates/bench/src/lib.rs crates/bench/src/measured.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libgnet_bench-5a0a42e35c914a9e.rmeta: crates/bench/src/lib.rs crates/bench/src/measured.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/measured.rs:
crates/bench/src/table.rs:
