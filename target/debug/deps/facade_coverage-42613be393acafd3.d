/root/repo/target/debug/deps/facade_coverage-42613be393acafd3.d: tests/facade_coverage.rs

/root/repo/target/debug/deps/facade_coverage-42613be393acafd3: tests/facade_coverage.rs

tests/facade_coverage.rs:
