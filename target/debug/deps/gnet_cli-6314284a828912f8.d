/root/repo/target/debug/deps/gnet_cli-6314284a828912f8.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libgnet_cli-6314284a828912f8.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libgnet_cli-6314284a828912f8.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
