/root/repo/target/debug/deps/gnet_graph-3f4e9539cb33b979.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/dpi.rs crates/graph/src/io.rs crates/graph/src/metrics.rs crates/graph/src/network.rs

/root/repo/target/debug/deps/libgnet_graph-3f4e9539cb33b979.rlib: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/dpi.rs crates/graph/src/io.rs crates/graph/src/metrics.rs crates/graph/src/network.rs

/root/repo/target/debug/deps/libgnet_graph-3f4e9539cb33b979.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/dpi.rs crates/graph/src/io.rs crates/graph/src/metrics.rs crates/graph/src/network.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/dpi.rs:
crates/graph/src/io.rs:
crates/graph/src/metrics.rs:
crates/graph/src/network.rs:
