/root/repo/target/debug/deps/gnet-45c75bea4c6f1603.d: crates/cli/src/bin/gnet.rs

/root/repo/target/debug/deps/gnet-45c75bea4c6f1603: crates/cli/src/bin/gnet.rs

crates/cli/src/bin/gnet.rs:
