/root/repo/target/debug/deps/gnet_bench-1cfe2449dd0b796f.d: crates/bench/src/lib.rs crates/bench/src/measured.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/gnet_bench-1cfe2449dd0b796f: crates/bench/src/lib.rs crates/bench/src/measured.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/measured.rs:
crates/bench/src/table.rs:
