/root/repo/target/debug/deps/gnet_core-288077a4c4b93be7.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/mi_matrix.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/result.rs

/root/repo/target/debug/deps/libgnet_core-288077a4c4b93be7.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/mi_matrix.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/result.rs

/root/repo/target/debug/deps/libgnet_core-288077a4c4b93be7.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/mi_matrix.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/result.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/mi_matrix.rs:
crates/core/src/pipeline.rs:
crates/core/src/plan.rs:
crates/core/src/result.rs:
