/root/repo/target/debug/deps/gnet_mi-b1640a4fbc921ea1.d: crates/mi/src/lib.rs crates/mi/src/entropy.rs crates/mi/src/gene.rs crates/mi/src/histogram.rs crates/mi/src/ksg.rs crates/mi/src/sparse_kernel.rs crates/mi/src/vector_kernel.rs

/root/repo/target/debug/deps/libgnet_mi-b1640a4fbc921ea1.rlib: crates/mi/src/lib.rs crates/mi/src/entropy.rs crates/mi/src/gene.rs crates/mi/src/histogram.rs crates/mi/src/ksg.rs crates/mi/src/sparse_kernel.rs crates/mi/src/vector_kernel.rs

/root/repo/target/debug/deps/libgnet_mi-b1640a4fbc921ea1.rmeta: crates/mi/src/lib.rs crates/mi/src/entropy.rs crates/mi/src/gene.rs crates/mi/src/histogram.rs crates/mi/src/ksg.rs crates/mi/src/sparse_kernel.rs crates/mi/src/vector_kernel.rs

crates/mi/src/lib.rs:
crates/mi/src/entropy.rs:
crates/mi/src/gene.rs:
crates/mi/src/histogram.rs:
crates/mi/src/ksg.rs:
crates/mi/src/sparse_kernel.rs:
crates/mi/src/vector_kernel.rs:
