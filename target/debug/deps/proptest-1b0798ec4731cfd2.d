/root/repo/target/debug/deps/proptest-1b0798ec4731cfd2.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-1b0798ec4731cfd2: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/test_runner.rs:
