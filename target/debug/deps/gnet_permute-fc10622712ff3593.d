/root/repo/target/debug/deps/gnet_permute-fc10622712ff3593.d: crates/permute/src/lib.rs crates/permute/src/normal.rs crates/permute/src/permutation.rs crates/permute/src/significance.rs

/root/repo/target/debug/deps/gnet_permute-fc10622712ff3593: crates/permute/src/lib.rs crates/permute/src/normal.rs crates/permute/src/permutation.rs crates/permute/src/significance.rs

crates/permute/src/lib.rs:
crates/permute/src/normal.rs:
crates/permute/src/permutation.rs:
crates/permute/src/significance.rs:
