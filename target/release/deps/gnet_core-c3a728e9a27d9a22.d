/root/repo/target/release/deps/gnet_core-c3a728e9a27d9a22.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/mi_matrix.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/result.rs

/root/repo/target/release/deps/libgnet_core-c3a728e9a27d9a22.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/mi_matrix.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/result.rs

/root/repo/target/release/deps/libgnet_core-c3a728e9a27d9a22.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/mi_matrix.rs crates/core/src/pipeline.rs crates/core/src/plan.rs crates/core/src/result.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/mi_matrix.rs:
crates/core/src/pipeline.rs:
crates/core/src/plan.rs:
crates/core/src/result.rs:
