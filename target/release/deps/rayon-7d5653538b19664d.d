/root/repo/target/release/deps/rayon-7d5653538b19664d.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-7d5653538b19664d.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-7d5653538b19664d.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
