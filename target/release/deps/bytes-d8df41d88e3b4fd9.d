/root/repo/target/release/deps/bytes-d8df41d88e3b4fd9.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-d8df41d88e3b4fd9.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-d8df41d88e3b4fd9.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
