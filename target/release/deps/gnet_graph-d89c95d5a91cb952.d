/root/repo/target/release/deps/gnet_graph-d89c95d5a91cb952.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/dpi.rs crates/graph/src/io.rs crates/graph/src/metrics.rs crates/graph/src/network.rs

/root/repo/target/release/deps/libgnet_graph-d89c95d5a91cb952.rlib: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/dpi.rs crates/graph/src/io.rs crates/graph/src/metrics.rs crates/graph/src/network.rs

/root/repo/target/release/deps/libgnet_graph-d89c95d5a91cb952.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/dpi.rs crates/graph/src/io.rs crates/graph/src/metrics.rs crates/graph/src/network.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/dpi.rs:
crates/graph/src/io.rs:
crates/graph/src/metrics.rs:
crates/graph/src/network.rs:
