/root/repo/target/release/deps/gnet_simd-07f829700d978d0a.d: crates/simd/src/lib.rs crates/simd/src/lanes.rs crates/simd/src/model.rs crates/simd/src/slice_ops.rs

/root/repo/target/release/deps/libgnet_simd-07f829700d978d0a.rlib: crates/simd/src/lib.rs crates/simd/src/lanes.rs crates/simd/src/model.rs crates/simd/src/slice_ops.rs

/root/repo/target/release/deps/libgnet_simd-07f829700d978d0a.rmeta: crates/simd/src/lib.rs crates/simd/src/lanes.rs crates/simd/src/model.rs crates/simd/src/slice_ops.rs

crates/simd/src/lib.rs:
crates/simd/src/lanes.rs:
crates/simd/src/model.rs:
crates/simd/src/slice_ops.rs:
