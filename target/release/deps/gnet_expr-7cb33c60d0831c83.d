/root/repo/target/release/deps/gnet_expr-7cb33c60d0831c83.d: crates/expr/src/lib.rs crates/expr/src/io.rs crates/expr/src/matrix.rs crates/expr/src/normalize.rs crates/expr/src/stats.rs crates/expr/src/synth.rs

/root/repo/target/release/deps/libgnet_expr-7cb33c60d0831c83.rlib: crates/expr/src/lib.rs crates/expr/src/io.rs crates/expr/src/matrix.rs crates/expr/src/normalize.rs crates/expr/src/stats.rs crates/expr/src/synth.rs

/root/repo/target/release/deps/libgnet_expr-7cb33c60d0831c83.rmeta: crates/expr/src/lib.rs crates/expr/src/io.rs crates/expr/src/matrix.rs crates/expr/src/normalize.rs crates/expr/src/stats.rs crates/expr/src/synth.rs

crates/expr/src/lib.rs:
crates/expr/src/io.rs:
crates/expr/src/matrix.rs:
crates/expr/src/normalize.rs:
crates/expr/src/stats.rs:
crates/expr/src/synth.rs:
