/root/repo/target/release/deps/gnet_parallel-378d64b21e158c74.d: crates/parallel/src/lib.rs crates/parallel/src/pairwise.rs crates/parallel/src/scheduler.rs crates/parallel/src/tile.rs

/root/repo/target/release/deps/libgnet_parallel-378d64b21e158c74.rlib: crates/parallel/src/lib.rs crates/parallel/src/pairwise.rs crates/parallel/src/scheduler.rs crates/parallel/src/tile.rs

/root/repo/target/release/deps/libgnet_parallel-378d64b21e158c74.rmeta: crates/parallel/src/lib.rs crates/parallel/src/pairwise.rs crates/parallel/src/scheduler.rs crates/parallel/src/tile.rs

crates/parallel/src/lib.rs:
crates/parallel/src/pairwise.rs:
crates/parallel/src/scheduler.rs:
crates/parallel/src/tile.rs:
