/root/repo/target/release/deps/gnet_cluster-81c29302ff23bbbb.d: crates/cluster/src/lib.rs crates/cluster/src/codec.rs crates/cluster/src/comm.rs crates/cluster/src/distributed.rs

/root/repo/target/release/deps/libgnet_cluster-81c29302ff23bbbb.rlib: crates/cluster/src/lib.rs crates/cluster/src/codec.rs crates/cluster/src/comm.rs crates/cluster/src/distributed.rs

/root/repo/target/release/deps/libgnet_cluster-81c29302ff23bbbb.rmeta: crates/cluster/src/lib.rs crates/cluster/src/codec.rs crates/cluster/src/comm.rs crates/cluster/src/distributed.rs

crates/cluster/src/lib.rs:
crates/cluster/src/codec.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/distributed.rs:
