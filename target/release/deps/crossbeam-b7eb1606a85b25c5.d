/root/repo/target/release/deps/crossbeam-b7eb1606a85b25c5.d: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/thread.rs

/root/repo/target/release/deps/libcrossbeam-b7eb1606a85b25c5.rlib: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/thread.rs

/root/repo/target/release/deps/libcrossbeam-b7eb1606a85b25c5.rmeta: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/thread.rs

vendor/crossbeam/src/lib.rs:
vendor/crossbeam/src/channel.rs:
vendor/crossbeam/src/thread.rs:
