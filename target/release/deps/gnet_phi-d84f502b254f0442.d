/root/repo/target/release/deps/gnet_phi-d84f502b254f0442.d: crates/phi/src/lib.rs crates/phi/src/calibrate.rs crates/phi/src/energy.rs crates/phi/src/machine.rs crates/phi/src/offload.rs crates/phi/src/scenarios.rs crates/phi/src/sim.rs crates/phi/src/workload.rs

/root/repo/target/release/deps/libgnet_phi-d84f502b254f0442.rlib: crates/phi/src/lib.rs crates/phi/src/calibrate.rs crates/phi/src/energy.rs crates/phi/src/machine.rs crates/phi/src/offload.rs crates/phi/src/scenarios.rs crates/phi/src/sim.rs crates/phi/src/workload.rs

/root/repo/target/release/deps/libgnet_phi-d84f502b254f0442.rmeta: crates/phi/src/lib.rs crates/phi/src/calibrate.rs crates/phi/src/energy.rs crates/phi/src/machine.rs crates/phi/src/offload.rs crates/phi/src/scenarios.rs crates/phi/src/sim.rs crates/phi/src/workload.rs

crates/phi/src/lib.rs:
crates/phi/src/calibrate.rs:
crates/phi/src/energy.rs:
crates/phi/src/machine.rs:
crates/phi/src/offload.rs:
crates/phi/src/scenarios.rs:
crates/phi/src/sim.rs:
crates/phi/src/workload.rs:
