/root/repo/target/release/deps/gnet_grnsim-a554cb0cf25e9529.d: crates/grnsim/src/lib.rs crates/grnsim/src/dataset.rs crates/grnsim/src/kinetics.rs crates/grnsim/src/topology.rs

/root/repo/target/release/deps/libgnet_grnsim-a554cb0cf25e9529.rlib: crates/grnsim/src/lib.rs crates/grnsim/src/dataset.rs crates/grnsim/src/kinetics.rs crates/grnsim/src/topology.rs

/root/repo/target/release/deps/libgnet_grnsim-a554cb0cf25e9529.rmeta: crates/grnsim/src/lib.rs crates/grnsim/src/dataset.rs crates/grnsim/src/kinetics.rs crates/grnsim/src/topology.rs

crates/grnsim/src/lib.rs:
crates/grnsim/src/dataset.rs:
crates/grnsim/src/kinetics.rs:
crates/grnsim/src/topology.rs:
