/root/repo/target/release/deps/gnet_bspline-10abaab7537a3522.d: crates/bspline/src/lib.rs crates/bspline/src/basis.rs crates/bspline/src/weights.rs

/root/repo/target/release/deps/libgnet_bspline-10abaab7537a3522.rlib: crates/bspline/src/lib.rs crates/bspline/src/basis.rs crates/bspline/src/weights.rs

/root/repo/target/release/deps/libgnet_bspline-10abaab7537a3522.rmeta: crates/bspline/src/lib.rs crates/bspline/src/basis.rs crates/bspline/src/weights.rs

crates/bspline/src/lib.rs:
crates/bspline/src/basis.rs:
crates/bspline/src/weights.rs:
