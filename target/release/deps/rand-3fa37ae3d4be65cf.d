/root/repo/target/release/deps/rand-3fa37ae3d4be65cf.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs

/root/repo/target/release/deps/librand-3fa37ae3d4be65cf.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs

/root/repo/target/release/deps/librand-3fa37ae3d4be65cf.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
