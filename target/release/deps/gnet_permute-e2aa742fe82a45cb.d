/root/repo/target/release/deps/gnet_permute-e2aa742fe82a45cb.d: crates/permute/src/lib.rs crates/permute/src/normal.rs crates/permute/src/permutation.rs crates/permute/src/significance.rs

/root/repo/target/release/deps/libgnet_permute-e2aa742fe82a45cb.rlib: crates/permute/src/lib.rs crates/permute/src/normal.rs crates/permute/src/permutation.rs crates/permute/src/significance.rs

/root/repo/target/release/deps/libgnet_permute-e2aa742fe82a45cb.rmeta: crates/permute/src/lib.rs crates/permute/src/normal.rs crates/permute/src/permutation.rs crates/permute/src/significance.rs

crates/permute/src/lib.rs:
crates/permute/src/normal.rs:
crates/permute/src/permutation.rs:
crates/permute/src/significance.rs:
