/root/repo/target/release/deps/gnet_mi-82ef7e44bdfa9390.d: crates/mi/src/lib.rs crates/mi/src/entropy.rs crates/mi/src/gene.rs crates/mi/src/histogram.rs crates/mi/src/ksg.rs crates/mi/src/sparse_kernel.rs crates/mi/src/vector_kernel.rs

/root/repo/target/release/deps/libgnet_mi-82ef7e44bdfa9390.rlib: crates/mi/src/lib.rs crates/mi/src/entropy.rs crates/mi/src/gene.rs crates/mi/src/histogram.rs crates/mi/src/ksg.rs crates/mi/src/sparse_kernel.rs crates/mi/src/vector_kernel.rs

/root/repo/target/release/deps/libgnet_mi-82ef7e44bdfa9390.rmeta: crates/mi/src/lib.rs crates/mi/src/entropy.rs crates/mi/src/gene.rs crates/mi/src/histogram.rs crates/mi/src/ksg.rs crates/mi/src/sparse_kernel.rs crates/mi/src/vector_kernel.rs

crates/mi/src/lib.rs:
crates/mi/src/entropy.rs:
crates/mi/src/gene.rs:
crates/mi/src/histogram.rs:
crates/mi/src/ksg.rs:
crates/mi/src/sparse_kernel.rs:
crates/mi/src/vector_kernel.rs:
