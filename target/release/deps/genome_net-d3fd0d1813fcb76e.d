/root/repo/target/release/deps/genome_net-d3fd0d1813fcb76e.d: src/lib.rs

/root/repo/target/release/deps/libgenome_net-d3fd0d1813fcb76e.rlib: src/lib.rs

/root/repo/target/release/deps/libgenome_net-d3fd0d1813fcb76e.rmeta: src/lib.rs

src/lib.rs:
