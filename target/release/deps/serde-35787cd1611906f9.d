/root/repo/target/release/deps/serde-35787cd1611906f9.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-35787cd1611906f9.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-35787cd1611906f9.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
