//! Interchange-format round trips across crates: expression TSV, binary
//! snapshots, and network edge lists survive a full write/read cycle and
//! reproduce identical inference results.

use genome_net::core::{infer_network, InferenceConfig};
use genome_net::expr::io::{from_snapshot, read_tsv, to_snapshot, write_tsv};
use genome_net::expr::MissingPolicy;
use genome_net::graph::io::{read_edge_list, write_edge_list};
use genome_net::grnsim::{GrnConfig, SyntheticDataset};

fn config() -> InferenceConfig {
    InferenceConfig {
        permutations: 10,
        threads: Some(1),
        tile_size: Some(10),
        ..InferenceConfig::default()
    }
}

#[test]
fn expression_tsv_roundtrip_preserves_inference() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 20,
            samples: 120,
            ..GrnConfig::small()
        },
        31,
    );
    let direct = infer_network(&ds.matrix, &config());

    let mut buf = Vec::new();
    write_tsv(&ds.matrix, &mut buf).unwrap();
    let reparsed = read_tsv(&buf[..], true, MissingPolicy::Error).unwrap();
    // f32 values printed with full shortest-roundtrip precision.
    assert_eq!(reparsed, ds.matrix);

    let via_tsv = infer_network(&reparsed, &config());
    assert_eq!(direct.network, via_tsv.network);
}

#[test]
fn snapshot_roundtrip_is_bit_exact() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 15,
            samples: 64,
            ..GrnConfig::small()
        },
        77,
    );
    let bytes = to_snapshot(&ds.matrix);
    let back = from_snapshot(bytes).unwrap();
    assert_eq!(back, ds.matrix);
}

#[test]
fn network_edge_list_roundtrip() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 25,
            samples: 200,
            ..GrnConfig::small()
        },
        13,
    );
    let result = infer_network(&ds.matrix, &config());
    assert!(
        result.network.edge_count() > 0,
        "test needs a non-empty network"
    );

    let mut buf = Vec::new();
    write_edge_list(&result.network, &mut buf).unwrap();
    let back = read_edge_list(
        &buf[..],
        result.network.genes(),
        result.network.gene_names().to_vec(),
    )
    .unwrap();
    assert_eq!(back, result.network);
}

#[test]
fn tsv_with_missing_values_is_imputed_then_inferable() {
    // Corrupt a matrix with NAs, write, read with mean imputation, infer.
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 12,
            samples: 80,
            ..GrnConfig::small()
        },
        55,
    );
    let mut buf = Vec::new();
    write_tsv(&ds.matrix, &mut buf).unwrap();
    let mut text = String::from_utf8(buf).unwrap();
    // Replace the first data cell of the second data line with NA.
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let cells: Vec<&str> = lines[2].split('\t').collect();
    let mut new_cells: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
    new_cells[1] = "NA".into();
    lines[2] = new_cells.join("\t");
    text = lines.join("\n");

    assert!(read_tsv(text.as_bytes(), true, MissingPolicy::Error).is_err());
    let imputed = read_tsv(text.as_bytes(), true, MissingPolicy::MeanImpute).unwrap();
    let result = infer_network(&imputed, &config());
    assert_eq!(result.stats.pairs, 66);
}
