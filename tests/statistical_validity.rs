//! Statistical validity of the significance machinery at integration
//! scope: false-positive control, estimator agreement, and permutation
//! reproducibility.

use genome_net::bspline::BsplineBasis;
use genome_net::core::{infer_network, InferenceConfig};
use genome_net::expr::normalize::rank_transform_profile;
use genome_net::expr::synth;
use genome_net::mi::histogram::HistogramEstimator;
use genome_net::mi::{entropy_nats, mi_scalar, prepare_gene, MiScratch};
use genome_net::permute::{empirical_p_value, PermutationSet};

#[test]
fn family_wise_error_is_controlled_across_many_nulls() {
    // 10 independent matrices of independent genes: the total number of
    // false edges across all of them should stay tiny at α = 0.01.
    let mut total_edges = 0usize;
    for seed in 0..10 {
        let matrix = synth::independent_gaussian(16, 200, 1000 + seed);
        let cfg = InferenceConfig {
            permutations: 15,
            threads: Some(1),
            tile_size: Some(8),
            ..InferenceConfig::default()
        };
        total_edges += infer_network(&matrix, &cfg).network.edge_count();
    }
    assert!(
        total_edges <= 3,
        "{total_edges} false edges over 1,200 null pairs"
    );
}

#[test]
fn order_one_bspline_equals_histogram_estimator() {
    // Two independent implementations must agree exactly at order 1.
    let matrix = synth::independent_uniform(2, 500, 9);
    let x_ranked = rank_transform_profile(matrix.gene(0));
    let y_ranked = rank_transform_profile(matrix.gene(1));

    let hist = HistogramEstimator::new(10);
    let reference = hist.mi(&x_ranked, &y_ranked);

    let basis = BsplineBasis::new(1, 10);
    let px = prepare_gene(matrix.gene(0), &basis);
    let py = prepare_gene(matrix.gene(1), &basis);
    let mut scratch = MiScratch::for_basis(&basis);
    let spline = mi_scalar(&px, &py, &mut scratch);

    assert!(
        (reference - spline).abs() < 1e-4,
        "histogram {reference} vs order-1 spline {spline}"
    );
}

#[test]
fn permutation_p_values_are_uniformish_under_the_null() {
    // For independent genes the empirical p-value should not concentrate
    // near zero. Average p over many pairs ≈ 0.5.
    let matrix = synth::independent_gaussian(20, 150, 77);
    let basis = BsplineBasis::tinge_default();
    let prepared: Vec<_> = (0..20)
        .map(|g| prepare_gene(matrix.gene(g), &basis))
        .collect();
    let perms = PermutationSet::generate(150, 19, 5);
    let mut scratch = MiScratch::for_basis(&basis);

    let mut p_sum = 0.0;
    let mut count = 0;
    for i in 0..20 {
        for j in i + 1..20 {
            let res = genome_net::mi::mi_with_nulls(
                genome_net::mi::MiKernel::ScalarSparse,
                &prepared[i],
                &prepared[j],
                None,
                perms.as_vecs(),
                &mut scratch,
            );
            p_sum += empirical_p_value(res.observed, &res.null);
            count += 1;
        }
    }
    let mean_p = p_sum / count as f64;
    assert!(
        (0.35..0.65).contains(&mean_p),
        "mean null p-value {mean_p} should hover near 0.5"
    );
}

#[test]
fn marginal_entropy_is_permutation_invariant_end_to_end() {
    let matrix = synth::independent_gaussian(1, 300, 3);
    let basis = BsplineBasis::tinge_default();
    let g = prepare_gene(matrix.gene(0), &basis);
    let perms = PermutationSet::generate(300, 5, 11);
    for i in 0..perms.len() {
        let permuted = g.sparse.permuted(perms.get(i));
        let h = entropy_nats(&permuted.marginal());
        assert!(
            (h - g.h_marginal).abs() < 1e-5,
            "permutation {i} changed the marginal entropy"
        );
    }
}

#[test]
fn rank_transform_makes_marginals_identical_across_genes() {
    // The key TINGe property: after rank transform, every (untied) gene
    // has the same marginal entropy, which is what makes a single pooled
    // null valid for all pairs.
    let matrix = synth::independent_gaussian(10, 400, 21);
    let basis = BsplineBasis::tinge_default();
    let entropies: Vec<f64> = (0..10)
        .map(|g| prepare_gene(matrix.gene(g), &basis).h_marginal)
        .collect();
    let first = entropies[0];
    for (g, h) in entropies.iter().enumerate() {
        assert!(
            (h - first).abs() < 1e-5,
            "gene {g} marginal entropy {h} differs from {first}"
        );
    }
}
