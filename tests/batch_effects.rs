//! Batch-effect confounding and its correction, end to end.
//!
//! Real compendia (like the 3,137-array Arabidopsis set) aggregate data
//! from many labs; per-batch global intensity shifts induce dependence
//! between *every* gene pair that no estimator — MI included — can tell
//! from biology. These tests demonstrate the confounder on synthetic
//! data and verify that per-batch centering restores false-positive
//! control while preserving recall of the true network.

use genome_net::core::{infer_network, InferenceConfig};
use genome_net::expr::normalize::center_batches;
use genome_net::graph::recovery_score;
use genome_net::grnsim::{GrnConfig, SyntheticDataset};

fn config() -> InferenceConfig {
    InferenceConfig {
        permutations: 15,
        threads: Some(1),
        tile_size: Some(10),
        ..InferenceConfig::default()
    }
}

fn batchy_config(genes: usize) -> GrnConfig {
    GrnConfig {
        genes,
        samples: 240,
        batches: 6,
        batch_sd: 1.5,
        ..GrnConfig::small()
    }
}

#[test]
fn batch_effects_flood_the_network_with_false_edges() {
    // Independent genes (avg_degree → edges exist but we use a disconnected
    // control: generate with batch effects and compare edge counts).
    let clean = SyntheticDataset::generate(
        GrnConfig {
            batches: 1,
            batch_sd: 0.0,
            ..batchy_config(30)
        },
        99,
    );
    let batchy = SyntheticDataset::generate(batchy_config(30), 99);
    let clean_edges = infer_network(&clean.matrix, &config()).network.edge_count();
    let batchy_edges = infer_network(&batchy.matrix, &config())
        .network
        .edge_count();
    assert!(
        batchy_edges as f64 > 1.5 * clean_edges as f64,
        "a strong batch confounder must inflate the network: {clean_edges} → {batchy_edges}"
    );
}

#[test]
fn centering_restores_false_positive_control() {
    let ds = SyntheticDataset::generate(batchy_config(40), 7);
    let truth = ds.truth_edges();

    let confounded = infer_network(&ds.matrix, &config());
    let corrected_matrix = center_batches(&ds.matrix, &ds.batch_labels);
    let corrected = infer_network(&corrected_matrix, &config());

    let before = recovery_score(&confounded.network, &truth);
    let after = recovery_score(&corrected.network, &truth);

    assert!(
        after.precision() > before.precision(),
        "centering must raise precision: {:.3} → {:.3}",
        before.precision(),
        after.precision()
    );
    assert!(
        after.recall() > 0.4,
        "correction must not destroy the real signal, recall {:.3}",
        after.recall()
    );
    assert!(
        corrected.network.edge_count() < confounded.network.edge_count(),
        "the flood of spurious edges must recede: {} → {}",
        confounded.network.edge_count(),
        corrected.network.edge_count()
    );
}

#[test]
fn batch_labels_cover_all_samples() {
    let ds = SyntheticDataset::generate(batchy_config(10), 3);
    assert_eq!(ds.batch_labels.len(), 240);
    let max = *ds.batch_labels.iter().max().unwrap();
    assert_eq!(max, 5, "six batches labelled 0..=5");
    // Contiguous grouping.
    for w in ds.batch_labels.windows(2) {
        assert!(w[1] == w[0] || w[1] == w[0] + 1);
    }
}
