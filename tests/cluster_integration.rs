//! Facade-level integration of the simulated cluster: fabric collectives
//! composed into a user-style workflow, and the distributed pipeline on
//! mechanistic data.

use genome_net::cluster::comm::run_ranks;
use genome_net::cluster::infer_network_distributed;
use genome_net::core::{infer_network, InferenceConfig};
use genome_net::grnsim::{GrnConfig, SyntheticDataset};

fn cfg() -> InferenceConfig {
    InferenceConfig {
        permutations: 10,
        threads: Some(1),
        tile_size: Some(8),
        ..InferenceConfig::default()
    }
}

#[test]
fn distributed_grn_inference_matches_shared_memory() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 36,
            samples: 250,
            ..GrnConfig::small()
        },
        44,
    );
    let shared = infer_network(&ds.matrix, &cfg());
    for ranks in [3usize, 6] {
        let dist = infer_network_distributed(&ds.matrix, &cfg(), ranks);
        assert_eq!(
            dist.network
                .edges()
                .iter()
                .map(|e| e.key())
                .collect::<Vec<_>>(),
            shared
                .network
                .edges()
                .iter()
                .map(|e| e.key())
                .collect::<Vec<_>>(),
            "{ranks} ranks"
        );
        // The gathered threshold is numerically consistent with shared.
        assert!(
            (dist.threshold - shared.stats.threshold).abs() < 1e-9,
            "{ranks} ranks: threshold {} vs {}",
            dist.threshold,
            shared.stats.threshold
        );
    }
}

#[test]
fn fabric_composes_into_a_reduction_tree() {
    // A user-style collective built from the primitives: global sum via
    // gather + broadcast.
    let outputs = run_ranks(5, |ep| {
        let local = (ep.rank() as u64 + 1) * 10;
        let gathered = ep.gather(0, bytes::Bytes::copy_from_slice(&local.to_le_bytes()));
        let total = if let Some(parts) = gathered {
            let sum: u64 = parts
                .iter()
                .map(|b| u64::from_le_bytes(b[..8].try_into().expect("8-byte payload")))
                .sum();
            ep.broadcast(0, Some(bytes::Bytes::copy_from_slice(&sum.to_le_bytes())))
        } else {
            ep.broadcast(0, None)
        };
        u64::from_le_bytes(total[..8].try_into().expect("8-byte payload"))
    });
    assert_eq!(outputs, vec![150, 150, 150, 150, 150]);
}

#[test]
fn rank_statistics_account_for_all_work() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 24,
            samples: 120,
            ..GrnConfig::small()
        },
        2,
    );
    let dist = infer_network_distributed(&ds.matrix, &cfg(), 4);
    let total_pairs: u64 = dist.rank_stats.iter().map(|s| s.pairs).sum();
    assert_eq!(total_pairs, 24 * 23 / 2);
    // Ring rounds: every rank owns its diagonal plus ⌈(P−1)/2⌉-ish cross
    // blocks; for P=4 that is 1 + (1 or 2).
    for s in &dist.rank_stats {
        assert!(
            s.block_pairs >= 2 && s.block_pairs <= 3,
            "rank {}: {}",
            s.rank,
            s.block_pairs
        );
        assert!(s.busy.as_nanos() > 0);
    }
}
