//! Property-based tests over the whole pipeline (random small matrices).

use genome_net::core::{infer_network, InferenceConfig, NullStrategy};
use genome_net::expr::{ExpressionMatrix, MissingPolicy};
use genome_net::mi::MiKernel;
use proptest::prelude::*;

fn arbitrary_matrix() -> impl Strategy<Value = ExpressionMatrix> {
    // 4–10 genes × 12–40 samples of bounded floats.
    (4usize..=10, 12usize..=40).prop_flat_map(|(n, m)| {
        proptest::collection::vec(-100.0f32..100.0, n * m).prop_map(move |data| {
            ExpressionMatrix::from_flat(n, m, data, MissingPolicy::Error)
                .expect("generated data is finite")
        })
    })
}

fn small_config(seed: u64) -> InferenceConfig {
    InferenceConfig {
        permutations: 6,
        threads: Some(2),
        tile_size: Some(3),
        seed,
        ..InferenceConfig::default()
    }
}

proptest! {
    // 48 cases (double the original 24): these drive the full pipeline on
    // every case, so this is the budget the suite can afford while still
    // sweeping both matrix shape and seed meaningfully. Failing case
    // seeds persist to proptest-regressions/ (committed) and replay
    // before fresh cases on every subsequent run.
    #![proptest_config(ProptestConfig::with_cases(48)
        .with_persistence("proptest-regressions/pipeline_properties.txt"))]

    #[test]
    fn network_invariants_hold_for_any_input(matrix in arbitrary_matrix(), seed in 0u64..100) {
        let cfg = small_config(seed);
        let result = infer_network(&matrix, &cfg);
        let net = &result.network;

        // Structural invariants.
        prop_assert_eq!(net.genes(), matrix.genes());
        prop_assert_eq!(net.gene_names().len(), matrix.genes());
        let pairs = (matrix.genes() as u64) * (matrix.genes() as u64 - 1) / 2;
        prop_assert_eq!(result.stats.pairs, pairs);
        prop_assert!(net.edge_count() as u64 <= result.stats.candidates);
        prop_assert_eq!(result.stats.joints_evaluated, pairs * 7); // q=6 → 7 joints

        // Every edge beat the threshold and has a positive weight.
        for e in net.edges() {
            prop_assert!(e.a < e.b);
            prop_assert!((e.b as usize) < matrix.genes());
            prop_assert!(e.weight as f64 > result.stats.threshold);
        }

        // Degrees are consistent with the edge list.
        let degree_sum: usize = (0..net.genes()).map(|g| net.degree(g)).sum();
        prop_assert_eq!(degree_sum, 2 * net.edge_count());
    }

    #[test]
    fn kernels_agree_on_any_input(matrix in arbitrary_matrix(), seed in 0u64..50) {
        let vector = infer_network(&matrix, &InferenceConfig {
            kernel: MiKernel::VectorDense, ..small_config(seed)
        });
        let scalar = infer_network(&matrix, &InferenceConfig {
            kernel: MiKernel::ScalarSparse, ..small_config(seed)
        });
        let a: Vec<_> = vector.network.edges().iter().map(|e| e.key()).collect();
        let b: Vec<_> = scalar.network.edges().iter().map(|e| e.key()).collect();
        prop_assert_eq!(a, b, "kernels disagreed on the edge set");
    }

    #[test]
    fn early_exit_is_exact_under_a_shared_threshold(
        matrix in arbitrary_matrix(),
        seed in 0u64..50,
        threshold in 0.01f64..0.5,
    ) {
        let exact = infer_network(&matrix, &InferenceConfig {
            mi_threshold: Some(threshold),
            ..small_config(seed)
        });
        let early = infer_network(&matrix, &InferenceConfig {
            mi_threshold: Some(threshold),
            null_strategy: NullStrategy::EarlyExit,
            ..small_config(seed)
        });
        let a: Vec<_> = exact.network.edges().iter().map(|e| e.key()).collect();
        let b: Vec<_> = early.network.edges().iter().map(|e| e.key()).collect();
        prop_assert_eq!(a, b, "early exit changed a decision");
        prop_assert!(early.stats.joints_evaluated <= exact.stats.joints_evaluated);
    }
}
