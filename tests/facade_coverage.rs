//! Integration coverage of the newer facade surfaces: MI matrix, KSG,
//! CLR, memory planning, checkpointing, and the graph analyses — driven
//! the way a downstream user would.

use genome_net::core::baselines::clr_network;
use genome_net::core::{
    compute_mi_matrix, infer_network, infer_network_resumable, InferenceConfig, MemoryPlan,
};
use genome_net::expr::synth::{coupled_pairs, Coupling};
use genome_net::graph::analysis::{core_numbers, degree_assortativity, top_hubs};
use genome_net::grnsim::{GrnConfig, SyntheticDataset};
use genome_net::mi::KsgEstimator;

fn cfg() -> InferenceConfig {
    InferenceConfig {
        permutations: 10,
        threads: Some(2),
        tile_size: Some(8),
        ..InferenceConfig::default()
    }
}

#[test]
fn mi_matrix_and_network_tell_the_same_story() {
    let (matrix, truth) = coupled_pairs(5, 300, Coupling::Linear(0.9), 5);
    let result = infer_network(&matrix, &cfg());
    let mm = compute_mi_matrix(&matrix, &cfg());

    // Every inferred edge's MI matches the matrix entry.
    for e in result.network.edges() {
        let matrix_mi = mm.get(e.a as usize, e.b as usize);
        assert!(
            (matrix_mi - e.weight).abs() < 1e-4,
            "edge ({}, {}): network {} vs matrix {matrix_mi}",
            e.a,
            e.b,
            e.weight
        );
    }
    // Planted pairs carry the largest MI values in the matrix.
    for &(i, j) in &truth {
        let planted = mm.get(i as usize, j as usize);
        assert!(planted as f64 > result.stats.threshold);
    }
}

#[test]
fn ksg_confirms_the_pipelines_top_edge() {
    let (matrix, truth) = coupled_pairs(2, 600, Coupling::Linear(0.9), 12);
    let result = infer_network(&matrix, &cfg());
    let top = &result.network.top_edges(1)[0];
    assert!(truth.contains(&top.key()), "top edge should be planted");
    // The unbiased KSG estimator sees substantial MI on the same pair.
    let ksg = KsgEstimator::default().mi(matrix.gene(top.a as usize), matrix.gene(top.b as usize));
    assert!(ksg > 0.4, "KSG cross-check {ksg}");
}

#[test]
fn clr_and_pipeline_agree_on_strong_structure() {
    let (matrix, truth) = coupled_pairs(5, 400, Coupling::Linear(0.92), 77);
    let pipeline = infer_network(&matrix, &cfg());
    let clr = clr_network(&matrix, 10, 3, 3.5);
    for &(i, j) in &truth {
        assert!(pipeline.network.has_edge(i, j), "pipeline missed ({i},{j})");
        assert!(clr.has_edge(i, j), "CLR missed ({i},{j})");
    }
}

#[test]
fn memory_plan_matches_observed_configuration() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 50,
            samples: 120,
            ..GrnConfig::small()
        },
        4,
    );
    let config = cfg();
    let plan = MemoryPlan::new(&config, ds.matrix.genes(), ds.matrix.samples());
    // The plan's matrix bytes equal the real matrix's heap use.
    assert_eq!(plan.matrix_bytes(), ds.matrix.heap_bytes());
    // A generous budget admits the whole gene set as one tile.
    let tile = plan
        .max_tile_for_budget(1 << 30, 2)
        .expect("1 GiB is plenty");
    assert_eq!(tile, 50);
    // The summary is printable.
    assert!(plan.summary(8, 2).contains("peak"));
}

#[test]
fn checkpointed_run_through_the_facade() {
    let (matrix, _) = coupled_pairs(5, 150, Coupling::Linear(0.85), 3);
    let reference = infer_network(&matrix, &cfg());
    // Interrupt mid-run, serialize the checkpoint like a job system would,
    // resume in a "new process".
    let cp = infer_network_resumable(&matrix, &cfg(), None, 1, |_| false)
        .expect_err("interrupted after the first chunk");
    let wire = serde_json::to_vec(&cp).unwrap();
    let restored = serde_json::from_slice(&wire).unwrap();
    let resumed = infer_network_resumable(&matrix, &cfg(), Some(restored), 1, |_| true)
        .expect("resume completes");
    let a: Vec<_> = resumed.network.edges().iter().map(|e| e.key()).collect();
    let b: Vec<_> = reference.network.edges().iter().map(|e| e.key()).collect();
    assert_eq!(a, b);
}

#[test]
fn inferred_grn_has_regulatory_topology_signatures() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 80,
            samples: 500,
            avg_degree: 3.0,
            ..GrnConfig::small()
        },
        31,
    );
    let result = infer_network(&ds.matrix, &cfg());
    let net = &result.network;
    assert!(net.edge_count() > 20, "need a non-trivial network");

    // Hubs exist (scale-free generator) …
    let hubs = top_hubs(net, 3);
    assert!(hubs[0].1 >= 4, "top hub degree {}", hubs[0].1);

    // … the k-core structure is consistent with degrees …
    let core = core_numbers(net);
    for (g, &c) in core.iter().enumerate() {
        assert!(c as usize <= net.degree(g));
    }
    let max_core = core.iter().copied().max().unwrap();
    assert!(max_core >= 1);

    // … and assortativity is defined and finite.
    if let Some(r) = degree_assortativity(net) {
        assert!((-1.0..=1.0).contains(&r), "assortativity {r}");
    }
}
