//! Cross-crate integration: the full pipeline driven through the facade
//! crate the way a downstream user would.

use genome_net::core::baselines::sequential_reference;
use genome_net::core::{infer_network, InferenceConfig};
use genome_net::expr::synth::{coupled_pairs, Coupling};
use genome_net::graph::dpi::dpi_prune;
use genome_net::graph::{connected_components, recovery_score};
use genome_net::grnsim::{GrnConfig, SyntheticDataset, TopologyKind};
use genome_net::mi::MiKernel;
use genome_net::parallel::SchedulerPolicy;

fn test_config() -> InferenceConfig {
    InferenceConfig {
        permutations: 15,
        threads: Some(2),
        tile_size: Some(12),
        ..InferenceConfig::default()
    }
}

#[test]
fn end_to_end_on_mechanistic_data() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 50,
            samples: 400,
            ..GrnConfig::small()
        },
        99,
    );
    let result = infer_network(&ds.matrix, &test_config());
    assert!(
        result.network.edge_count() > 0,
        "a coupled GRN must yield edges"
    );

    let score = recovery_score(&result.network, &ds.truth_edges());
    assert!(score.recall() > 0.4, "recall {}", score.recall());

    // The network must be structurally sane.
    let comps = connected_components(&result.network);
    assert!(!comps.is_empty());
    let total: usize = comps.iter().map(Vec::len).sum();
    assert_eq!(total, 50, "components must partition the gene set");
}

#[test]
fn erdos_renyi_topology_also_recovers() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 40,
            samples: 500,
            topology: TopologyKind::ErdosRenyi,
            ..GrnConfig::small()
        },
        5,
    );
    let result = infer_network(&ds.matrix, &test_config());
    let score = recovery_score(&result.network, &ds.truth_edges());
    assert!(score.recall() > 0.4, "ER recall {}", score.recall());
}

#[test]
fn optimized_matches_reference_on_grn_data() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 24,
            samples: 250,
            ..GrnConfig::small()
        },
        3,
    );
    let cfg = test_config();
    let fast = infer_network(&ds.matrix, &cfg);
    let slow = sequential_reference(&ds.matrix, &cfg);
    assert_eq!(fast.network.edge_count(), slow.edge_count());
    for (a, b) in fast.network.edges().iter().zip(slow.edges()) {
        assert_eq!(a.key(), b.key());
        assert!((a.weight - b.weight).abs() < 1e-3);
    }
}

#[test]
fn kernels_and_schedulers_commute_with_results() {
    let (matrix, _) = coupled_pairs(5, 220, Coupling::Linear(0.8), 12);
    let baseline = infer_network(&matrix, &test_config());
    for kernel in [MiKernel::ScalarSparse, MiKernel::VectorDense] {
        for policy in [SchedulerPolicy::StaticCyclic, SchedulerPolicy::RayonSteal] {
            let cfg = InferenceConfig {
                kernel,
                scheduler: policy,
                ..test_config()
            };
            let run = infer_network(&matrix, &cfg);
            let a: Vec<_> = run.network.edges().iter().map(|e| e.key()).collect();
            let b: Vec<_> = baseline.network.edges().iter().map(|e| e.key()).collect();
            assert_eq!(a, b, "{kernel:?}/{policy:?} changed the network");
        }
    }
}

#[test]
fn dpi_pruning_only_removes_edges() {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 40,
            samples: 400,
            ..GrnConfig::small()
        },
        8,
    );
    let result = infer_network(&ds.matrix, &test_config());
    let pruned = dpi_prune(&result.network, 0.1);
    assert!(pruned.edge_count() <= result.network.edge_count());
    for e in pruned.edges() {
        assert!(result.network.has_edge(e.a, e.b), "DPI invented an edge");
    }
}

#[test]
fn independent_matrix_produces_near_empty_network() {
    let matrix = genome_net::expr::synth::independent_gaussian(30, 250, 4);
    let result = infer_network(&matrix, &test_config());
    assert!(
        result.network.edge_count() <= 2,
        "{} false edges on independent data",
        result.network.edge_count()
    );
}

#[test]
fn config_serde_roundtrip() {
    let cfg = test_config();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: InferenceConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
}

#[test]
fn network_serde_roundtrip_through_json() {
    let (matrix, _) = coupled_pairs(3, 200, Coupling::Linear(0.9), 2);
    let result = infer_network(&matrix, &test_config());
    let json = serde_json::to_string(&result.network).unwrap();
    let back: genome_net::graph::GeneNetwork = serde_json::from_str(&json).unwrap();
    assert_eq!(back, result.network);
}
