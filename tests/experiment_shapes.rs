//! Shape checks over the experiment harness — the same invariants
//! EXPERIMENTS.md commits to, asserted in CI so the reproduction cannot
//! silently drift away from the paper's qualitative results.

use genome_net::phi::scenarios::{
    self, headline_predictions, paper_claims, strong_scaling, threads_per_core,
    vectorization_speedups,
};
use genome_net::phi::{KernelClass, MachineModel, WorkloadModel};

#[test]
fn r1_headline_is_in_the_papers_regime() {
    let preds = headline_predictions();
    let phi = preds.iter().find(|p| p.platform.contains("Phi")).unwrap();
    // Within ±50% of the cited 22 minutes and faster than the dual Xeon.
    assert!(
        phi.minutes > paper_claims::PHI_HEADLINE_MINUTES * 0.5
            && phi.minutes < paper_claims::PHI_HEADLINE_MINUTES * 1.5,
        "Phi modeled at {:.1} min vs cited 22",
        phi.minutes
    );
}

#[test]
fn r2_scaling_curves_saturate_where_the_hardware_does() {
    for (platform, curve) in strong_scaling(2048) {
        let best = curve.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
        if platform.contains("Phi") {
            assert!(best > 100.0, "{platform}: peak speedup {best}");
        } else {
            assert!(
                best > 14.0 && best < 33.0,
                "{platform}: peak speedup {best}"
            );
        }
        // Monotone non-decreasing in threads.
        for w in curve.windows(2) {
            assert!(
                w[1].1 >= w[0].1 * 0.99,
                "{platform}: speedup regressed: {curve:?}"
            );
        }
    }
}

#[test]
fn r3_best_operating_point_is_four_threads_per_core() {
    let series = threads_per_core(2048);
    let best = series
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(best, 4, "KNC wants all four SMT threads");
}

#[test]
fn r4_vectorization_gain_ordering() {
    let rows = vectorization_speedups();
    let phi = rows.iter().find(|r| r.0.contains("Phi")).unwrap().1;
    let xeon = rows.iter().find(|r| r.0.contains("E5")).unwrap().1;
    assert!(phi > 6.0, "Phi gain {phi}");
    assert!(xeon > 1.2, "Xeon gain {xeon}");
    assert!(phi > xeon, "Phi must gain more from vectorization");
}

#[test]
fn r5_quadratic_r6_linear() {
    let genes = scenarios::gene_sweep(&[2_000, 4_000, 8_000]);
    let g_ratio = genes[2].1 / genes[0].1;
    assert!(
        (12.0..20.0).contains(&g_ratio),
        "4× genes ⇒ ~16× time, got {g_ratio:.1}"
    );

    let samples = scenarios::sample_sweep(2_048, &[1_000, 2_000, 4_000]);
    let s_ratio = samples[2].1 / samples[0].1;
    assert!(
        (3.0..5.0).contains(&s_ratio),
        "4× samples ⇒ ~4× time, got {s_ratio:.1}"
    );
}

#[test]
fn r7_dynamic_never_loses() {
    let rows = scenarios::scheduler_comparison(2048);
    let dynamic = rows.iter().find(|r| r.0 == "dynamic").unwrap().1;
    for (name, wall, imbalance) in &rows {
        assert!(dynamic <= wall * 1.001, "dynamic lost to {name}");
        assert!(
            *imbalance >= 1.0,
            "{name} reported impossible imbalance {imbalance}"
        );
    }
}

#[test]
fn r9_platform_ordering_matches_the_paper() {
    let preds = headline_predictions();
    let get = |needle: &str| {
        preds
            .iter()
            .find(|p| p.platform.contains(needle))
            .unwrap()
            .minutes
    };
    let phi = get("Phi");
    let xeon = get("E5");
    let bgl = get("Blue Gene");
    assert!(
        bgl < phi,
        "1,024 BG/L cores beat one Phi (paper: 9 vs 22 min)"
    );
    assert!(phi < xeon, "one Phi beats the dual Xeon");
    assert!(phi / bgl < 6.0, "…but the single chip stays within a few ×");
}

#[test]
fn workload_model_agrees_with_kernel_flop_ratios() {
    // The modeled scalar/vector cycle ratio must track the actual flop
    // ratio within the documented overhead constants.
    let w = WorkloadModel::arabidopsis_headline();
    let phi = MachineModel::xeon_phi_5110p();
    let scalar = WorkloadModel {
        kernel: KernelClass::ScalarSparse,
        ..w
    };
    let vector = WorkloadModel {
        kernel: KernelClass::VectorDense,
        ..w
    };
    // At q=30 the joints dominate; prep and entropy are second order.
    let ratio = scalar.pair_cycles(&phi) / vector.pair_cycles(&phi);
    assert!((ratio - w.vectorization_speedup(&phi)).abs() < 1e-9);
}
