//! Distributed network construction over the simulated cluster — the
//! TINGe (cluster) side of the paper's single-chip-vs-cluster comparison.
//!
//! ```text
//! cargo run --release --example distributed_cluster -- [ranks] [genes]
//! ```
//!
//! Runs the same inference twice — shared-memory pipeline vs the
//! ring-rotation distributed algorithm over P in-process ranks — and
//! verifies the networks are identical while reporting the cluster's
//! communication profile.

use genome_net::cluster::infer_network_distributed;
use genome_net::core::{infer_network, InferenceConfig};
use genome_net::grnsim::{GrnConfig, SyntheticDataset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ranks: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let genes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(120);

    let dataset = SyntheticDataset::generate(
        GrnConfig {
            genes,
            samples: 300,
            ..GrnConfig::small()
        },
        7,
    );
    let config = InferenceConfig {
        permutations: 20,
        ..InferenceConfig::default()
    };

    println!("shared-memory pipeline …");
    let shared = infer_network(&dataset.matrix, &config);
    println!(
        "  {} edges in {:?}\n",
        shared.network.edge_count(),
        shared.stats.total_time()
    );

    println!("distributed over {ranks} simulated ranks …");
    let dist = infer_network_distributed(&dataset.matrix, &config, ranks);
    println!(
        "  {} edges, I* = {:.4}\n",
        dist.network.edge_count(),
        dist.threshold
    );

    println!(
        "{:>5}  {:>10}  {:>12}  {:>10}  {:>10}",
        "rank", "pairs", "block pairs", "messages", "KB sent"
    );
    for s in &dist.rank_stats {
        println!(
            "{:>5}  {:>10}  {:>12}  {:>10}  {:>10.1}",
            s.rank,
            s.pairs,
            s.block_pairs,
            s.messages,
            s.bytes_sent as f64 / 1024.0
        );
    }

    let same = shared
        .network
        .edges()
        .iter()
        .map(|e| e.key())
        .collect::<Vec<_>>()
        == dist
            .network
            .edges()
            .iter()
            .map(|e| e.key())
            .collect::<Vec<_>>();
    println!(
        "\nnetworks identical: {same} — the property that makes the paper's\n\
         single-chip-vs-cluster comparison apples-to-apples."
    );
    assert!(same);
}
