//! The headline experiment at adjustable scale: a whole-genome-style run
//! with the paper's per-pair shape (3,137 experiments, q = 30).
//!
//! ```text
//! cargo run --release --example arabidopsis                 # 512 genes
//! cargo run --release --example arabidopsis -- 2048         # 2,048 genes
//! cargo run --release --example arabidopsis -- 2048 1024 10 # n, m, q
//! ```
//!
//! The paper constructs a 15,575-gene Arabidopsis thaliana network from
//! 3,137 microarrays in 22 minutes on one Xeon Phi. This example runs the
//! identical pipeline on a synthetic compendium of the requested size,
//! then projects the measured pair rate to the full 15,575-gene problem
//! and prints it next to the calibrated platform-model predictions.

use genome_net::core::{infer_network, InferenceConfig};
use genome_net::grnsim::{GrnConfig, SyntheticDataset};
use genome_net::phi::scenarios::{headline_predictions, paper_claims};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let genes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(512);
    let samples: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3_137);
    let q: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30);

    println!("generating synthetic compendium: {genes} genes × {samples} experiments …");
    let dataset = SyntheticDataset::generate(
        GrnConfig {
            genes,
            samples,
            ..GrnConfig::arabidopsis_like_scaled(genes)
        },
        2014,
    );

    let config = InferenceConfig {
        permutations: q,
        ..InferenceConfig::default()
    };
    println!(
        "running pipeline (b=10, k=3, q={q}, α={}, kernel=vector, scheduler=dynamic) …",
        config.alpha
    );
    let result = infer_network(&dataset.matrix, &config);

    let stats = &result.stats;
    println!("\n── this machine ──");
    println!("  genes           {genes}");
    println!("  pairs           {}", stats.pairs);
    println!("  edges           {}", result.network.edge_count());
    println!("  prep            {:?}", stats.prep_time);
    println!("  MI stage        {:?}", stats.mi_time);
    println!("  pair rate       {:.0} pairs/s", stats.pair_rate());
    println!("  threshold I*    {:.4} nats", stats.threshold);

    // Project this host's measured rate to the full problem.
    let full_pairs = (paper_claims::GENES as u64 * (paper_claims::GENES as u64 - 1)) / 2;
    let projected_minutes = full_pairs as f64 / stats.pair_rate() / 60.0;
    println!("\n── projected to the full 15,575-gene compendium ──");
    println!(
        "  this host       {projected_minutes:.0} min ({:.1} h)",
        projected_minutes / 60.0
    );

    println!("\n── calibrated platform models (full problem, q=30) ──");
    for p in headline_predictions() {
        println!("  {:55} {:7.1} min", p.platform, p.minutes);
    }
    println!(
        "  {:55} {:7.1} min   ← the paper's cited result",
        "Xeon Phi (paper, IPDPS 2014 abstract)",
        paper_claims::PHI_HEADLINE_MINUTES
    );
}
