//! Statistical-recovery study (experiment R10): how network quality grows
//! with the number of experiments, and how the MI pipeline compares with
//! linear baselines — measurable here (unlike in the paper) because the
//! synthetic compendium has a known ground truth.
//!
//! ```text
//! cargo run --release --example accuracy_study
//! ```

use genome_net::core::baselines::{histogram_network, pearson_network};
use genome_net::core::{infer_network, InferenceConfig};
use genome_net::expr::synth::{coupled_pairs, Coupling};
use genome_net::graph::dpi::dpi_prune;
use genome_net::graph::recovery_score;
use genome_net::grnsim::{GrnConfig, SyntheticDataset};

fn main() {
    println!("── recovery vs sample count (n = 60 genes, scale-free GRN, q = 20) ──");
    println!(
        "{:>8}  {:>6}  {:>9}  {:>7}  {:>6}  {:>9}  {:>9}",
        "samples", "edges", "precision", "recall", "F1", "DPI prec", "DPI rec"
    );
    for samples in [50usize, 100, 200, 400, 800] {
        let ds = SyntheticDataset::generate(
            GrnConfig {
                genes: 60,
                samples,
                ..GrnConfig::small()
            },
            7,
        );
        let cfg = InferenceConfig {
            permutations: 20,
            ..InferenceConfig::default()
        };
        let result = infer_network(&ds.matrix, &cfg);
        let truth = ds.truth_edges();
        let raw = recovery_score(&result.network, &truth);
        let dpi = recovery_score(&dpi_prune(&result.network, 0.05), &truth);
        println!(
            "{samples:>8}  {:>6}  {:>9.3}  {:>7.3}  {:>6.3}  {:>9.3}  {:>9.3}",
            result.network.edge_count(),
            raw.precision(),
            raw.recall(),
            raw.f1(),
            dpi.precision(),
            dpi.recall()
        );
    }

    println!("\n── why mutual information: quadratic (non-monotone) coupling ──");
    let (matrix, truth) = coupled_pairs(6, 600, Coupling::Quadratic(0.15), 99);
    let cfg = InferenceConfig {
        permutations: 20,
        ..InferenceConfig::default()
    };

    let mi = infer_network(&matrix, &cfg);
    let mi_score = recovery_score(&mi.network, &truth);

    let pearson = pearson_network(&matrix, 0.5);
    let pearson_score = recovery_score(&pearson, &truth);

    let hist = histogram_network(&matrix, 10, 0.25);
    let hist_score = recovery_score(&hist, &truth);

    println!("{:>14}  {:>9}  {:>7}", "method", "precision", "recall");
    for (name, s) in [
        ("bspline-MI", mi_score),
        ("histogram-MI", hist_score),
        ("pearson", pearson_score),
    ] {
        println!("{name:>14}  {:>9.3}  {:>7.3}", s.precision(), s.recall());
    }
    println!(
        "\nreading: y = x² has near-zero linear correlation, so the Pearson\n\
         baseline recovers nothing while both MI estimators see the planted\n\
         pairs — the motivation the paper's introduction gives for MI-based\n\
         whole-genome reconstruction."
    );
}
