//! Scaling study over the calibrated platform models (experiments R2/R3).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```
//!
//! Prints the strong-scaling speedup curves for the Xeon Phi (1 → 244
//! threads) and the dual-socket Xeon (1 → 32 threads), and the Phi's
//! threads-per-core series — the two figures that characterize the
//! paper's multi-level parallelism.

use genome_net::phi::scenarios::{strong_scaling, threads_per_core};

// cast-ok: bar lengths are tiny positive counts; rounding is the point.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn bar(speedup: f64, scale: f64) -> String {
    "█".repeat(((speedup / scale).ceil() as usize).max(1))
}

fn main() {
    let genes = 2_048;
    println!("workload: n = {genes}, m = 3,137, q = 30 (modeled)\n");

    for (platform, curve) in strong_scaling(genes) {
        println!("strong scaling — {platform}");
        println!("{:>8}  {:>9}  curve", "threads", "speedup");
        let max = curve.iter().map(|&(_, s)| s).fold(1.0, f64::max);
        for (threads, speedup) in &curve {
            println!(
                "{threads:>8}  {speedup:>8.1}x  {}",
                bar(*speedup, max / 40.0)
            );
        }
        println!();
    }

    println!("threads per core — Xeon Phi, all 61 cores busy");
    println!(
        "{:>12}  {:>12}  {:>10}",
        "threads/core", "wall seconds", "speedup"
    );
    let series = threads_per_core(genes);
    let base = series[0].1;
    for (tpc, wall) in series {
        println!("{tpc:>12}  {wall:>12.1}  {:>9.2}x", base / wall);
    }
    println!(
        "\nreading: the KNC core cannot issue from a single thread on consecutive\n\
         cycles, so 2 threads/core ≈ doubles throughput and 3–4 add a final ~20%.\n\
         This is the signature shape of the paper's Figure-family R2/R3."
    );
}
