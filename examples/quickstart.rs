//! Quickstart: infer a small gene network end-to-end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a 60-gene synthetic dataset with a known regulatory network,
//! runs the full TINGe-style pipeline (rank transform → B-spline MI →
//! shared-permutation testing → pooled threshold), and scores the result
//! against the planted truth.

use genome_net::core::{infer_network, InferenceConfig};
use genome_net::graph::dpi::dpi_prune;
use genome_net::graph::recovery_score;
use genome_net::grnsim::{GrnConfig, SyntheticDataset};

fn main() {
    // 1. A synthetic dataset with known ground truth: 60 genes, 300
    //    microarray-like experiments, scale-free regulatory topology.
    let dataset = SyntheticDataset::generate(
        GrnConfig {
            genes: 60,
            samples: 300,
            ..GrnConfig::small()
        },
        42,
    );
    println!(
        "dataset: {} genes × {} samples, {} true regulatory edges",
        dataset.matrix.genes(),
        dataset.matrix.samples(),
        dataset.truth_edges().len()
    );

    // 2. Infer the network with the paper's defaults (order-3 B-splines
    //    over 10 bins, 30 shared permutations, α = 0.01 family-wise).
    let config = InferenceConfig::default();
    let result = infer_network(&dataset.matrix, &config);

    println!(
        "\ninferred {} edges from {} pairs in {:?}",
        result.network.edge_count(),
        result.stats.pairs,
        result.stats.total_time()
    );
    println!(
        "  MI stage: {:?} ({:.0} pairs/s on {} thread(s), tile {})",
        result.stats.mi_time,
        result.stats.pair_rate(),
        result.stats.threads,
        result.stats.tile_size
    );
    println!(
        "  pooled null: mean {:.4} ± {:.4} nats → global threshold I* = {:.4} nats",
        result.stats.null_mean, result.stats.null_sd, result.stats.threshold
    );

    // 3. Score against the planted truth (possible only because the data
    //    is synthetic — the paper's Arabidopsis run had no ground truth).
    let raw = recovery_score(&result.network, &dataset.truth_edges());
    println!(
        "\nrecovery:      precision {:.3}  recall {:.3}  F1 {:.3}",
        raw.precision(),
        raw.recall(),
        raw.f1()
    );

    // 4. Optional ARACNE-style DPI pruning removes indirect edges.
    let pruned = dpi_prune(&result.network, 0.05);
    let dpi = recovery_score(&pruned, &dataset.truth_edges());
    println!(
        "after DPI:     precision {:.3}  recall {:.3}  F1 {:.3}  ({} edges)",
        dpi.precision(),
        dpi.recall(),
        dpi.f1(),
        pruned.edge_count()
    );

    // 5. The five heaviest edges, with gene names.
    println!("\ntop edges (MI in nats):");
    for e in result.network.top_edges(5) {
        println!(
            "  {} — {}  {:.4}",
            result.network.gene_names()[e.a as usize],
            result.network.gene_names()[e.b as usize],
            e.weight
        );
    }
}
