//! The paper's closing claim — "our optimization … holds out lessons that
//! are applicable to other domains" — demonstrated on a different domain:
//! an all-pairs *Jaccard similarity* matrix over random item sets,
//! computed with the exact tiled runtime (tile decomposition, per-thread
//! contexts, scheduling policies) the MI pipeline uses.
//!
//! ```text
//! cargo run --release --example generic_pairwise
//! ```

use genome_net::parallel::{compute_pairwise, pair_index, SchedulerPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    // 400 items, each a sparse set of tags out of a 512-tag universe.
    let n = 400;
    let universe = 512;
    let mut rng = StdRng::seed_from_u64(7);
    let items: Vec<Vec<u64>> = (0..n)
        .map(|_| {
            // Bitset representation: 8 × u64 = 512 bits.
            let mut bits = vec![0u64; universe / 64];
            for _ in 0..rng.gen_range(10..60) {
                let tag = rng.gen_range(0..universe);
                bits[tag / 64] |= 1 << (tag % 64);
            }
            bits
        })
        .collect();
    let items = &items;

    println!(
        "all-pairs Jaccard over {n} items ({} pairs)\n",
        n * (n - 1) / 2
    );
    println!("{:>14}  {:>10}  {:>10}", "policy", "ms", "imbalance");
    let mut reference: Option<Vec<f32>> = None;
    for policy in SchedulerPolicy::ALL {
        let t0 = Instant::now();
        let (packed, report) = compute_pairwise(
            n,
            32, // tile: 64 items' bitsets per tile — cache-resident
            4,
            policy,
            |_tid| (),
            |_, i, j| {
                let (a, b) = (&items[i], &items[j]);
                let mut inter = 0u32;
                let mut union = 0u32;
                for (x, y) in a.iter().zip(b) {
                    inter += (x & y).count_ones();
                    union += (x | y).count_ones();
                }
                if union == 0 {
                    0.0
                } else {
                    inter as f32 / union as f32
                }
            },
        );
        println!(
            "{:>14}  {:>10.1}  {:>10.3}",
            policy.name(),
            t0.elapsed().as_secs_f64() * 1e3,
            report.imbalance()
        );
        match &reference {
            None => reference = Some(packed),
            Some(r) => assert_eq!(r, &packed, "policies must agree exactly"),
        }
    }

    let packed = reference.expect("at least one policy ran");
    let (mut best, mut best_pair) = (0.0f32, (0usize, 0usize));
    for i in 0..n {
        for j in i + 1..n {
            let v = packed[pair_index(n, i, j)];
            if v > best {
                best = v;
                best_pair = (i, j);
            }
        }
    }
    println!(
        "\nmost similar pair: items {} and {} at Jaccard {:.3}",
        best_pair.0, best_pair.1, best
    );
    println!(
        "\nSame runtime, different domain — the tile/scheduler machinery is\n\
         exactly what ran the 15,575-gene MI computation."
    );
}
